"""CART decision trees (Gini impurity), implemented from scratch.

The paper finds a single decision tree competitive and random forests best
overall (Table 6), and leans on tree impurity importances for its root-cause
interpretation (Figure 16).  This implementation provides both: exact
best-split search with vectorized prefix-sum scans, and impurity-decrease
feature importances.

Structure-of-arrays node storage keeps prediction a handful of vectorized
passes (one per tree level) rather than a per-row Python walk.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryClassifier, check_X, check_Xy

__all__ = ["DecisionTreeClassifier"]

#: Sentinel feature index marking a leaf node.
_LEAF = -1


def _gini(n_pos: np.ndarray | float, n: np.ndarray | float) -> np.ndarray | float:
    """Gini impurity of a node with ``n_pos`` positives out of ``n``."""
    p = np.divide(n_pos, n, out=np.zeros_like(np.asarray(n_pos, dtype=np.float64)), where=np.asarray(n) > 0)
    return 2.0 * p * (1.0 - p)


def _resolve_max_features(max_features: int | float | str | None, n_features: int) -> int:
    """Number of features examined per split."""
    if max_features is None:
        return n_features
    if isinstance(max_features, str):
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if max_features == "log2":
            return max(1, int(np.log2(n_features)))
        raise ValueError(f"unknown max_features {max_features!r}")
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("fractional max_features must lie in (0, 1]")
        return max(1, int(max_features * n_features))
    if max_features < 1:
        raise ValueError("max_features must be >= 1")
    return min(int(max_features), n_features)


class DecisionTreeClassifier(BinaryClassifier):
    """Binary CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` = unbounded); the paper tunes this as
        its complexity hyperparameter.
    min_samples_split:
        Minimum node size eligible for splitting.
    min_samples_leaf:
        Minimum samples in each child of a split.
    max_features:
        Features examined per split: ``None`` (all), ``"sqrt"``, ``"log2"``,
        an int, or a fraction.
    random_state:
        Seed for the per-split feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        # Fitted structure (structure-of-arrays).
        self.feature_: np.ndarray | None = None
        self.threshold_: np.ndarray | None = None
        self.left_: np.ndarray | None = None
        self.right_: np.ndarray | None = None
        self.value_: np.ndarray | None = None
        self.n_features_: int | None = None
        self.feature_importances_: np.ndarray | None = None
        self.max_depth_: int = 0

    # ------------------------------------------------------------------ fitting
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = check_Xy(X, y)
        n, d = X.shape
        self.n_features_ = d
        rng = np.random.default_rng(self.random_state)
        k_features = _resolve_max_features(self.max_features, d)

        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []
        importance = np.zeros(d)

        # Depth-first build with an explicit stack of (row-index-array, depth,
        # parent-node-id, is-left-child).
        stack: list[tuple[np.ndarray, int, int, bool]] = [
            (np.arange(n), 0, -1, False)
        ]
        max_seen_depth = 0
        while stack:
            idx, depth, parent, is_left = stack.pop()
            node_id = len(features)
            if parent >= 0:
                if is_left:
                    lefts[parent] = node_id
                else:
                    rights[parent] = node_id
            y_node = y[idx]
            m = idx.shape[0]
            n_pos = float(y_node.sum())
            prob = n_pos / m
            node_gini = 2.0 * prob * (1.0 - prob)
            max_seen_depth = max(max_seen_depth, depth)

            stop = (
                m < self.min_samples_split
                or node_gini == 0.0
                or (self.max_depth is not None and depth >= self.max_depth)
                or m < 2 * self.min_samples_leaf
            )
            best = None
            if not stop:
                cand = (
                    rng.choice(d, size=k_features, replace=False)
                    if k_features < d
                    else np.arange(d)
                )
                best = self._best_split(X, y, idx, cand, node_gini)
            if best is None:
                features.append(_LEAF)
                thresholds.append(0.0)
                lefts.append(_LEAF)
                rights.append(_LEAF)
                values.append(prob)
                continue

            feat, thr, gain, left_mask = best
            features.append(int(feat))
            thresholds.append(float(thr))
            lefts.append(_LEAF)  # patched when children pop
            rights.append(_LEAF)
            values.append(prob)
            importance[feat] += (m / n) * gain
            left_idx = idx[left_mask]
            right_idx = idx[~left_mask]
            # Push right first so the left child is built (and numbered)
            # immediately after its parent — cache-friendly traversal order.
            stack.append((right_idx, depth + 1, node_id, False))
            stack.append((left_idx, depth + 1, node_id, True))

        self.feature_ = np.asarray(features, dtype=np.int64)
        self.threshold_ = np.asarray(thresholds, dtype=np.float64)
        self.left_ = np.asarray(lefts, dtype=np.int64)
        self.right_ = np.asarray(rights, dtype=np.int64)
        self.value_ = np.asarray(values, dtype=np.float64)
        self.max_depth_ = max_seen_depth
        total = importance.sum()
        self.feature_importances_ = importance / total if total > 0 else importance
        return self

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        candidates: np.ndarray,
        node_gini: float,
    ) -> tuple[int, float, float, np.ndarray] | None:
        """Exact best split over candidate features at one node.

        Returns ``(feature, threshold, impurity_gain, left_mask)`` or
        ``None`` when no valid split improves impurity.
        """
        m = idx.shape[0]
        y_node = y[idx]
        msl = self.min_samples_leaf
        best_gain = 1e-12
        best: tuple[int, float, float, np.ndarray] | None = None
        for feat in candidates:
            x = X[idx, feat]
            order = np.argsort(x, kind="stable")
            xs = x[order]
            ys = y_node[order]
            if xs[0] == xs[-1]:
                continue  # constant feature at this node
            cum_pos = np.cumsum(ys)
            left_n = np.arange(1, m, dtype=np.float64)
            left_pos = cum_pos[:-1]
            right_n = m - left_n
            right_pos = cum_pos[-1] - left_pos
            valid = xs[1:] != xs[:-1]
            if msl > 1:
                valid &= (left_n >= msl) & (right_n >= msl)
            if not np.any(valid):
                continue
            gl = _gini(left_pos, left_n)
            gr = _gini(right_pos, right_n)
            weighted = (left_n * gl + right_n * gr) / m
            weighted = np.where(valid, weighted, np.inf)
            pos = int(np.argmin(weighted))
            gain = node_gini - weighted[pos]
            if gain > best_gain:
                thr = 0.5 * (xs[pos] + xs[pos + 1])
                # Guard against midpoint rounding into one of the endpoints.
                if not (xs[pos] < thr):
                    thr = xs[pos]
                left_mask = np.zeros(m, dtype=bool)
                left_mask[order[: pos + 1]] = True
                best_gain = gain
                best = (int(feat), float(thr), float(gain), left_mask)
        return best

    # ------------------------------------------------------------------ predict
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.feature_ is None:
            raise RuntimeError("DecisionTreeClassifier used before fit")
        X = check_X(X)
        if X.shape[1] != self.n_features_:
            raise ValueError("feature-count mismatch with fitted tree")
        idx = np.zeros(X.shape[0], dtype=np.int64)
        # One vectorized pass per level: rows sitting on internal nodes step
        # to a child; rows on leaves stay put.
        while True:
            feat = self.feature_[idx]
            internal = feat != _LEAF
            if not np.any(internal):
                break
            rows = np.flatnonzero(internal)
            node = idx[rows]
            go_left = X[rows, self.feature_[node]] <= self.threshold_[node]
            idx[rows] = np.where(go_left, self.left_[node], self.right_[node])
        return self.value_[idx]

    @property
    def n_nodes(self) -> int:
        """Total number of nodes in the fitted tree."""
        if self.feature_ is None:
            raise RuntimeError("DecisionTreeClassifier used before fit")
        return int(self.feature_.shape[0])

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes in the fitted tree."""
        if self.feature_ is None:
            raise RuntimeError("DecisionTreeClassifier used before fit")
        return int(np.count_nonzero(self.feature_ == _LEAF))
