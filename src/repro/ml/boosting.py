"""Gradient-boosted decision trees (logistic loss), from scratch.

The paper's comparison stops at random forests (2019's default choice for
tabular reliability data); gradient boosting is its modern successor and a
natural extension experiment (`benchmarks/test_ablation_boosting.py`
compares the two on the prediction task).

Implementation: standard gradient boosting on the log-odds with

- least-squares regression trees on the negative gradient (residuals),
- Newton leaf values ``sum(residual) / sum(p (1 - p))``,
- shrinkage and optional stochastic row subsampling.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryClassifier, check_X, check_Xy
from .linear import sigmoid

__all__ = ["GradientBoostingClassifier"]

_LEAF = -1


class _RegressionTree:
    """Least-squares CART used as the boosting weak learner.

    Split search mirrors the classifier tree but minimizes within-node sum
    of squared errors via prefix sums of ``y`` and ``y^2``.
    """

    def __init__(
        self,
        max_depth: int,
        min_samples_leaf: int,
        max_features: int | None,
        rng: np.random.Generator,
    ):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.feature_: np.ndarray | None = None
        self.threshold_: np.ndarray | None = None
        self.left_: np.ndarray | None = None
        self.right_: np.ndarray | None = None
        self.leaf_id_: np.ndarray | None = None
        self.n_leaves_: int = 0
        #: Per-feature total squared-error reduction (importance input).
        self.gain_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_RegressionTree":
        n, d = X.shape
        k_feat = self.max_features or d
        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        leaf_ids: list[int] = []
        self.gain_ = np.zeros(d)
        #: Row membership of each leaf, filled during the build.
        self.leaf_rows: list[np.ndarray] = []

        stack: list[tuple[np.ndarray, int, int, bool]] = [(np.arange(n), 0, -1, False)]
        while stack:
            idx, depth, parent, is_left = stack.pop()
            node_id = len(features)
            if parent >= 0:
                if is_left:
                    lefts[parent] = node_id
                else:
                    rights[parent] = node_id
            y_node = y[idx]
            m = idx.shape[0]
            best = None
            if depth < self.max_depth and m >= 2 * self.min_samples_leaf:
                cand = (
                    self.rng.choice(d, size=k_feat, replace=False)
                    if k_feat < d
                    else np.arange(d)
                )
                best = self._best_split(X, y_node, idx, cand)
            if best is None:
                features.append(_LEAF)
                thresholds.append(0.0)
                lefts.append(_LEAF)
                rights.append(_LEAF)
                leaf_ids.append(len(self.leaf_rows))
                self.leaf_rows.append(idx)
                continue
            feat, thr, gain, left_mask = best
            features.append(feat)
            thresholds.append(thr)
            lefts.append(_LEAF)
            rights.append(_LEAF)
            leaf_ids.append(-1)
            self.gain_[feat] += gain
            stack.append((idx[~left_mask], depth + 1, node_id, False))
            stack.append((idx[left_mask], depth + 1, node_id, True))

        self.feature_ = np.asarray(features, dtype=np.int64)
        self.threshold_ = np.asarray(thresholds)
        self.left_ = np.asarray(lefts, dtype=np.int64)
        self.right_ = np.asarray(rights, dtype=np.int64)
        self.leaf_id_ = np.asarray(leaf_ids, dtype=np.int64)
        self.n_leaves_ = len(self.leaf_rows)
        return self

    def _best_split(
        self, X: np.ndarray, y_node: np.ndarray, idx: np.ndarray, cand: np.ndarray
    ) -> tuple[int, float, float, np.ndarray] | None:
        m = idx.shape[0]
        msl = self.min_samples_leaf
        total_sum = y_node.sum()
        total_sq = float(y_node @ y_node)
        parent_sse = total_sq - total_sum**2 / m
        best_gain = 1e-12
        best = None
        for feat in cand:
            x = X[idx, feat]
            order = np.argsort(x, kind="stable")
            xs = x[order]
            if xs[0] == xs[-1]:
                continue
            ys = y_node[order]
            cum = np.cumsum(ys)[:-1]
            left_n = np.arange(1, m, dtype=np.float64)
            right_n = m - left_n
            valid = xs[1:] != xs[:-1]
            if msl > 1:
                valid &= (left_n >= msl) & (right_n >= msl)
            if not np.any(valid):
                continue
            right_sum = total_sum - cum
            # SSE reduction = sum_l^2/n_l + sum_r^2/n_r - sum^2/n.
            score = cum**2 / left_n + right_sum**2 / right_n
            score = np.where(valid, score, -np.inf)
            pos = int(np.argmax(score))
            gain = score[pos] - total_sum**2 / m
            if gain > best_gain:
                thr = 0.5 * (xs[pos] + xs[pos + 1])
                if not (xs[pos] < thr):
                    thr = xs[pos]
                left_mask = np.zeros(m, dtype=bool)
                left_mask[order[: pos + 1]] = True
                best_gain = gain
                best = (int(feat), float(thr), float(min(gain, parent_sse)), left_mask)
        return best

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by each row."""
        idx = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            feat = self.feature_[idx]
            internal = feat != _LEAF
            if not np.any(internal):
                break
            rows = np.flatnonzero(internal)
            node = idx[rows]
            go_left = X[rows, self.feature_[node]] <= self.threshold_[node]
            idx[rows] = np.where(go_left, self.left_[node], self.right_[node])
        return self.leaf_id_[idx]


class GradientBoostingClassifier(BinaryClassifier):
    """Binary gradient boosting with logistic loss.

    Parameters
    ----------
    n_estimators:
        Boosting rounds.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth:
        Depth of each weak learner (shallow trees; 3 is classic).
    min_samples_leaf:
        Minimum rows per leaf.
    subsample:
        Fraction of rows drawn (without replacement) per round; 1.0
        disables stochasticity.
    max_features:
        Features considered per split (int; ``None`` = all).
    random_state:
        Seed for subsampling and feature draws.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        max_features: int | None = None,
        random_state: int | None = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must lie in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must lie in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.max_features = max_features
        self.random_state = random_state
        self._trees: list[tuple[_RegressionTree, np.ndarray]] = []
        self._f0: float = 0.0
        self.feature_importances_: np.ndarray | None = None
        self.train_loss_: list[float] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X, y = check_Xy(X, y)
        n, d = X.shape
        rng = np.random.default_rng(self.random_state)
        p0 = np.clip(y.mean(), 1e-6, 1 - 1e-6)
        self._f0 = float(np.log(p0 / (1 - p0)))
        F = np.full(n, self._f0)
        self._trees = []
        self.train_loss_ = []
        gain_total = np.zeros(d)

        for _ in range(self.n_estimators):
            p = sigmoid(F)
            residual = y - p
            if self.subsample < 1.0:
                rows = rng.choice(n, size=max(2, int(self.subsample * n)), replace=False)
            else:
                rows = np.arange(n)
            tree = _RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=rng,
            ).fit(X[rows], residual[rows])
            # Newton leaf values on the subsample.
            hess = p * (1 - p)
            leaf_values = np.zeros(tree.n_leaves_)
            for leaf, leaf_rows in enumerate(tree.leaf_rows):
                rsel = rows[leaf_rows]
                denom = float(hess[rsel].sum())
                leaf_values[leaf] = float(residual[rsel].sum()) / max(denom, 1e-12)
            F = F + self.learning_rate * leaf_values[tree.apply(X)]
            gain_total += tree.gain_
            p_new = np.clip(sigmoid(F), 1e-12, 1 - 1e-12)
            self.train_loss_.append(
                float(-(y * np.log(p_new) + (1 - y) * np.log(1 - p_new)).mean())
            )
            self._trees.append((tree, leaf_values))

        total = gain_total.sum()
        self.feature_importances_ = gain_total / total if total > 0 else gain_total
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Accumulated log-odds ``F(x)``."""
        if not self._trees:
            raise RuntimeError("GradientBoostingClassifier used before fit")
        X = check_X(X)
        F = np.full(X.shape[0], self._f0)
        for tree, leaf_values in self._trees:
            F += self.learning_rate * leaf_values[tree.apply(X)]
        return F

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return sigmoid(self.decision_function(X))
