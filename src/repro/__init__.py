"""repro — reproduction of *SSD Failures in the Field: Symptoms, Causes,
and Prediction Models* (Alter, Xue, Dimnaku, Smirni; SC '19).

Layered architecture (see DESIGN.md):

- :mod:`repro.data` — drive-day telemetry schema and columnar containers;
- :mod:`repro.simulator` — synthetic fleet generator standing in for the
  proprietary Google trace;
- :mod:`repro.stats` — ECDFs, hazard rates, rank correlation;
- :mod:`repro.ml` — from-scratch classifiers, metrics, cross-validation;
- :mod:`repro.core` — the failure-prediction pipeline and high-level API;
- :mod:`repro.analysis` — one function per paper table/figure.

Quickstart::

    from repro.simulator import simulate_fleet, small_fleet_config
    from repro.core import FailurePredictor

    trace = simulate_fleet(small_fleet_config(seed=7))
    predictor = FailurePredictor(lookahead=1).fit(trace)
    report = predictor.risk_report(trace.records)
    print(report.top(5))
"""

from .core import FailurePredictor
from .simulator import FleetConfig, simulate_fleet

__version__ = "1.0.0"

__all__ = ["FailurePredictor", "FleetConfig", "simulate_fleet", "__version__"]
