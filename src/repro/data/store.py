"""Memory-mapped columnar trace store.

The native NPZ format decompresses every byte it serves; at fleet scale
the replay hot path spends more time inflating zip entries than scoring.
This module adds a second on-disk format built for that path: a single
file holding the raw column bytes at 64-byte-aligned offsets behind a
small JSON header.  Reading is ``np.memmap`` + pointer arithmetic — no
decompression, no copies — and a chunked consumer touches only the pages
it slices, so peak memory stays ``O(chunk)`` like the streaming NPZ
reader but without the per-chunk ``frombuffer`` inflation.

Columns are persisted at the *storage* dtype the field registry declares
(:data:`repro.data.fields.STORAGE_DTYPES`): narrow candidates such as
``int32`` error counters or ``uint32`` workload counters are used only
when every value of the column round-trips losslessly, otherwise the
writer falls back to the column's wide in-memory dtype.  The header
records both dtypes, so loaders can always widen back to the logical
schema bit-for-bit.  Computation stays float64 end to end — storage
width is invisible to every result.

Layout::

    offset 0   8-byte magic  b"RPROCST1"
    offset 8   uint64 little-endian header length H
    offset 16  H bytes of ASCII JSON (schema below)
    ...        zero padding to the first 64-byte boundary
    ...        raw little-endian column sections, each 64-byte aligned

Header schema::

    {"version": 1, "n_rows": N,
     "columns": [{"name": ..., "dtype": "<i4", "logical_dtype": "<i8",
                  "offset": ..., "nbytes": ...}, ...]}

Writes are atomic (tmp + fsync + rename) like every other artifact.
"""

from __future__ import annotations

import json
import struct
from collections.abc import Mapping
from pathlib import Path

import numpy as np

from .dataset import DriveDayDataset
from .fields import STORAGE_DTYPES

__all__ = [
    "STORE_MAGIC",
    "STORE_SUFFIX",
    "is_store_file",
    "save_dataset_store",
    "open_store_columns",
    "load_dataset_store",
]

#: First 8 bytes of every columnar store file.
STORE_MAGIC = b"RPROCST1"

#: Conventional file suffix (``records.cst`` next to ``records.npz``).
STORE_SUFFIX = ".cst"

#: Column sections start on multiples of this (any numeric itemsize
#: divides it, so every memmap view is element-aligned).
_ALIGNMENT = 64

_HEADER_VERSION = 1


def _integrity_error(msg: str) -> Exception:
    # Lazy import: repro.data.io imports this module at load time.
    from .io import TraceIntegrityError

    return TraceIntegrityError(msg)


def is_store_file(path: str | Path) -> bool:
    """True when ``path`` exists and starts with the store magic."""
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            return fh.read(len(STORE_MAGIC)) == STORE_MAGIC
    except OSError:
        return False


def _storage_form(name: str, arr: np.ndarray) -> np.ndarray:
    """The array as it will be persisted: narrowed when exactly lossless.

    The registry's candidate dtype is used only if every value survives
    the round trip ``wide -> narrow -> wide`` bit-for-bit; otherwise the
    column keeps its in-memory dtype.  The check makes narrowing safe by
    construction — a counter that overflows its candidate (or a float
    that turns out fractional) is simply stored wide.
    """
    candidate = STORAGE_DTYPES.get(name)
    if candidate is None or candidate == arr.dtype:
        return arr
    with np.errstate(invalid="ignore"):
        narrowed = arr.astype(candidate)
    if np.array_equal(narrowed.astype(arr.dtype), arr):
        return narrowed
    return arr


def save_dataset_store(
    dataset: DriveDayDataset | Mapping[str, np.ndarray], path: str | Path
) -> None:
    """Atomically write columns to a single mmap-friendly store file."""
    from ..reliability.runner import atomic_write

    items = list(
        dataset.items() if isinstance(dataset, DriveDayDataset) else dataset.items()
    )
    n_rows = int(items[0][1].shape[0]) if items else 0
    stored: list[tuple[str, np.ndarray, str]] = []
    for name, arr in items:
        a = np.ascontiguousarray(arr)
        if a.ndim != 1:
            raise ValueError(f"column {name!r} must be 1-D, got shape {a.shape}")
        if a.shape[0] != n_rows:
            raise ValueError(
                f"column {name!r} has length {a.shape[0]}, expected {n_rows}"
            )
        if a.dtype.hasobject:
            raise ValueError(f"column {name!r} has object dtype")
        stored.append((name, _storage_form(name, a), str(arr.dtype.str)))

    # Lay out sections after a provisional header; the header length
    # depends on the offsets, so compute with a fixed-point pass (offsets
    # only grow the header by a bounded number of digits).
    def _build_header(start: int) -> tuple[bytes, list[int]]:
        offsets = []
        pos = start
        cols = []
        for name, a, logical in stored:
            pos = (pos + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
            offsets.append(pos)
            cols.append(
                {
                    "name": name,
                    "dtype": str(a.dtype.str),
                    "logical_dtype": logical,
                    "offset": pos,
                    "nbytes": int(a.nbytes),
                }
            )
            pos += a.nbytes
        body = json.dumps(
            {"version": _HEADER_VERSION, "n_rows": n_rows, "columns": cols},
            separators=(",", ":"),
        ).encode("ascii")
        return body, offsets

    start = len(STORE_MAGIC) + 8
    body, offsets = _build_header(start + 4096)
    while True:
        new_body, new_offsets = _build_header(start + len(body))
        if len(new_body) == len(body):
            body, offsets = new_body, new_offsets
            break
        body = new_body

    with atomic_write(Path(path), "wb") as fh:
        fh.write(STORE_MAGIC)
        fh.write(struct.pack("<Q", len(body)))
        fh.write(body)
        pos = start + len(body)
        for (name, a, _), off in zip(stored, offsets):
            fh.write(b"\x00" * (off - pos))
            fh.write(memoryview(a).cast("B"))
            pos = off + a.nbytes


def _read_header(path: Path) -> tuple[dict, int]:
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(STORE_MAGIC))
            if magic != STORE_MAGIC:
                raise _integrity_error(
                    f"{path} is not a columnar store file (bad magic)"
                )
            (hlen,) = struct.unpack("<Q", fh.read(8))
            body = fh.read(hlen)
            if len(body) != hlen:
                raise _integrity_error(f"store file {path} has a truncated header")
            header = json.loads(body)
    except OSError as exc:
        raise _integrity_error(f"store file {path} is unreadable ({exc})") from None
    except (ValueError, struct.error) as exc:
        raise _integrity_error(
            f"store file {path} has a corrupt header ({exc})"
        ) from None
    if header.get("version") != _HEADER_VERSION:
        raise _integrity_error(
            f"store file {path} uses unsupported version {header.get('version')!r}"
        )
    return header, len(STORE_MAGIC) + 8 + hlen


def open_store_columns(
    path: str | Path, widen: bool = True
) -> dict[str, np.ndarray]:
    """Zero-copy read-only views over a store file's columns.

    With ``widen=True`` (default) columns persisted at a narrowed storage
    dtype are cast back to their logical dtype — an exact copy for those
    columns only; full-width columns stay memory-mapped views.  With
    ``widen=False`` every column is the raw mapped section at its storage
    dtype — the replay streaming path, where the fused feature kernel
    upcasts to float64 during assembly anyway.
    """
    path = Path(path)
    if not path.exists():
        raise _integrity_error(
            f"trace file {path} does not exist (run `repro-ssd simulate` "
            "or check the --trace path)"
        )
    header, _ = _read_header(path)
    n_rows = int(header["n_rows"])
    size = path.stat().st_size
    mm = np.memmap(path, dtype=np.uint8, mode="r")
    out: dict[str, np.ndarray] = {}
    for col in header["columns"]:
        name = col["name"]
        dtype = np.dtype(col["dtype"])
        off, nbytes = int(col["offset"]), int(col["nbytes"])
        if off + nbytes > size:
            raise _integrity_error(
                f"store file {path} is truncated: column {name!r} ends at "
                f"{off + nbytes} but the file has {size} bytes"
            )
        if nbytes != n_rows * dtype.itemsize:
            raise _integrity_error(
                f"store file {path} column {name!r} has {nbytes} bytes, "
                f"expected {n_rows} x {dtype.itemsize}"
            )
        view = mm[off : off + nbytes].view(dtype)
        logical = np.dtype(col.get("logical_dtype", col["dtype"]))
        if widen and logical != dtype:
            out[name] = view.astype(logical)
            out[name].flags.writeable = False
        else:
            out[name] = view
    return out


def load_dataset_store(path: str | Path) -> DriveDayDataset:
    """Load a store file as a :class:`DriveDayDataset` (logical dtypes).

    Full-width columns stay zero-copy memory-mapped views; narrowed
    columns are widened exactly.  The result is bit-identical to loading
    the NPZ the store was packed from.
    """
    return DriveDayDataset(open_store_columns(path, widen=True))
