"""Field registry for the daily SSD telemetry schema.

The schema mirrors the daily performance log described in Section 2 of the
paper: per-day workload counters, cumulative wear counters, status flags,
bad-block counts, and ten distinct error-type counters.  Each record is one
*drive-day*.

The registry is the single source of truth for field names, dtypes and
semantics; :class:`repro.data.dataset.DriveDayDataset` and the simulator
both derive their layouts from it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Field",
    "DAILY_FIELDS",
    "ERROR_TYPES",
    "TRANSPARENT_ERRORS",
    "NON_TRANSPARENT_ERRORS",
    "WORKLOAD_FIELDS",
    "FIELD_DTYPES",
    "STORAGE_DTYPES",
    "FIELD_DOC",
    "index_fields",
]


@dataclass(frozen=True)
class Field:
    """A single column of the drive-day schema.

    Attributes
    ----------
    name:
        Column name as it appears in :class:`DriveDayDataset`.
    dtype:
        NumPy dtype used for storage.
    doc:
        One-line description of the column's semantics.
    cumulative:
        ``True`` if the column is a lifetime-cumulative counter (e.g. P/E
        cycles), ``False`` if it is a daily quantity.
    storage_dtype:
        Narrower dtype the column may be *persisted* as in the columnar
        trace store (``repro.data.store``) when every value round-trips
        losslessly; ``None`` means "store as ``dtype``".  Computation
        always widens back to float64, so storage width never affects
        results.
    """

    name: str
    dtype: np.dtype
    doc: str
    cumulative: bool = False
    storage_dtype: np.dtype | None = None


#: The ten error types reported by the drive firmware, in the order used
#: throughout the paper (Tables 1 and 2).  All counts are per-day.
ERROR_TYPES: tuple[str, ...] = (
    "correctable_error",
    "erase_error",
    "final_read_error",
    "final_write_error",
    "meta_error",
    "read_error",
    "response_error",
    "timeout_error",
    "uncorrectable_error",
    "write_error",
)

#: Errors that may be hidden from the user (Section 2).
TRANSPARENT_ERRORS: tuple[str, ...] = (
    "correctable_error",
    "read_error",
    "write_error",
    "erase_error",
)

#: Errors that are visible to the user and indicate aberrant behaviour.
NON_TRANSPARENT_ERRORS: tuple[str, ...] = (
    "final_read_error",
    "final_write_error",
    "meta_error",
    "response_error",
    "timeout_error",
    "uncorrectable_error",
)

#: Daily workload counters.
WORKLOAD_FIELDS: tuple[str, ...] = ("read_count", "write_count", "erase_count")


def _fields() -> tuple[Field, ...]:
    # Workload counters are float64 in the schema but integer-valued by
    # construction (daily counts), so they usually pack losslessly into
    # uint32; the store verifies the round-trip per column and falls back
    # to the wide dtype whenever a value does not fit exactly.
    u32 = np.dtype(np.uint32)
    f: list[Field] = [
        Field("drive_id", np.dtype(np.int32), "Unique drive identifier."),
        Field("model", np.dtype(np.int8), "Drive model index (0=MLC-A, 1=MLC-B, 2=MLC-D)."),
        Field("age_days", np.dtype(np.int32), "Drive age in days at report time."),
        Field("calendar_day", np.dtype(np.int32), "Data-center calendar day of the report."),
        Field("read_count", np.dtype(np.float64), "Read operations performed this day.", storage_dtype=u32),
        Field("write_count", np.dtype(np.float64), "Write operations performed this day.", storage_dtype=u32),
        Field("erase_count", np.dtype(np.float64), "Erase operations performed this day.", storage_dtype=u32),
        Field(
            "pe_cycles",
            np.dtype(np.float64),
            "Cumulative program-erase cycles over the drive lifetime.",
            cumulative=True,
        ),
        Field("status_dead", np.dtype(np.int8), "1 if the drive reports itself dead."),
        Field("status_read_only", np.dtype(np.int8), "1 if the drive is in read-only mode."),
        Field(
            "factory_bad_blocks",
            np.dtype(np.int32),
            "Blocks non-operational at purchase (constant per drive).",
            cumulative=True,
        ),
        Field(
            "grown_bad_blocks",
            np.dtype(np.int32),
            "Cumulative blocks retired after non-transparent errors.",
            cumulative=True,
        ),
    ]
    for err in ERROR_TYPES:
        f.append(
            Field(
                err,
                np.dtype(np.int64),
                f"Count of '{err.replace('_', ' ')}' events this day.",
                storage_dtype=np.dtype(np.int32),
            )
        )
    return tuple(f)


#: Full drive-day schema in storage order.
DAILY_FIELDS: tuple[Field, ...] = _fields()

#: Mapping ``name -> dtype`` for every column.
FIELD_DTYPES: dict[str, np.dtype] = {f.name: f.dtype for f in DAILY_FIELDS}

#: Mapping ``name -> candidate storage dtype`` for the columnar store
#: (falls back to ``FIELD_DTYPES[name]`` when no narrowing is declared).
STORAGE_DTYPES: dict[str, np.dtype] = {
    f.name: f.storage_dtype if f.storage_dtype is not None else f.dtype
    for f in DAILY_FIELDS
}

#: Mapping ``name -> docstring`` for every column.
FIELD_DOC: dict[str, str] = {f.name: f.doc for f in DAILY_FIELDS}


def index_fields() -> tuple[str, ...]:
    """Names of the identity/index columns of the schema."""
    return ("drive_id", "model", "age_days", "calendar_day")
