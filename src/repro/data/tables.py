"""Per-drive and per-failure event tables.

Alongside the daily performance log, the paper uses a second data source: a
log of *swap events* marking when failed drives were extracted for repair
(Section 3).  :class:`SwapLog` represents that log, one row per
swap-inducing failure.  :class:`DriveTable` summarizes drive-level metadata
(deployment time, observation horizon) needed to normalize failure rates by
population exposure (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DriveTable", "SwapLog", "MODEL_NAMES", "model_index"]

#: Canonical drive model names in index order.
MODEL_NAMES: tuple[str, ...] = ("MLC-A", "MLC-B", "MLC-D")


def model_index(name: str) -> int:
    """Map a model name ('MLC-A'/'MLC-B'/'MLC-D') to its integer index."""
    try:
        return MODEL_NAMES.index(name)
    except ValueError:
        raise KeyError(f"unknown drive model {name!r}") from None


@dataclass
class DriveTable:
    """Drive-level metadata, one entry per physical drive.

    All arrays are aligned and indexed by drive position (not drive id);
    ``drive_id`` gives the id of each position.

    Attributes
    ----------
    drive_id:
        Unique integer id per drive.
    model:
        Model index per drive (see :data:`MODEL_NAMES`).
    deploy_day:
        Calendar day the drive entered production.
    end_of_observation_age:
        Drive age (days) at the end of the observation window — either the
        trace horizon or the drive's permanent retirement, whichever came
        first.  Used as the exposure denominator for hazard estimates.
    """

    drive_id: np.ndarray
    model: np.ndarray
    deploy_day: np.ndarray
    end_of_observation_age: np.ndarray

    def __post_init__(self) -> None:
        self.drive_id = np.asarray(self.drive_id, dtype=np.int32)
        self.model = np.asarray(self.model, dtype=np.int8)
        self.deploy_day = np.asarray(self.deploy_day, dtype=np.int32)
        self.end_of_observation_age = np.asarray(
            self.end_of_observation_age, dtype=np.int32
        )
        n = len(self.drive_id)
        for name in ("model", "deploy_day", "end_of_observation_age"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"DriveTable column {name!r} misaligned")

    def __len__(self) -> int:
        return len(self.drive_id)

    def n_drives(self, model: int | None = None) -> int:
        """Number of drives, optionally restricted to one model."""
        if model is None:
            return len(self.drive_id)
        return int(np.count_nonzero(self.model == model))


@dataclass
class SwapLog:
    """The swap/repair event log, one row per swap-inducing failure.

    Every swap in the log corresponds to exactly one catastrophic failure
    (Section 3).  Ages are in days since the start of the drive's lifetime;
    ``np.nan`` marks right-censored (never-observed) events.

    Attributes
    ----------
    drive_id, model:
        Identity of the failed drive.
    failure_age:
        Drive age on its last day of operational activity before the swap.
    swap_age:
        Drive age on the day the physical swap occurred.
    reentry_age:
        Drive age on the day the repaired drive re-entered production, or
        ``nan`` if it was never observed to return.
    operational_start_age:
        Age at which the failed operational period began (0 for the first
        period, the previous re-entry age otherwise).
    failure_mode:
        Latent generator mode (simulator ground truth; ``-1`` when unknown).
        Used only for validation, never as a model feature.
    """

    drive_id: np.ndarray
    model: np.ndarray
    failure_age: np.ndarray
    swap_age: np.ndarray
    reentry_age: np.ndarray
    operational_start_age: np.ndarray
    failure_mode: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.drive_id = np.asarray(self.drive_id, dtype=np.int32)
        self.model = np.asarray(self.model, dtype=np.int8)
        self.failure_age = np.asarray(self.failure_age, dtype=np.float64)
        self.swap_age = np.asarray(self.swap_age, dtype=np.float64)
        self.reentry_age = np.asarray(self.reentry_age, dtype=np.float64)
        self.operational_start_age = np.asarray(
            self.operational_start_age, dtype=np.float64
        )
        if self.failure_mode is None:
            self.failure_mode = np.full(len(self.drive_id), -1, dtype=np.int8)
        else:
            self.failure_mode = np.asarray(self.failure_mode, dtype=np.int8)
        n = len(self.drive_id)
        for name in (
            "model",
            "failure_age",
            "swap_age",
            "reentry_age",
            "operational_start_age",
            "failure_mode",
        ):
            if len(getattr(self, name)) != n:
                raise ValueError(f"SwapLog column {name!r} misaligned")
        if n:
            bad = self.swap_age < self.failure_age
            if bool(np.any(bad)):
                raise ValueError("swap_age must be >= failure_age for every event")

    def __len__(self) -> int:
        return len(self.drive_id)

    # ------------------------------------------------------------------ views
    def for_model(self, model: int) -> "SwapLog":
        """Subset of events belonging to one drive model."""
        m = self.model == model
        return self.select(m)

    def select(self, mask: np.ndarray) -> "SwapLog":
        """Row subset by boolean mask or index array."""
        return SwapLog(
            self.drive_id[mask],
            self.model[mask],
            self.failure_age[mask],
            self.swap_age[mask],
            self.reentry_age[mask],
            self.operational_start_age[mask],
            self.failure_mode[mask],
        )

    # ------------------------------------------------------------------ derived
    def failures_per_drive(self) -> dict[int, int]:
        """Mapping drive_id -> number of lifetime failures."""
        ids, counts = np.unique(self.drive_id, return_counts=True)
        return {int(i): int(c) for i, c in zip(ids, counts)}

    def non_operational_days(self) -> np.ndarray:
        """Length of the pre-swap non-operational period (Figure 4)."""
        return self.swap_age - self.failure_age

    def time_to_repair(self) -> np.ndarray:
        """Days from swap to re-entry; ``nan`` when never repaired (Fig 5)."""
        return self.reentry_age - self.swap_age

    def first_failure_age(self) -> tuple[np.ndarray, np.ndarray]:
        """Per failed drive: (drive_id, age at first failure)."""
        order = np.lexsort((self.failure_age, self.drive_id))
        ids = self.drive_id[order]
        ages = self.failure_age[order]
        first = np.concatenate(([True], ids[1:] != ids[:-1]))
        return ids[first], ages[first]
