"""Columnar container for drive-day telemetry records.

The paper's analyses operate over tens of millions of drive-day rows, so the
container is a struct-of-arrays: one contiguous NumPy array per column, all
of equal length.  Rows are kept sorted by ``(drive_id, age_days)`` which
allows per-drive group operations (cumulative sums, last-row extraction,
windowed lookbacks) to be expressed as vectorized segment reductions instead
of Python-level loops — the idiom recommended by the HPC guides bundled with
this repository.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from .fields import DAILY_FIELDS, FIELD_DTYPES

__all__ = ["DriveDayDataset", "concat_datasets"]


class DriveDayDataset:
    """An immutable-ish table of drive-day records stored column-wise.

    Parameters
    ----------
    columns:
        Mapping of column name to 1-D array.  All arrays must share the same
        length.  Unknown columns are allowed (derived features are stored
        alongside raw telemetry), but known columns are cast to their
        registered dtype.
    check_sorted:
        If ``True`` (default), verify that rows are sorted by
        ``(drive_id, age_days)`` when both columns are present, and sort
        them if they are not.
    """

    def __init__(self, columns: Mapping[str, np.ndarray], check_sorted: bool = True):
        cols: dict[str, np.ndarray] = {}
        n = None
        for name, arr in columns.items():
            a = np.asarray(arr)
            if a.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D, got shape {a.shape}")
            if name in FIELD_DTYPES:
                a = a.astype(FIELD_DTYPES[name], copy=False)
            if n is None:
                n = a.shape[0]
            elif a.shape[0] != n:
                raise ValueError(
                    f"column {name!r} has length {a.shape[0]}, expected {n}"
                )
            cols[name] = a
        self._columns = cols
        self._n = 0 if n is None else n
        self._group_cache: tuple[np.ndarray, np.ndarray] | None = None
        if check_sorted and "drive_id" in cols and "age_days" in cols and self._n:
            ids = cols["drive_id"]
            age = cols["age_days"]
            same = ids[1:] == ids[:-1]
            ordered = (ids[1:] > ids[:-1]) | (same & (age[1:] >= age[:-1]))
            if not bool(np.all(ordered)):
                order = np.lexsort((age, ids))
                self._columns = {k: v[order] for k, v in cols.items()}

    # ------------------------------------------------------------------ dict-like
    def __len__(self) -> int:
        return self._n

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        return self._columns[name]

    def keys(self) -> Iterable[str]:
        return self._columns.keys()

    def items(self) -> Iterable[tuple[str, np.ndarray]]:
        return self._columns.items()

    @property
    def n_rows(self) -> int:
        return self._n

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    # ------------------------------------------------------------------ construction
    @classmethod
    def empty(cls, extra: Iterable[str] = ()) -> "DriveDayDataset":
        """An empty dataset with the full registered schema."""
        cols = {f.name: np.empty(0, dtype=f.dtype) for f in DAILY_FIELDS}
        for name in extra:
            cols[name] = np.empty(0, dtype=np.float64)
        return cls(cols, check_sorted=False)

    def with_columns(self, new: Mapping[str, np.ndarray]) -> "DriveDayDataset":
        """Return a new dataset with additional/replaced columns."""
        cols = dict(self._columns)
        for name, arr in new.items():
            a = np.asarray(arr)
            if a.shape[0] != self._n:
                raise ValueError(
                    f"column {name!r} has length {a.shape[0]}, expected {self._n}"
                )
            cols[name] = a
        return DriveDayDataset(cols, check_sorted=False)

    def select(self, mask_or_index: np.ndarray) -> "DriveDayDataset":
        """Row subset by boolean mask or integer index array.

        The subset preserves row order, so a monotone index keeps the
        ``(drive_id, age_days)`` sort invariant.
        """
        idx = np.asarray(mask_or_index)
        return DriveDayDataset(
            {k: v[idx] for k, v in self._columns.items()}, check_sorted=False
        )

    # ------------------------------------------------------------------ grouping
    def drive_groups(self) -> tuple[np.ndarray, np.ndarray]:
        """Group rows by drive.

        Returns
        -------
        unique_ids:
            Sorted array of distinct drive ids.
        offsets:
            Array of length ``len(unique_ids) + 1``; rows of drive ``i`` are
            ``slice(offsets[i], offsets[i + 1])``.
        """
        if self._group_cache is None:
            ids = self._columns["drive_id"]
            if self._n == 0:
                self._group_cache = (
                    np.empty(0, dtype=ids.dtype),
                    np.zeros(1, dtype=np.int64),
                )
            else:
                change = np.flatnonzero(ids[1:] != ids[:-1]) + 1
                starts = np.concatenate(([0], change))
                offsets = np.concatenate((starts, [self._n])).astype(np.int64)
                self._group_cache = (ids[starts], offsets)
        return self._group_cache

    def iter_drives(self) -> Iterator[tuple[int, "DriveDayDataset"]]:
        """Iterate ``(drive_id, per-drive sub-dataset)`` pairs."""
        ids, offsets = self.drive_groups()
        for i, did in enumerate(ids):
            sl = slice(int(offsets[i]), int(offsets[i + 1]))
            yield int(did), DriveDayDataset(
                {k: v[sl] for k, v in self._columns.items()}, check_sorted=False
            )

    def n_drives(self) -> int:
        return len(self.drive_groups()[0])

    # ------------------------------------------------------------------ segment ops
    def grouped_cumsum(self, name: str) -> np.ndarray:
        """Cumulative sum of ``name`` restarted at each drive boundary.

        This converts a daily counter into the lifetime-cumulative counter
        used as a model feature (Section 5.1 of the paper) without a Python
        loop: a global cumsum is corrected by subtracting the running total
        attained just before each segment start.
        """
        x = self._columns[name].astype(np.float64, copy=False)
        if self._n == 0:
            return np.zeros(0)
        _, offsets = self.drive_groups()
        total = np.cumsum(x)
        starts = offsets[:-1]
        # Baseline to subtract within each segment: cumulative total just
        # before the segment start (0 for the first segment).
        base_vals = np.where(starts > 0, total[np.maximum(starts - 1, 0)], 0.0)
        lengths = np.diff(offsets)
        baseline = np.repeat(base_vals, lengths)
        return total - baseline

    def grouped_last(self, name: str) -> np.ndarray:
        """Last value of ``name`` per drive (e.g. final cumulative count)."""
        _, offsets = self.drive_groups()
        if self._n == 0:
            return np.empty(0, dtype=self._columns[name].dtype)
        return self._columns[name][offsets[1:] - 1]

    def grouped_sum(self, name: str) -> np.ndarray:
        """Sum of ``name`` per drive."""
        x = self._columns[name].astype(np.float64, copy=False)
        _, offsets = self.drive_groups()
        return np.add.reduceat(x, offsets[:-1]) if self._n else np.zeros(0)

    def grouped_max(self, name: str) -> np.ndarray:
        """Maximum of ``name`` per drive."""
        x = self._columns[name]
        _, offsets = self.drive_groups()
        return np.maximum.reduceat(x, offsets[:-1]) if self._n else np.zeros(0)

    def grouped_count(self) -> np.ndarray:
        """Number of recorded drive-days per drive."""
        _, offsets = self.drive_groups()
        return np.diff(offsets)

    # ------------------------------------------------------------------ misc
    def feature_matrix(self, names: Iterable[str]) -> np.ndarray:
        """Stack the requested columns into a dense ``(n_rows, k)`` matrix."""
        names = list(names)
        out = np.empty((self._n, len(names)), dtype=np.float64)
        for j, name in enumerate(names):
            out[:, j] = self._columns[name]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DriveDayDataset(n_rows={self._n}, n_drives={self.n_drives()}, "
            f"columns={len(self._columns)})"
        )


def concat_datasets(parts: Iterable[DriveDayDataset]) -> DriveDayDataset:
    """Concatenate datasets row-wise (columns must match exactly)."""
    parts = [p for p in parts if len(p)]
    if not parts:
        return DriveDayDataset.empty()
    names = parts[0].column_names
    for p in parts[1:]:
        if p.column_names != names:
            raise ValueError("cannot concat datasets with differing columns")
    cols = {k: np.concatenate([p[k] for p in parts]) for k in names}
    return DriveDayDataset(cols)
