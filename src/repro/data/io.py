"""Persistence for telemetry datasets and event tables.

NPZ is the native format (one compressed array per column — fast and exact).
CSV export is provided for interoperability with external tooling.

All NPZ writers go through :func:`repro.reliability.runner.atomic_write`
(tmp file + fsync + ``os.replace``): a killed process never leaves a
half-written trace behind.  The ``*_checked`` loaders additionally
validate raw columns *before* the dataset constructor's sanitizing
sort/cast, and apply a repair policy (``strict``/``repair``/
``quarantine``) — see :mod:`repro.reliability`.
"""

from __future__ import annotations

import csv
import zipfile
from collections.abc import Iterator
from pathlib import Path
from typing import Any

import numpy as np

from ..obs import metrics, tracing
from . import store
from .dataset import DriveDayDataset
from .tables import DriveTable, SwapLog

__all__ = [
    "TraceIntegrityError",
    "save_dataset_npz",
    "load_dataset_npz",
    "load_dataset_checked",
    "load_raw_columns_npz",
    "iter_drive_day_chunks",
    "iter_drive_days",
    "export_dataset_csv",
    "save_swaplog_npz",
    "load_swaplog_npz",
    "save_drivetable_npz",
    "load_drivetable_npz",
]


def _readonly_view(arr: np.ndarray) -> np.ndarray:
    """A read-only view of ``arr`` (the backing buffer is shared).

    Chunk iteration yields views into live storage — dataset columns or
    memory-mapped store sections — so consumers must never write through
    them.  Marking every yielded chunk read-only makes that contract
    enforced instead of conventional, and uniform across sources (the
    file-backed paths were already read-only; in-memory slices were not).
    """
    view = arr[:]
    view.flags.writeable = False
    return view


class TraceIntegrityError(OSError):
    """An NPZ artifact is missing, truncated, or otherwise unreadable."""


def _atomic_savez(path: Path, **arrays: np.ndarray) -> None:
    # Local import: repro.reliability imports repro.data at module load.
    from ..reliability.runner import atomic_save_npz

    atomic_save_npz(path, **arrays)


def _load_npz(path: str | Path) -> dict[str, np.ndarray]:
    """Read every array of an NPZ or columnar store file.

    Low-level failures map to :class:`TraceIntegrityError` with an
    actionable message.  Store files (sniffed by magic) come back at
    their *logical* dtypes, so every loader built on this helper accepts
    either format transparently.
    """
    path = Path(path)
    if not path.exists():
        raise TraceIntegrityError(
            f"trace file {path} does not exist (run `repro-ssd simulate` "
            "or check the --trace path)"
        )
    if store.is_store_file(path):
        return store.open_store_columns(path, widen=True)
    try:
        with np.load(path) as payload:
            return {k: payload[k] for k in payload.files}
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as exc:
        raise TraceIntegrityError(
            f"trace file {path} is corrupt or truncated ({exc}); "
            "re-run the producing command — writes are atomic, so this "
            "usually means the file was damaged after it was written"
        ) from None


def save_dataset_npz(dataset: DriveDayDataset, path: str | Path) -> None:
    """Atomically write a :class:`DriveDayDataset` to a ``.npz`` file."""
    with tracing.span("repro.data.save_records", rows_in=len(dataset)):
        _atomic_savez(Path(path), **{k: v for k, v in dataset.items()})
    metrics.inc("repro_rows_total", len(dataset), stage="data.save_records")


def load_dataset_npz(path: str | Path) -> DriveDayDataset:
    """Load a dataset previously written by :func:`save_dataset_npz`."""
    with tracing.span("repro.data.load_records") as sp:
        dataset = DriveDayDataset(_load_npz(path))
        sp.set(rows_out=len(dataset))
    metrics.inc("repro_rows_total", len(dataset), stage="data.load_records")
    return dataset


def load_raw_columns_npz(path: str | Path) -> dict[str, np.ndarray]:
    """Load raw record columns without the dataset's sanitizing sort/cast.

    This is the entry point for validation: corruption such as
    out-of-order rows or wrong dtypes must be *seen*, not silently fixed
    by the constructor.
    """
    return _load_npz(path)


def load_dataset_checked(
    path: str | Path,
    policy: str = "strict",
    max_gap_days: int | None = None,
):
    """Load + validate a dataset under a repair policy.

    Returns a :class:`repro.reliability.repair.RepairResult` whose
    ``dataset`` is ready for the pipeline.  Raises
    :class:`TraceIntegrityError` for unreadable files and
    :class:`repro.reliability.repair.TraceValidationError` when the
    ``strict`` policy rejects the content.
    """
    from ..reliability.repair import apply_policy

    with tracing.span("repro.data.load_checked") as sp:
        cols = load_raw_columns_npz(path)
        rows_in = int(next(iter(cols.values())).shape[0]) if cols else 0
        result = apply_policy(cols, policy=policy, max_gap_days=max_gap_days)
        sp.set(
            rows_in=rows_in,
            rows_out=len(result.dataset),
            n_quarantined=result.n_quarantined,
        )
    metrics.inc(
        "repro_rows_quarantined_total",
        result.n_quarantined,
        help="Rows marked untrusted by the quarantine policy",
    )
    return result


class _ColumnStream:
    """One NPZ entry opened for incremental decompression.

    ``zipfile`` hands back a streaming file object per entry; after the
    ``.npy`` header is parsed, fixed-size reads yield contiguous row
    slices without ever holding the whole column in memory.
    """

    def __init__(self, zf: zipfile.ZipFile, entry: str):
        self.name = entry[: -len(".npy")]
        self.fp = zf.open(entry)
        version = np.lib.format.read_magic(self.fp)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(self.fp)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(self.fp)
        else:  # pragma: no cover - numpy only emits 1.0/2.0 today
            raise TraceIntegrityError(
                f"column {entry!r} uses unsupported npy format {version}"
            )
        if len(shape) != 1 or fortran or dtype.hasobject:
            raise TraceIntegrityError(
                f"column {self.name!r} is not a streamable 1-D array "
                f"(shape={shape}, dtype={dtype})"
            )
        self.n_rows = shape[0]
        self.dtype = dtype

    def read(self, n: int) -> np.ndarray:
        data = self.fp.read(n * self.dtype.itemsize)
        if len(data) != n * self.dtype.itemsize:
            raise TraceIntegrityError(
                f"column {self.name!r} is truncated mid-stream"
            )
        return np.frombuffer(data, dtype=self.dtype)


def iter_drive_day_chunks(
    source: DriveDayDataset | str | Path, chunk_rows: int = 4096
) -> Iterator[dict[str, np.ndarray]]:
    """Stream a telemetry dataset as column-dict chunks in row order.

    Rows arrive in the stored ``(drive_id, age_days)`` order, at most
    ``chunk_rows`` per chunk.  Given an NPZ path, the entries are
    decompressed incrementally — peak memory is ``O(chunk_rows ×
    n_columns)``, not the full trace — which is what lets ``serve
    replay`` stream fleet-scale traces through the online feature store.
    Given a columnar store path (``repro.data.store``), chunks are
    zero-copy slices of the memory-mapped sections at their storage
    dtypes — no decompression and no buffer copies at all.  Given an
    in-memory dataset, chunks are zero-copy column slices.

    All yielded arrays are read-only, whatever the source: they are
    views into live storage, and a consumer writing through them would
    corrupt the trace (or crash on a mapped file).
    """
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    if isinstance(source, DriveDayDataset):
        n = len(source)
        for lo in range(0, n, chunk_rows):
            hi = min(lo + chunk_rows, n)
            yield {k: _readonly_view(v[lo:hi]) for k, v in source.items()}
        return
    path = Path(source)
    if not path.exists():
        raise TraceIntegrityError(
            f"trace file {path} does not exist (run `repro-ssd simulate` "
            "or check the --trace path)"
        )
    if store.is_store_file(path):
        cols = store.open_store_columns(path, widen=False)
        n = int(next(iter(cols.values())).shape[0]) if cols else 0
        for lo in range(0, n, chunk_rows):
            hi = min(lo + chunk_rows, n)
            yield {k: v[lo:hi] for k, v in cols.items()}
        return
    try:
        with zipfile.ZipFile(path) as zf:
            streams = [
                _ColumnStream(zf, entry)
                for entry in zf.namelist()
                if entry.endswith(".npy")
            ]
            if not streams:
                return
            n = streams[0].n_rows
            for s in streams:
                if s.n_rows != n:
                    raise TraceIntegrityError(
                        f"column {s.name!r} has {s.n_rows} rows, expected {n}"
                    )
            done = 0
            while done < n:
                take = min(chunk_rows, n - done)
                yield {s.name: s.read(take) for s in streams}
                done += take
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as exc:
        raise TraceIntegrityError(
            f"trace file {path} is corrupt or truncated ({exc}); "
            "re-run the producing command — writes are atomic, so this "
            "usually means the file was damaged after it was written"
        ) from None


def iter_drive_days(
    source: DriveDayDataset | str | Path, chunk_rows: int = 4096
) -> Iterator[dict[str, Any]]:
    """Yield one record dict per drive-day, in ``(drive_id, age_days)`` order.

    Built on :func:`iter_drive_day_chunks`, so a path is streamed without
    materializing the full arrays.  Values are NumPy scalars (exact — no
    float round-trips), keyed by column name.
    """
    for chunk in iter_drive_day_chunks(source, chunk_rows=chunk_rows):
        names = list(chunk)
        cols = [chunk[name] for name in names]
        for i in range(len(cols[0])):
            yield {name: col[i] for name, col in zip(names, cols)}


def export_dataset_csv(
    dataset: DriveDayDataset, path: str | Path, max_rows: int | None = None
) -> int:
    """Export a dataset to CSV; returns the number of rows written.

    ``max_rows`` caps output size (the full trace can be tens of millions of
    rows; CSV export is intended for samples and debugging).
    """
    names = dataset.column_names
    n = len(dataset) if max_rows is None else min(len(dataset), max_rows)
    with open(Path(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        cols = [dataset[name] for name in names]
        for i in range(n):
            writer.writerow([col[i] for col in cols])
    return n


_SWAP_COLS = (
    "drive_id",
    "model",
    "failure_age",
    "swap_age",
    "reentry_age",
    "operational_start_age",
    "failure_mode",
)


def save_swaplog_npz(log: SwapLog, path: str | Path) -> None:
    """Atomically write a :class:`SwapLog` to a ``.npz`` file."""
    _atomic_savez(Path(path), **{c: getattr(log, c) for c in _SWAP_COLS})


def load_swaplog_npz(path: str | Path) -> SwapLog:
    """Load a swap log previously written by :func:`save_swaplog_npz`."""
    with tracing.span("repro.data.load_swaps") as sp:
        payload = _load_npz(path)
        first = payload.get(_SWAP_COLS[0])
        sp.set(rows_out=int(first.shape[0]) if first is not None else 0)
    try:
        return SwapLog(*(payload[c] for c in _SWAP_COLS))
    except KeyError as exc:
        raise TraceIntegrityError(
            f"swap log {path} is missing column {exc}; not a swap-log NPZ?"
        ) from None


_DRIVE_COLS = ("drive_id", "model", "deploy_day", "end_of_observation_age")


def save_drivetable_npz(table: DriveTable, path: str | Path) -> None:
    """Atomically write a :class:`DriveTable` to a ``.npz`` file."""
    _atomic_savez(Path(path), **{c: getattr(table, c) for c in _DRIVE_COLS})


def load_drivetable_npz(path: str | Path) -> DriveTable:
    """Load a drive table previously written by :func:`save_drivetable_npz`."""
    with tracing.span("repro.data.load_drives") as sp:
        payload = _load_npz(path)
        first = payload.get(_DRIVE_COLS[0])
        sp.set(rows_out=int(first.shape[0]) if first is not None else 0)
    try:
        return DriveTable(*(payload[c] for c in _DRIVE_COLS))
    except KeyError as exc:
        raise TraceIntegrityError(
            f"drive table {path} is missing column {exc}; not a drive-table NPZ?"
        ) from None
