"""Persistence for telemetry datasets and event tables.

NPZ is the native format (one compressed array per column — fast and exact).
CSV export is provided for interoperability with external tooling.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .dataset import DriveDayDataset
from .tables import DriveTable, SwapLog

__all__ = [
    "save_dataset_npz",
    "load_dataset_npz",
    "export_dataset_csv",
    "save_swaplog_npz",
    "load_swaplog_npz",
    "save_drivetable_npz",
    "load_drivetable_npz",
]


def save_dataset_npz(dataset: DriveDayDataset, path: str | Path) -> None:
    """Write a :class:`DriveDayDataset` to a compressed ``.npz`` file."""
    np.savez_compressed(Path(path), **{k: v for k, v in dataset.items()})


def load_dataset_npz(path: str | Path) -> DriveDayDataset:
    """Load a dataset previously written by :func:`save_dataset_npz`."""
    with np.load(Path(path)) as payload:
        cols = {k: payload[k] for k in payload.files}
    return DriveDayDataset(cols)


def export_dataset_csv(
    dataset: DriveDayDataset, path: str | Path, max_rows: int | None = None
) -> int:
    """Export a dataset to CSV; returns the number of rows written.

    ``max_rows`` caps output size (the full trace can be tens of millions of
    rows; CSV export is intended for samples and debugging).
    """
    names = dataset.column_names
    n = len(dataset) if max_rows is None else min(len(dataset), max_rows)
    with open(Path(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        cols = [dataset[name] for name in names]
        for i in range(n):
            writer.writerow([col[i] for col in cols])
    return n


_SWAP_COLS = (
    "drive_id",
    "model",
    "failure_age",
    "swap_age",
    "reentry_age",
    "operational_start_age",
    "failure_mode",
)


def save_swaplog_npz(log: SwapLog, path: str | Path) -> None:
    """Write a :class:`SwapLog` to a compressed ``.npz`` file."""
    np.savez_compressed(Path(path), **{c: getattr(log, c) for c in _SWAP_COLS})


def load_swaplog_npz(path: str | Path) -> SwapLog:
    """Load a swap log previously written by :func:`save_swaplog_npz`."""
    with np.load(Path(path)) as payload:
        return SwapLog(*(payload[c] for c in _SWAP_COLS))


_DRIVE_COLS = ("drive_id", "model", "deploy_day", "end_of_observation_age")


def save_drivetable_npz(table: DriveTable, path: str | Path) -> None:
    """Write a :class:`DriveTable` to a compressed ``.npz`` file."""
    np.savez_compressed(Path(path), **{c: getattr(table, c) for c in _DRIVE_COLS})


def load_drivetable_npz(path: str | Path) -> DriveTable:
    """Load a drive table previously written by :func:`save_drivetable_npz`."""
    with np.load(Path(path)) as payload:
        return DriveTable(*(payload[c] for c in _DRIVE_COLS))
