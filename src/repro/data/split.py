"""Drive-grouped train/test splitting.

Section 5.1 of the paper stresses that rows belonging to the same drive are
highly correlated across days, so naive row-wise cross-validation leaks
information and inflates scores.  The folds here partition *drive ids*, and
every row of a drive follows its drive into exactly one fold.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["GroupKFold", "grouped_train_test_split"]


class GroupKFold:
    """K-fold cross-validation where groups never straddle folds.

    Parameters
    ----------
    n_splits:
        Number of folds (the paper uses 5).
    shuffle:
        Shuffle group order before assignment.  The paper partitions drive
        ids randomly; deterministic behaviour is obtained via ``seed``.
    seed:
        Seed for the shuffle.
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int | None = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, groups: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_index, test_index)`` row-index pairs.

        Parameters
        ----------
        groups:
            Per-row group label (drive id), length ``n_rows``.
        """
        groups = np.asarray(groups)
        unique = np.unique(groups)
        if len(unique) < self.n_splits:
            raise ValueError(
                f"need at least n_splits={self.n_splits} groups, got {len(unique)}"
            )
        order = unique.copy()
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(order)
        fold_of_group = {g: i % self.n_splits for i, g in enumerate(order)}
        fold = np.fromiter(
            (fold_of_group[g] for g in groups), dtype=np.int64, count=len(groups)
        )
        for k in range(self.n_splits):
            test = np.flatnonzero(fold == k)
            train = np.flatnonzero(fold != k)
            yield train, test


def grouped_train_test_split(
    groups: np.ndarray, test_fraction: float = 0.2, seed: int | None = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Single grouped split: a ``test_fraction`` share of groups goes to test.

    Returns ``(train_index, test_index)`` row-index arrays.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    groups = np.asarray(groups)
    unique = np.unique(groups)
    rng = np.random.default_rng(seed)
    order = unique.copy()
    rng.shuffle(order)
    n_test = max(1, int(round(test_fraction * len(unique))))
    test_groups = set(order[:n_test].tolist())
    is_test = np.fromiter(
        (g in test_groups for g in groups), dtype=bool, count=len(groups)
    )
    return np.flatnonzero(~is_test), np.flatnonzero(is_test)
