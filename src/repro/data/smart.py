"""SMART-attribute export adapter.

The paper's drives report through a proprietary firmware format rather
than standard SMART (Section 2), while most public tooling — and the
related-work predictors it cites (Botezatu et al., Narayanan et al., Xu et
al.) — consume SMART attribute tables (e.g. the Backblaze dataset layout).
This adapter maps the trace schema onto the closest standard SMART
attributes so those external pipelines can run on simulated fleets:

====================  =======================================================
SMART attribute       Source column
====================  =======================================================
smart_5   (raw)       reallocated sectors      <- grown + factory bad blocks
smart_9   (raw)       power-on hours           <- drive age in days * 24
smart_187 (raw)       reported uncorrectable   <- cumulative UE count
smart_197 (raw)       pending sectors          <- daily UE count (proxy)
smart_199 (raw)       interface CRC errors     <- timeout + response errors
smart_241 (raw)       total LBAs written       <- cumulative writes * 8
smart_242 (raw)       total LBAs read          <- cumulative reads * 8
====================  =======================================================

The mapping loses information (that is inherent to SMART) but preserves the
signals those external models use.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .dataset import DriveDayDataset

__all__ = ["SMART_COLUMNS", "to_smart_table", "export_smart_csv"]

#: Column order of the exported SMART table.
SMART_COLUMNS: tuple[str, ...] = (
    "date",
    "serial_number",
    "model",
    "failure",
    "smart_5_raw",
    "smart_9_raw",
    "smart_187_raw",
    "smart_197_raw",
    "smart_199_raw",
    "smart_241_raw",
    "smart_242_raw",
)

#: 4 KiB operations expressed in 512-byte LBAs.
_LBAS_PER_OP = 8


def to_smart_table(
    records: DriveDayDataset, failure_labels: np.ndarray | None = None
) -> dict[str, np.ndarray]:
    """Convert a telemetry dataset to a SMART-style columnar table.

    Parameters
    ----------
    records:
        Drive-day telemetry (sorted by drive, age).
    failure_labels:
        Optional per-row 0/1 column for the Backblaze-style ``failure``
        field (e.g. from :func:`repro.core.lookahead_labels` with N=1);
        zeros when omitted.

    Returns
    -------
    Mapping of SMART column name to array, aligned with ``records`` rows.
    """
    n = len(records)
    if failure_labels is None:
        failure_labels = np.zeros(n, dtype=np.int64)
    failure_labels = np.asarray(failure_labels)
    if failure_labels.shape[0] != n:
        raise ValueError("failure_labels must align with records")

    cum_ue = records.grouped_cumsum("uncorrectable_error")
    cum_writes = records.grouped_cumsum("write_count")
    cum_reads = records.grouped_cumsum("read_count")
    crc = (
        records["timeout_error"].astype(np.int64)
        + records["response_error"].astype(np.int64)
    )
    return {
        "date": np.asarray(records["calendar_day"], dtype=np.int64),
        "serial_number": np.asarray(records["drive_id"], dtype=np.int64),
        "model": np.asarray(records["model"], dtype=np.int64),
        "failure": failure_labels.astype(np.int64),
        "smart_5_raw": (
            records["grown_bad_blocks"].astype(np.int64)
            + records["factory_bad_blocks"].astype(np.int64)
        ),
        "smart_9_raw": records["age_days"].astype(np.int64) * 24,
        "smart_187_raw": cum_ue.astype(np.int64),
        "smart_197_raw": np.asarray(records["uncorrectable_error"], dtype=np.int64),
        "smart_199_raw": crc,
        "smart_241_raw": (cum_writes * _LBAS_PER_OP).astype(np.int64),
        "smart_242_raw": (cum_reads * _LBAS_PER_OP).astype(np.int64),
    }


def export_smart_csv(
    records: DriveDayDataset,
    path: str | Path,
    failure_labels: np.ndarray | None = None,
    max_rows: int | None = None,
) -> int:
    """Write the SMART-style table as CSV; returns rows written."""
    table = to_smart_table(records, failure_labels)
    n = len(records) if max_rows is None else min(len(records), max_rows)
    with open(Path(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(SMART_COLUMNS)
        cols = [table[c] for c in SMART_COLUMNS]
        for i in range(n):
            writer.writerow([col[i] for col in cols])
    return n
