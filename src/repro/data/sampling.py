"""Class-imbalance handling for training sets.

The trace contains roughly one failure per 10,000 drive-days.  Following
Section 5.1 of the paper, the majority (non-failure) class of the *training*
set is randomly downsampled to a configurable positive:negative ratio
(1:1 by default) before fitting; evaluation always uses the untouched,
imbalanced test set.
"""

from __future__ import annotations

import numpy as np

__all__ = ["downsample_majority", "class_balance"]


def downsample_majority(
    y: np.ndarray,
    ratio: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Indices of a training subset with ``neg ≈ ratio * pos``.

    Parameters
    ----------
    y:
        Binary labels (0/1) for the candidate training rows.
    ratio:
        Number of negatives to keep per positive.  ``ratio=1.0`` is the 1:1
        scheme the paper found best.
    rng:
        Source of randomness; a fresh default generator when omitted.

    Returns
    -------
    Sorted row indices containing every positive and the sampled negatives.

    Notes
    -----
    If the requested number of negatives exceeds availability, all negatives
    are kept (the split is already balanced enough).  At least one positive
    is required — a training fold with no failures cannot be learned from.
    """
    y = np.asarray(y)
    if rng is None:
        rng = np.random.default_rng()
    if ratio <= 0:
        raise ValueError("ratio must be positive")
    pos = np.flatnonzero(y == 1)
    neg = np.flatnonzero(y == 0)
    if len(pos) == 0:
        raise ValueError("downsample_majority requires at least one positive sample")
    n_keep = min(len(neg), int(round(ratio * len(pos))))
    kept_neg = rng.choice(neg, size=n_keep, replace=False) if n_keep else neg[:0]
    idx = np.concatenate((pos, kept_neg))
    idx.sort()
    return idx


def class_balance(y: np.ndarray) -> tuple[int, int, float]:
    """Return ``(n_positive, n_negative, imbalance_ratio)``.

    ``imbalance_ratio`` is negatives per positive (``inf`` with no positives).
    """
    y = np.asarray(y)
    n_pos = int(np.count_nonzero(y == 1))
    n_neg = int(np.count_nonzero(y == 0))
    return n_pos, n_neg, (n_neg / n_pos if n_pos else float("inf"))
