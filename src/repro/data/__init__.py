"""Telemetry data model: columnar drive-day records, event tables, splits.

This package is the substrate every other layer builds on:

- :mod:`repro.data.fields` — the drive-day schema (Section 2 of the paper);
- :mod:`repro.data.dataset` — struct-of-arrays record container;
- :mod:`repro.data.tables` — drive metadata and the swap/repair event log;
- :mod:`repro.data.split` — drive-grouped cross-validation splits;
- :mod:`repro.data.sampling` — majority-class downsampling;
- :mod:`repro.data.io` — NPZ/CSV persistence;
- :mod:`repro.data.store` — mmap-backed columnar store (zero-copy replay).
"""

from .dataset import DriveDayDataset, concat_datasets
from .fields import (
    DAILY_FIELDS,
    ERROR_TYPES,
    FIELD_DOC,
    FIELD_DTYPES,
    NON_TRANSPARENT_ERRORS,
    TRANSPARENT_ERRORS,
    WORKLOAD_FIELDS,
)
from .io import (
    TraceIntegrityError,
    export_dataset_csv,
    iter_drive_day_chunks,
    iter_drive_days,
    load_dataset_checked,
    load_dataset_npz,
    load_drivetable_npz,
    load_raw_columns_npz,
    load_swaplog_npz,
    save_dataset_npz,
    save_drivetable_npz,
    save_swaplog_npz,
)
from .sampling import class_balance, downsample_majority
from .smart import SMART_COLUMNS, export_smart_csv, to_smart_table
from .split import GroupKFold, grouped_train_test_split
from .store import (
    STORE_MAGIC,
    STORE_SUFFIX,
    is_store_file,
    load_dataset_store,
    open_store_columns,
    save_dataset_store,
)
from .tables import MODEL_NAMES, DriveTable, SwapLog, model_index

__all__ = [
    "DriveDayDataset",
    "concat_datasets",
    "DAILY_FIELDS",
    "ERROR_TYPES",
    "FIELD_DOC",
    "FIELD_DTYPES",
    "NON_TRANSPARENT_ERRORS",
    "TRANSPARENT_ERRORS",
    "WORKLOAD_FIELDS",
    "MODEL_NAMES",
    "DriveTable",
    "SwapLog",
    "model_index",
    "GroupKFold",
    "grouped_train_test_split",
    "class_balance",
    "downsample_majority",
    "SMART_COLUMNS",
    "export_smart_csv",
    "to_smart_table",
    "TraceIntegrityError",
    "STORE_MAGIC",
    "STORE_SUFFIX",
    "is_store_file",
    "save_dataset_store",
    "load_dataset_store",
    "open_store_columns",
    "save_dataset_npz",
    "load_dataset_npz",
    "load_dataset_checked",
    "load_raw_columns_npz",
    "iter_drive_day_chunks",
    "iter_drive_days",
    "export_dataset_csv",
    "save_swaplog_npz",
    "load_swaplog_npz",
    "save_drivetable_npz",
    "load_drivetable_npz",
]
