"""Per-run manifests: what ran, on what inputs, with what outcome.

Every ``simulate``/``train``/``score`` invocation writes a
``*manifest.json`` next to its artifacts (atomically: tmp + fsync +
``os.replace``, the same discipline as :mod:`repro.reliability.runner`)
recording everything needed to decide whether two runs are comparable:

- the command, argv and a **config digest** (sha256 over the sorted
  JSON of the run configuration);
- every **RNG seed** in play;
- sha256 **digests of input and output files**;
- per-stage **spans** (timings + rows in/out) aggregated from the
  active :class:`repro.obs.tracing.Tracer`;
- **validation/quarantine tallies** from :mod:`repro.reliability`;
- a snapshot of the active metrics registry.

:data:`MANIFEST_SCHEMA` is a self-contained JSON-schema subset that
:func:`validate_manifest` checks without external dependencies; CI runs
it against a fresh ``simulate --trace`` manifest.  ``repro-ssd obs
show``/``obs diff`` consume these files (:mod:`repro.obs.reportobs`).
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Any

from . import metrics as _metrics
from . import tracing as _tracing

__all__ = [
    "MANIFEST_VERSION",
    "MANIFEST_SCHEMA",
    "FAILURE_REPORT_SCHEMA",
    "ManifestError",
    "RunManifest",
    "config_digest",
    "file_digest",
    "load_manifest",
    "validate_manifest",
]

#: Bumped whenever the manifest layout changes incompatibly.
MANIFEST_VERSION = 1


class ManifestError(ValueError):
    """A manifest file is missing, unreadable, or fails its schema."""


def file_digest(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """Streaming sha256 of a file's bytes."""
    h = sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk_size)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


def config_digest(payload: Mapping[str, Any]) -> str:
    """Stable sha256 over the sorted-JSON form of a config mapping."""
    return sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()


def _created_now() -> float:
    """Wall clock, unless ``REPRO_EPOCH`` pins it.

    Golden-manifest tests and ``obs diff`` comparisons set
    ``REPRO_EPOCH=<unix seconds>`` so otherwise-identical runs don't
    diff dirty on their creation timestamp.  An unparsable override is
    ignored (falls back to the real clock) rather than failing the run.
    """
    epoch = os.environ.get("REPRO_EPOCH")
    if epoch is not None:
        try:
            return float(epoch)
        except ValueError:
            pass
    return time.time()


def _atomic_write_text(path: Path, text: str) -> None:
    """Local tmp+fsync+replace writer (keeps :mod:`repro.obs` zero-dep)."""
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    fh = open(tmp, "w")
    try:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp, path)
    except BaseException:
        fh.close()
        tmp.unlink(missing_ok=True)
        raise


# --------------------------------------------------------------------------
# schema (self-contained JSON-schema subset)
# --------------------------------------------------------------------------

_STAGE_SCHEMA = {
    "type": "object",
    "required": ["name", "calls", "total_seconds"],
    "properties": {
        "name": {"type": "string"},
        "calls": {"type": "number"},
        "total_seconds": {"type": "number"},
        "min_seconds": {"type": "number"},
        "max_seconds": {"type": "number"},
        "rows_in": {"type": "number"},
        "rows_out": {"type": "number"},
    },
}

#: Schema of one quarantined task's report (``resilience.quarantined[i]``),
#: mirroring :class:`repro.resilience.FailureReport`.  Exported on its own
#: so the chaos drill / CI can validate reports independently.
FAILURE_REPORT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["task_index", "label", "attempts", "quarantined", "errors"],
    "properties": {
        "task_index": {"type": "integer"},
        "label": {"type": "string"},
        "attempts": {"type": "integer"},
        "quarantined": {"type": "boolean"},
        "errors": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["attempt", "kind", "message"],
                "properties": {
                    "attempt": {"type": "integer"},
                    "kind": {
                        "type": "string",
                        "enum": ["error", "timeout", "crash"],
                    },
                    "message": {"type": "string"},
                    "traceback": {"type": "string"},
                },
            },
        },
    },
}

MANIFEST_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "schema_version",
        "command",
        "created_unix",
        "elapsed_seconds",
        "config",
        "config_digest",
        "seeds",
        "inputs",
        "outputs",
        "stages",
        "validation",
        "metrics",
    ],
    "properties": {
        "schema_version": {"type": "integer"},
        "command": {
            "type": "string",
            "enum": [
                "simulate",
                "train",
                "score",
                "serve.replay",
                "serve.bench",
                "serve.run",
                "serve.publish",
                "serve.heal",
                "serve.shard",
                "fleet.run",
                "fleet.whatif",
                "fleet.decide",
                "fleet.audit",
            ],
        },
        "argv": {"type": "array", "items": {"type": "string"}},
        "created_unix": {"type": "number"},
        "elapsed_seconds": {"type": "number"},
        "config": {"type": "object"},
        "config_digest": {"type": "string", "minLength": 64, "maxLength": 64},
        "seeds": {"type": "object"},
        "inputs": {"type": "object"},
        "outputs": {"type": "object"},
        "counts": {"type": "object"},
        "stages": {"type": "array", "items": _STAGE_SCHEMA},
        "spans": {"type": "array", "items": {"type": "object"}},
        "validation": {
            "type": "object",
            "required": ["n_errors", "n_warnings", "n_quarantined"],
            "properties": {
                "n_errors": {"type": "integer"},
                "n_warnings": {"type": "integer"},
                "n_quarantined": {"type": "integer"},
            },
        },
        "metrics": {"type": "object"},
        "results": {"type": "object"},
        "resilience": {
            "type": "object",
            "required": [
                "retries",
                "timeouts",
                "crashes",
                "breaker_tripped",
                "quarantined",
            ],
            "properties": {
                "retries": {"type": "integer"},
                "timeouts": {"type": "integer"},
                "crashes": {"type": "integer"},
                "breaker_tripped": {"type": "boolean"},
                "quarantined": {
                    "type": "array",
                    "items": FAILURE_REPORT_SCHEMA,
                },
            },
        },
        "serve": {
            "type": "object",
            "required": [
                "health",
                "admitted",
                "duplicates_dropped",
                "dead_lettered",
                "shed",
                "by_fault",
            ],
            "properties": {
                "health": {
                    "type": "string",
                    "enum": ["ready", "degraded", "draining"],
                },
                "admitted": {"type": "integer"},
                "duplicates_dropped": {"type": "integer"},
                "dead_lettered": {"type": "integer"},
                "shed": {"type": "integer"},
                "stale_scores": {"type": "integer"},
                "by_fault": {"type": "object"},
                "breaker": {"type": "object"},
                "dlq_path": {"type": "string"},
                "journal_path": {"type": "string"},
            },
        },
        "fleet": {
            "type": "object",
            "required": [
                "policy_kind",
                "n_events",
                "n_days",
                "n_actions",
                "by_action",
                "spares_used",
                "cost_total",
                "chain",
                "state_digest",
            ],
            "properties": {
                "policy_kind": {"type": "string"},
                "n_events": {"type": "integer"},
                "n_days": {"type": "integer"},
                "n_actions": {"type": "integer"},
                "n_rejected": {"type": "integer"},
                "reverts": {"type": "integer"},
                "by_action": {"type": "object"},
                "spares_used": {"type": "integer"},
                "cost_total": {"type": "number"},
                "chain": {"type": "string"},
                "state_digest": {"type": "string"},
                "health_digest": {"type": "string"},
                "journal_path": {"type": "string"},
                "caught": {"type": "integer"},
                "missed": {"type": "integer"},
                "false_replacements": {"type": "integer"},
                "savings": {"type": "number"},
            },
        },
        "slo": {
            "type": "object",
            "required": ["state", "objectives"],
            "properties": {
                "state": {"type": "string", "enum": ["ok", "warn", "breach"]},
                "objectives": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["name", "metric", "state"],
                        "properties": {
                            "name": {"type": "string"},
                            "metric": {"type": "string"},
                            "state": {
                                "type": "string",
                                "enum": ["ok", "warn", "breach"],
                            },
                            "threshold": {"type": "number"},
                            "op": {"type": "string", "enum": ["<=", ">="]},
                            "windows_evaluated": {"type": "integer"},
                            "violations": {"type": "integer"},
                            "short_fraction": {"type": "number"},
                            "long_fraction": {"type": "number"},
                        },
                    },
                },
            },
        },
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_manifest(
    data: Any,
    schema: Mapping[str, Any] | None = None,
    path: str = "$",
) -> list[str]:
    """Check ``data`` against the (subset) JSON schema; returns errors.

    Supports ``type``, ``required``, ``properties``, ``items``, ``enum``,
    ``minLength``/``maxLength`` — everything :data:`MANIFEST_SCHEMA`
    uses.  Unknown keys in the data are allowed (manifests may carry
    command-specific extras).
    """
    schema = MANIFEST_SCHEMA if schema is None else schema
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None and not _TYPE_CHECKS[expected](data):
        errors.append(
            f"{path}: expected {expected}, got {type(data).__name__}"
        )
        return errors
    if "enum" in schema and data not in schema["enum"]:
        errors.append(f"{path}: {data!r} not one of {schema['enum']}")
    if isinstance(data, str):
        if "minLength" in schema and len(data) < schema["minLength"]:
            errors.append(f"{path}: shorter than {schema['minLength']} chars")
        if "maxLength" in schema and len(data) > schema["maxLength"]:
            errors.append(f"{path}: longer than {schema['maxLength']} chars")
    if isinstance(data, dict):
        for key in schema.get("required", ()):
            if key not in data:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in data:
                errors.extend(validate_manifest(data[key], sub, f"{path}.{key}"))
    if isinstance(data, list) and "items" in schema:
        for i, item in enumerate(data):
            errors.extend(
                validate_manifest(item, schema["items"], f"{path}[{i}]")
            )
    return errors


# --------------------------------------------------------------------------
# building and persisting
# --------------------------------------------------------------------------

@dataclass
class RunManifest:
    """Builder for one run's manifest.

    Typical CLI lifecycle::

        manifest = RunManifest(command="simulate", config=cfg, seeds={"seed": 7})
        ...  # run under tracing.activate()/metrics.activate()
        manifest.add_output(out / "records.npz")
        manifest.finish(tracer, registry, include_spans=args.trace)
        manifest.write(out / "run_manifest.json")
    """

    command: str
    config: dict[str, Any] = field(default_factory=dict)
    seeds: dict[str, int] = field(default_factory=dict)
    argv: list[str] = field(default_factory=lambda: list(sys.argv[1:]))
    inputs: dict[str, str] = field(default_factory=dict)
    outputs: dict[str, str] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    stages: list[dict[str, Any]] = field(default_factory=list)
    spans: list[dict[str, Any]] | None = None
    validation: dict[str, Any] = field(
        default_factory=lambda: {"n_errors": 0, "n_warnings": 0, "n_quarantined": 0}
    )
    metrics: dict[str, Any] = field(default_factory=dict)
    results: dict[str, Any] = field(default_factory=dict)
    resilience: dict[str, Any] | None = None
    serve: dict[str, Any] | None = None
    fleet: dict[str, Any] | None = None
    slo: dict[str, Any] | None = None
    created_unix: float = field(default_factory=_created_now)
    elapsed_seconds: float = 0.0
    schema_version: int = MANIFEST_VERSION
    _t0: float = field(default_factory=time.perf_counter, repr=False)

    # ------------------------------------------------------------- recording
    def add_input(self, path: str | Path) -> str:
        """Digest an input file into the manifest; returns the digest."""
        digest = file_digest(path)
        self.inputs[Path(path).name] = digest
        return digest

    def add_output(self, path: str | Path) -> str:
        """Digest an output file into the manifest; returns the digest."""
        digest = file_digest(path)
        self.outputs[Path(path).name] = digest
        return digest

    def record_validation(
        self,
        n_errors: int = 0,
        n_warnings: int = 0,
        n_quarantined: int = 0,
        **extra: Any,
    ) -> None:
        """Accumulate reliability tallies (validation + quarantine)."""
        self.validation["n_errors"] += int(n_errors)
        self.validation["n_warnings"] += int(n_warnings)
        self.validation["n_quarantined"] += int(n_quarantined)
        for key, value in extra.items():
            self.validation[key] = value

    def record_resilience(self, data: dict[str, Any]) -> None:
        """Attach a supervision summary (a ``SupervisionLog.to_dict()``).

        Takes a plain dict rather than the log object so :mod:`repro.obs`
        keeps no dependency on :mod:`repro.resilience`.
        """
        errors = validate_manifest(
            data, MANIFEST_SCHEMA["properties"]["resilience"], "$.resilience"
        )
        if errors:
            raise ManifestError(
                f"invalid resilience record: {'; '.join(errors)}"
            )
        self.resilience = data

    def record_serve(self, data: dict[str, Any]) -> None:
        """Attach serving health + admission tallies (guard/breaker dicts).

        Same plain-dict contract as :meth:`record_resilience`:
        :mod:`repro.obs` stays independent of :mod:`repro.serve`.
        """
        errors = validate_manifest(
            data, MANIFEST_SCHEMA["properties"]["serve"], "$.serve"
        )
        if errors:
            raise ManifestError(f"invalid serve record: {'; '.join(errors)}")
        self.serve = data

    def record_fleet(self, data: dict[str, Any]) -> None:
        """Attach a fleet-autopilot decision summary.

        Plain-dict contract like :meth:`record_serve`: :mod:`repro.obs`
        stays independent of :mod:`repro.fleet`.
        """
        errors = validate_manifest(
            data, MANIFEST_SCHEMA["properties"]["fleet"], "$.fleet"
        )
        if errors:
            raise ManifestError(f"invalid fleet record: {'; '.join(errors)}")
        self.fleet = data

    def record_slo(self, data: dict[str, Any]) -> None:
        """Attach an SLO evaluation (an ``SloReport.to_dict()``).

        Plain-dict contract like :meth:`record_resilience`; callers build
        the report with :func:`repro.obs.slo.evaluate_slos`.
        """
        errors = validate_manifest(
            data, MANIFEST_SCHEMA["properties"]["slo"], "$.slo"
        )
        if errors:
            raise ManifestError(f"invalid slo record: {'; '.join(errors)}")
        self.slo = data

    def finish(
        self,
        tracer: "_tracing.Tracer | None" = None,
        registry: "_metrics.MetricsRegistry | None" = None,
        include_spans: bool = False,
    ) -> "RunManifest":
        """Freeze elapsed time and pull stage/metric snapshots."""
        self.elapsed_seconds = time.perf_counter() - self._t0
        if tracer is not None:
            summary = tracer.stage_summary()
            self.stages = [
                {"name": name, **agg} for name, agg in sorted(summary.items())
            ]
            if include_spans:
                self.spans = tracer.to_dicts()
        if registry is not None:
            self.metrics = registry.to_dict()
        return self

    # ----------------------------------------------------------- persistence
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "schema_version": self.schema_version,
            "command": self.command,
            "argv": list(self.argv),
            "created_unix": self.created_unix,
            "elapsed_seconds": self.elapsed_seconds,
            "config": dict(self.config),
            "config_digest": config_digest(self.config),
            "seeds": dict(self.seeds),
            "inputs": dict(self.inputs),
            "outputs": dict(self.outputs),
            "counts": dict(self.counts),
            "stages": list(self.stages),
            "validation": dict(self.validation),
            "metrics": dict(self.metrics),
            "results": dict(self.results),
        }
        if self.spans is not None:
            out["spans"] = list(self.spans)
        if self.resilience is not None:
            out["resilience"] = dict(self.resilience)
        if self.serve is not None:
            out["serve"] = dict(self.serve)
        if self.fleet is not None:
            out["fleet"] = dict(self.fleet)
        if self.slo is not None:
            out["slo"] = dict(self.slo)
        return out

    def write(self, path: str | Path) -> Path:
        """Atomically write the manifest JSON; returns the path."""
        path = Path(path)
        body = self.to_dict()
        errors = validate_manifest(body)
        if errors:  # pragma: no cover - builder always emits valid manifests
            raise ManifestError(
                f"refusing to write invalid manifest: {'; '.join(errors)}"
            )
        _atomic_write_text(path, json.dumps(body, indent=2, sort_keys=True) + "\n")
        return path


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read a manifest JSON file; raises :class:`ManifestError` on problems."""
    path = Path(path)
    try:
        body = json.loads(path.read_text())
    except FileNotFoundError:
        raise ManifestError(
            f"manifest {path} does not exist (runs write run_manifest.json "
            "next to their artifacts)"
        ) from None
    except (OSError, ValueError) as exc:
        raise ManifestError(f"manifest {path} is unreadable: {exc}") from None
    if not isinstance(body, dict):
        raise ManifestError(f"manifest {path} is not a JSON object")
    return body
