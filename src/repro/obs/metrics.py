"""Counters, gauges and histograms with labeled series and exporters.

A minimal, dependency-free metrics substrate modeled on the Prometheus
client data model:

- :class:`MetricsRegistry` owns metric *families* (one per name);
- a family hands out labeled *series* via :meth:`~MetricFamily.labels`;
- series are counters (monotone ``inc``), gauges (``set``) or
  histograms (``observe`` into cumulative buckets);
- the registry renders the whole state as Prometheus text exposition
  format (:meth:`MetricsRegistry.render_prometheus`) or a JSON-ready
  dict (:meth:`MetricsRegistry.to_dict`).

Like :mod:`repro.obs.tracing`, instrumented code goes through the
module-level helpers (:func:`inc`, :func:`set_gauge`, :func:`observe`),
which no-op unless a registry is activated for the process — so the hot
paths pay one global read when observability is off.

Metric names follow ``repro_<noun>_<unit>`` (e.g. ``repro_rows_total``,
``repro_stage_seconds``); label values identify the stage/model, mirroring
the span naming convention (DESIGN.md §10).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

__all__ = [
    "DEFAULT_BUCKETS",
    "RESILIENCE_COUNTERS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "activate",
    "bucket_quantile",
    "current",
    "set_active",
    "inc",
    "set_gauge",
    "observe",
]

#: Default histogram buckets (seconds-oriented, Prometheus defaults).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Counters emitted by the supervision layer (``repro.resilience``),
#: name -> help string.  Centralized so the supervisor, the manifest and
#: the chaos drill all agree on the names.
RESILIENCE_COUNTERS: dict[str, str] = {
    "repro_task_retries_total": "task attempts re-dispatched after a failure",
    "repro_task_timeouts_total": "task attempts killed by the deadline watchdog",
    "repro_pool_crashes_total": "worker processes that died or failed to spawn",
    "repro_tasks_quarantined_total": "tasks quarantined after exhausting retries",
    "repro_breaker_trips_total": "circuit-breaker trips to serial execution",
}


def _format_value(v: float) -> str:
    """Prometheus-style number formatting (integers without the dot)."""
    f = float(v)
    if f == float("inf"):
        return "+Inf"
    if f.is_integer():
        return str(int(f))
    return repr(f)


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def bucket_quantile(
    upper_bounds: Sequence[float],
    bucket_counts: Sequence[int],
    inf_count: int,
    q: float,
) -> tuple[float, bool]:
    """Quantile estimate over raw (non-cumulative) histogram buckets.

    Returns ``(value, clamped)``: the linearly interpolated estimate and
    whether the target rank fell in the implicit ``+Inf`` bucket, in
    which case the value is *clamped* to the highest finite bound — a
    silent lie unless the caller surfaces the flag.  ``(nan, False)``
    with no observations.  Shared by :meth:`Histogram.quantile_info` and
    the per-window quantiles of :mod:`repro.obs.timeline`.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(bucket_counts) + inf_count
    if total == 0:
        return float("nan"), False
    rank = q * total
    prev_bound, running = 0.0, 0
    for bound, n in zip(upper_bounds, bucket_counts):
        prev = running
        running += n
        if running >= rank:
            if running == prev:  # pragma: no cover - defensive
                return float(bound), False
            frac = (rank - prev) / (running - prev)
            return prev_bound + frac * (float(bound) - prev_bound), False
        prev_bound = float(bound)
    return float(upper_bounds[-1]), True


class Counter:
    """Monotonically increasing series."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self.value += amount


class Gauge:
    """Series that can go up and down."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= upper_bounds[i]``
    *non*-cumulatively in storage; rendering and :meth:`cumulative`
    produce the cumulative view, with the implicit ``+Inf`` bucket last.
    """

    __slots__ = ("_lock", "upper_bounds", "bucket_counts", "inf_count", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        self._lock = threading.Lock()
        self.upper_bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.upper_bounds, value)
        with self._lock:
            if idx < len(self.upper_bounds):
                self.bucket_counts[idx] += 1
            else:
                self.inf_count += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        with self._lock:
            for bound, n in zip(self.upper_bounds, self.bucket_counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), running + self.inf_count))
        return out

    def quantile_info(self, q: float) -> tuple[float, bool]:
        """Quantile estimate plus a *clamped* flag.

        The flag is ``True`` when the target rank falls in the implicit
        ``+Inf`` bucket: the returned value is pinned to the highest
        finite bound and understates the true quantile — a p99 "holding
        steady" at the top bucket bound may actually be unbounded.
        """
        with self._lock:
            counts = list(self.bucket_counts)
            inf_count = self.inf_count
        return bucket_quantile(self.upper_bounds, counts, inf_count, q)

    def quantile(self, q: float) -> float:
        """Estimated quantile via linear interpolation inside the bucket.

        The same estimate a Prometheus ``histogram_quantile`` query
        produces; exact only up to bucket resolution.  Returns ``nan``
        with no observations; the highest finite bound when the target
        rank falls in the ``+Inf`` bucket (see :meth:`quantile_info`
        for the overflow flag).
        """
        return self.quantile_info(q)[0]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All series sharing one metric name (one per label-value tuple)."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def labels(self, **labels: str):
        """The series for one label-value combination (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = (
                    Histogram(self._buckets)
                    if self.kind == "histogram"
                    else _KINDS[self.kind]()
                )
                self._series[key] = series
        return series

    def _sorted_series(self):
        with self._lock:
            return sorted(self._series.items())


class MetricsRegistry:
    """Thread-safe collection of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = MetricFamily(
                    name, kind, help=help, labelnames=labelnames, buckets=buckets
                )
                self._families[name] = fam
                return fam
        if fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, not {kind}"
            )
        if fam.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{fam.labelnames}, not {tuple(labelnames)}"
            )
        return fam

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labelnames, buckets=buckets)

    # ----------------------------------------------------- cross-process merge
    def snapshot(self) -> list[dict]:
        """Picklable raw dump of every family, for cross-process merge.

        Unlike :meth:`to_dict` (cumulative buckets, rendering-oriented),
        this keeps histogram buckets non-cumulative so two snapshots can
        be added series-by-series (:meth:`merge_snapshot`).
        """
        out: list[dict] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, fam in families:
            series_list: list[dict] = []
            for key, series in fam._sorted_series():
                if fam.kind == "histogram":
                    assert isinstance(series, Histogram)
                    with series._lock:
                        series_list.append(
                            {
                                "labels": list(key),
                                "bucket_counts": list(series.bucket_counts),
                                "inf_count": series.inf_count,
                                "sum": series.sum,
                                "count": series.count,
                            }
                        )
                else:
                    series_list.append({"labels": list(key), "value": series.value})
            out.append(
                {
                    "name": name,
                    "kind": fam.kind,
                    "help": fam.help,
                    "labelnames": list(fam.labelnames),
                    "buckets": list(fam._buckets) if fam.kind == "histogram" else None,
                    "series": series_list,
                }
            )
        return out

    def merge_snapshot(self, snapshot: list[dict]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms accumulate; gauges take the snapshot's
        value (last write wins).  Families are created on first sight,
        and the usual kind/label consistency checks apply.
        """
        for fam_snap in snapshot:
            kind = fam_snap["kind"]
            fam = self._family(
                fam_snap["name"],
                kind,
                fam_snap.get("help", ""),
                tuple(fam_snap.get("labelnames", ())),
                buckets=tuple(fam_snap["buckets"])
                if fam_snap.get("buckets")
                else DEFAULT_BUCKETS,
            )
            for entry in fam_snap["series"]:
                series = fam.labels(**dict(zip(fam.labelnames, entry["labels"])))
                if kind == "counter":
                    assert isinstance(series, Counter)
                    series.inc(float(entry["value"]))
                elif kind == "gauge":
                    assert isinstance(series, Gauge)
                    series.set(float(entry["value"]))
                else:
                    assert isinstance(series, Histogram)
                    counts = entry["bucket_counts"]
                    snap_bounds = tuple(
                        float(b) for b in (fam_snap.get("buckets") or ())
                    )
                    if (
                        len(counts) != len(series.bucket_counts)
                        or snap_bounds != series.upper_bounds
                    ):
                        raise ValueError(
                            f"histogram {fam_snap['name']!r}: bucket layout "
                            "mismatch between snapshot and registry"
                        )
                    with series._lock:
                        for i, c in enumerate(counts):
                            series.bucket_counts[i] += int(c)
                        series.inf_count += int(entry["inf_count"])
                        series.sum += float(entry["sum"])
                        series.count += int(entry["count"])

    # ------------------------------------------------------------- exporters
    def render_prometheus(self) -> str:
        """Prometheus text exposition format (families sorted by name)."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, fam in families:
            if fam.help:
                lines.append(f"# HELP {name} {fam.help}")
            lines.append(f"# TYPE {name} {fam.kind}")
            for key, series in fam._sorted_series():
                base_labels = [
                    f'{ln}="{_escape_label(lv)}"'
                    for ln, lv in zip(fam.labelnames, key)
                ]
                if fam.kind == "histogram":
                    assert isinstance(series, Histogram)
                    for bound, count in series.cumulative():
                        labels = base_labels + [f'le="{_format_value(bound)}"']
                        lines.append(
                            f"{name}_bucket{{{','.join(labels)}}} {count}"
                        )
                    suffix = f"{{{','.join(base_labels)}}}" if base_labels else ""
                    lines.append(f"{name}_sum{suffix} {_format_value(series.sum)}")
                    lines.append(f"{name}_count{suffix} {series.count}")
                else:
                    suffix = f"{{{','.join(base_labels)}}}" if base_labels else ""
                    lines.append(
                        f"{name}{suffix} {_format_value(series.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict[str, dict]:
        """JSON-ready snapshot: name -> {kind, help, series: [...]}."""
        out: dict[str, dict] = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, fam in families:
            series_out = []
            for key, series in fam._sorted_series():
                entry: dict[str, object] = {
                    "labels": dict(zip(fam.labelnames, key))
                }
                if fam.kind == "histogram":
                    assert isinstance(series, Histogram)
                    entry["buckets"] = [
                        [_format_value(b), c] for b, c in series.cumulative()
                    ]
                    entry["sum"] = series.sum
                    entry["count"] = series.count
                    entry["overflow"] = series.inf_count
                else:
                    entry["value"] = series.value
                series_out.append(entry)
            out[name] = {"kind": fam.kind, "help": fam.help, "series": series_out}
        return out


# --------------------------------------------------------------------------
# process-wide activation + convenience recorders
# --------------------------------------------------------------------------

_active: MetricsRegistry | None = None


def current() -> MetricsRegistry | None:
    """The process-wide active registry, or ``None`` when metrics are off."""
    return _active


def set_active(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install (or clear) the active registry; returns the previous one."""
    global _active
    previous = _active
    _active = registry
    return previous


@contextmanager
def activate(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Activate a registry for the duration of the block."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_active(registry)
    try:
        yield registry
    finally:
        set_active(previous)


def inc(name: str, amount: float = 1.0, help: str = "", **labels: str) -> None:
    """Increment a counter on the active registry (no-op when inactive)."""
    reg = _active
    if reg is None:
        return
    reg.counter(name, help=help, labelnames=tuple(sorted(labels))).labels(
        **labels
    ).inc(amount)


def set_gauge(name: str, value: float, help: str = "", **labels: str) -> None:
    """Set a gauge on the active registry (no-op when inactive)."""
    reg = _active
    if reg is None:
        return
    reg.gauge(name, help=help, labelnames=tuple(sorted(labels))).labels(
        **labels
    ).set(value)


def observe(
    name: str,
    value: float,
    help: str = "",
    buckets: Sequence[float] = DEFAULT_BUCKETS,
    **labels: str,
) -> None:
    """Observe into a histogram on the active registry (no-op when inactive)."""
    reg = _active
    if reg is None:
        return
    reg.histogram(
        name, help=help, labelnames=tuple(sorted(labels)), buckets=buckets
    ).labels(**labels).observe(value)
