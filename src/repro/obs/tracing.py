"""Zero-dependency span tracing with a thread-safe in-process collector.

A *span* is one timed stage of a run — loading a trace, simulating a
chunk of drives, fitting one CV fold — named after the convention
``repro.<module>.<stage>`` (DESIGN.md §10) and carrying numeric
attributes such as ``rows_in``/``rows_out``.  Spans nest: the span that
is open on the current thread when a new one starts becomes its parent,
so the collected list reconstructs the full call tree.

Instrumented library code never talks to a :class:`Tracer` directly; it
calls the module-level :func:`span` context manager (or the
:func:`traced` decorator), which is a near-free no-op unless a tracer
has been activated for the process::

    from repro.obs import tracing

    with tracing.activate() as tracer:
        with tracing.span("repro.data.load_records", rows_out=n):
            ...
    tracer.stage_summary()  # {"repro.data.load_records": {...}}

Timings use :func:`time.perf_counter` (monotonic), so span durations are
immune to wall-clock adjustments.  The collector takes its lock only on
span *finish*; the per-thread open-span stack is thread-local.
"""

from __future__ import annotations

import functools
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current",
    "set_active",
    "span",
    "traced",
]


@dataclass
class Span:
    """One finished (or still-open) timed stage.

    Attributes
    ----------
    name:
        Dotted stage name (``repro.<module>.<stage>``).
    span_id, parent_id:
        Collector-unique ids; ``parent_id`` is ``None`` for roots.
    start:
        Seconds since the tracer's epoch (monotonic clock).
    duration:
        Seconds; ``None`` while the span is still open.
    attrs:
        Free-form attributes; numeric ``rows_*``/``n_*`` keys are summed
        into the per-stage aggregates of :meth:`Tracer.stage_summary`.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    duration: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> "Span":
        """Set (overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def add(self, **attrs: float) -> "Span":
        """Accumulate numeric attributes (missing keys start at 0)."""
        for key, value in attrs.items():
            self.attrs[key] = self.attrs.get(key, 0) + value
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Attribute sink used when no tracer is active."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def add(self, **attrs: float) -> "_NullSpan":
        return self


class _NullContext:
    """Context manager that hands out the shared null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()

#: Aggregated per-stage numeric attributes (summed in stage_summary).
_SUMMED_PREFIXES = ("rows_", "n_")


class Tracer:
    """Thread-safe collector of finished spans."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._spans: list[Span] = []
        self._next_id = 0
        self._local = threading.local()

    # ------------------------------------------------------------- recording
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; finished spans land in the collector."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        t0 = time.perf_counter()
        sp = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start=t0 - self._epoch,
            attrs=dict(attrs),
        )
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.duration = time.perf_counter() - t0
            stack.pop()
            with self._lock:
                self._spans.append(sp)

    def now(self) -> float:
        """Seconds since this tracer's epoch (monotonic clock)."""
        return time.perf_counter() - self._epoch

    def current_parent_id(self) -> int | None:
        """Span id of the innermost open span on this thread (or ``None``)."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def absorb(
        self,
        span_dicts: list[dict[str, Any]],
        offset: float = 0.0,
        parent_id: int | None = None,
    ) -> int:
        """Adopt spans recorded by another tracer (e.g. a pool worker).

        Span ids are reassigned to this collector's sequence; parent links
        *within* the batch are preserved, batch roots are re-parented onto
        ``parent_id``.  ``offset`` shifts the foreign start times (the
        other tracer has its own epoch) onto this tracer's timeline.
        Returns the number of spans absorbed.
        """
        span_dicts = list(span_dicts)
        if not span_dicts:
            return 0
        with self._lock:
            base = self._next_id
            self._next_id += len(span_dicts)
        remap = {
            d["span_id"]: base + i
            for i, d in enumerate(span_dicts)
            if d.get("span_id") is not None
        }
        adopted: list[Span] = []
        for i, d in enumerate(span_dicts):
            foreign_parent = d.get("parent_id")
            adopted.append(
                Span(
                    name=d["name"],
                    span_id=base + i,
                    parent_id=remap.get(foreign_parent, parent_id),
                    start=float(d.get("start", 0.0)) + offset,
                    duration=d.get("duration"),
                    attrs=dict(d.get("attrs", {})),
                )
            )
        with self._lock:
            self._spans.extend(adopted)
        return len(adopted)

    # --------------------------------------------------------------- reading
    def finished(self) -> list[Span]:
        """Finished spans, ordered by start time."""
        with self._lock:
            return sorted(self._spans, key=lambda s: (s.start, s.span_id))

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-ready list of finished spans (start order)."""
        return [s.to_dict() for s in self.finished()]

    def stage_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate finished spans by name.

        Per stage: ``calls``, ``total_seconds``, ``min_seconds``,
        ``max_seconds`` plus the sum of every numeric attribute whose key
        starts with ``rows_`` or ``n_`` (row accounting).
        """
        out: dict[str, dict[str, float]] = {}
        for sp in self.finished():
            agg = out.setdefault(
                sp.name,
                {
                    "calls": 0,
                    "total_seconds": 0.0,
                    "min_seconds": float("inf"),
                    "max_seconds": 0.0,
                },
            )
            dur = sp.duration or 0.0
            agg["calls"] += 1
            agg["total_seconds"] += dur
            agg["min_seconds"] = min(agg["min_seconds"], dur)
            agg["max_seconds"] = max(agg["max_seconds"], dur)
            for key, value in sp.attrs.items():
                if key.startswith(_SUMMED_PREFIXES) and isinstance(
                    value, (int, float)
                ):
                    agg[key] = agg.get(key, 0) + value
        for agg in out.values():
            if agg["calls"] == 0:  # pragma: no cover - defensive
                agg["min_seconds"] = 0.0
        return out


# --------------------------------------------------------------------------
# process-wide activation
# --------------------------------------------------------------------------

_active: Tracer | None = None


def current() -> Tracer | None:
    """The process-wide active tracer, or ``None`` when tracing is off."""
    return _active


def set_active(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear) the active tracer; returns the previous one."""
    global _active
    previous = _active
    _active = tracer
    return previous


@contextmanager
def activate(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Activate a tracer for the duration of the block (reentrant-safe)."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_active(tracer)
    try:
        yield tracer
    finally:
        set_active(previous)


def span(name: str, **attrs: Any):
    """Open a span on the active tracer; a cheap no-op when tracing is off.

    Returns a context manager yielding either a real :class:`Span` or a
    shared null span whose ``set``/``add`` do nothing.
    """
    tracer = _active
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name, **attrs)


def traced(name: str | None = None) -> Callable:
    """Decorator form of :func:`span` (stage name defaults to the
    ``repro.<module>.<function>`` convention)."""

    def decorate(fn: Callable) -> Callable:
        label = name or f"repro.{fn.__module__.rsplit('.', 1)[-1]}.{fn.__name__}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
