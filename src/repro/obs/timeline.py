"""Deterministic windowed time-series over the active metrics registry.

The one-shot manifest (:mod:`repro.obs.manifest`) answers "what happened
over the whole run"; this module answers "what was happening *while* it
ran".  A :class:`Timeline` chops a stream of events into windows and
records, per window:

- **counter deltas** — how much each counter moved inside the window
  (rates follow by dividing by the window's event span);
- **gauge values** — the level at the window boundary;
- **histogram quantiles** — p50/p90/p99 estimated from the window's own
  bucket deltas, each carrying the ``clamped`` overflow flag from
  :func:`repro.obs.metrics.bucket_quantile`.

Ticks are driven by *event counts and watermark advances*, never wall
clock: the same event stream produces the same window boundaries on any
machine at any speed, which is what keeps ``serve replay`` bit-identical
with telemetry enabled (DESIGN.md §15).  Wall-clock timings still appear
*inside* windows (latency histograms), but never decide where a window
starts or ends.

Windows live in a bounded ring buffer; old windows are dropped (and
counted) rather than growing without bound in a long-running server.
Running totals survive the ring, so :meth:`Timeline.summary` is exact
even after drops.

Cross-process: workers under :mod:`repro.parallel` record into a private
timeline (activated by ``capture_obs``), ship it back as part of the
obs delta, and the parent absorbs it via :meth:`Timeline.absorb` — same
shape as span and metric merging in :mod:`repro.parallel.obsmerge`.

Like tracing and metrics, hot paths call the module-level
:func:`record`, which no-ops unless a timeline is activated.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

from . import metrics as metrics_mod
from .metrics import MetricsRegistry, bucket_quantile

__all__ = [
    "DEFAULT_QUANTILES",
    "TickPolicy",
    "TimelineWindow",
    "Timeline",
    "activate",
    "current",
    "set_active",
    "record",
    "load_timeline_jsonl",
]

#: Quantiles estimated per window for every histogram family.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)


@dataclass(frozen=True)
class TickPolicy:
    """When a window closes.

    ``every_events`` closes a window after that many recorded events;
    ``on_watermark`` additionally closes one whenever the watermark
    advances (so windows align with fleet-day boundaries during replay).
    Both are deterministic functions of the event stream.
    """

    every_events: int = 1024
    on_watermark: bool = True
    max_windows: int = 512
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES

    def __post_init__(self) -> None:
        if self.every_events < 1:
            raise ValueError("every_events must be >= 1")
        if self.max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        for q in self.quantiles:
            if not 0.0 <= q <= 1.0:
                raise ValueError("quantiles must be in [0, 1]")


@dataclass
class TimelineWindow:
    """One closed window: counter deltas, gauge levels, quantiles."""

    index: int
    start_events: int
    end_events: int
    watermark: int = -1
    reason: str = "events"
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    quantiles: dict[str, dict[str, float | bool | int]] = field(default_factory=dict)

    @property
    def events(self) -> int:
        return self.end_events - self.start_events

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start_events": self.start_events,
            "end_events": self.end_events,
            "watermark": self.watermark,
            "reason": self.reason,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "quantiles": dict(sorted(self.quantiles.items())),
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> TimelineWindow:
        return cls(
            index=int(d["index"]),
            start_events=int(d["start_events"]),
            end_events=int(d["end_events"]),
            watermark=int(d.get("watermark", -1)),
            reason=str(d.get("reason", "events")),
            counters={str(k): float(v) for k, v in d.get("counters", {}).items()},
            gauges={str(k): float(v) for k, v in d.get("gauges", {}).items()},
            quantiles={str(k): dict(v) for k, v in d.get("quantiles", {}).items()},
        )


def _series_key(name: str, labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return name
    inner = ",".join(f'{ln}="{lv}"' for ln, lv in zip(labelnames, labelvalues))
    return f"{name}{{{inner}}}"


def _flatten(registry: MetricsRegistry) -> tuple[
    dict[str, float],
    dict[str, float],
    dict[str, tuple[tuple[float, ...], list[int], int]],
]:
    """Flatten a registry snapshot into ``key -> value`` maps.

    Returns ``(counters, gauges, histograms)`` where histogram values are
    ``(upper_bounds, bucket_counts, inf_count)`` — raw, non-cumulative,
    ready for delta arithmetic.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, tuple[tuple[float, ...], list[int], int]] = {}
    for fam in registry.snapshot():
        names = fam["labelnames"]
        for entry in fam["series"]:
            key = _series_key(fam["name"], names, entry["labels"])
            if fam["kind"] == "counter":
                counters[key] = float(entry["value"])
            elif fam["kind"] == "gauge":
                gauges[key] = float(entry["value"])
            else:
                hists[key] = (
                    tuple(float(b) for b in fam["buckets"]),
                    [int(c) for c in entry["bucket_counts"]],
                    int(entry["inf_count"]),
                )
    return counters, gauges, hists


class Timeline:
    """Bounded ring of deterministic windows over the active registry.

    Thread-safe; a single lock guards the ring and the running totals.
    ``registry`` defaults to whatever :func:`repro.obs.metrics.current`
    returns *at each tick*, so one timeline follows registry swaps (e.g.
    worker capture) without rewiring.
    """

    def __init__(
        self,
        policy: TickPolicy | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy or TickPolicy()
        self._registry = registry
        self._lock = threading.Lock()
        self._windows: deque[TimelineWindow] = deque(maxlen=self.policy.max_windows)
        self.events_total = 0
        self.windows_emitted = 0
        self.windows_dropped = 0
        self.watermark = -1
        self._window_start = 0
        self._last_counters: dict[str, float] = {}
        self._last_hists: dict[str, tuple[tuple[float, ...], list[int], int]] = {}
        self._counter_totals: dict[str, float] = {}

    # ------------------------------------------------------------ recording
    def record(self, n_events: int = 1, watermark: int | None = None) -> None:
        """Advance the event count; close windows at tick boundaries.

        ``watermark`` is the fleet-day high-water mark after these
        events; passing a value greater than the current one closes the
        window first (when ``on_watermark``) so windows never straddle a
        watermark advance.
        """
        if n_events < 0:
            raise ValueError("n_events must be >= 0")
        with self._lock:
            if (
                watermark is not None
                and watermark > self.watermark
                and self.policy.on_watermark
                and self.events_total > self._window_start
            ):
                self._close_window("watermark")
            if watermark is not None and watermark > self.watermark:
                self.watermark = watermark
            self.events_total += n_events
            while self.events_total - self._window_start >= self.policy.every_events:
                self._close_window("events")

    def flush(self) -> None:
        """Close the current partial window, if it has any events."""
        with self._lock:
            if self.events_total > self._window_start:
                self._close_window("flush")

    def _close_window(self, reason: str) -> None:
        """Close ``[self._window_start, boundary)``; caller holds the lock."""
        if reason == "events":
            boundary = self._window_start + self.policy.every_events
        else:
            boundary = self.events_total
        registry = self._registry or metrics_mod.current()
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        quantiles: dict[str, dict[str, float | bool | int]] = {}
        if registry is not None:
            cur_counters, gauges, cur_hists = _flatten(registry)
            for key, value in cur_counters.items():
                delta = value - self._last_counters.get(key, 0.0)
                if delta:
                    counters[key] = delta
                self._counter_totals[key] = (
                    self._counter_totals.get(key, 0.0) + delta
                )
            self._last_counters = cur_counters
            for key, (bounds, cum_counts, inf_count) in cur_hists.items():
                prev = self._last_hists.get(key)
                if prev is not None and prev[0] == bounds:
                    d_counts = [c - p for c, p in zip(cum_counts, prev[1])]
                    d_inf = inf_count - prev[2]
                else:
                    d_counts, d_inf = list(cum_counts), inf_count
                n = sum(d_counts) + d_inf
                if n:
                    entry: dict[str, float | bool | int] = {"count": n}
                    clamped_any = False
                    for q in self.policy.quantiles:
                        value, clamped = bucket_quantile(bounds, d_counts, d_inf, q)
                        entry[f"p{round(q * 100):d}"] = value
                        clamped_any = clamped_any or clamped
                    entry["clamped"] = clamped_any
                    quantiles[key] = entry
            self._last_hists = cur_hists
        window = TimelineWindow(
            index=self.windows_emitted,
            start_events=self._window_start,
            end_events=boundary,
            watermark=self.watermark,
            reason=reason,
            counters=counters,
            gauges=gauges,
            quantiles=quantiles,
        )
        if len(self._windows) == self._windows.maxlen:
            self.windows_dropped += 1
        self._windows.append(window)
        self.windows_emitted += 1
        self._window_start = boundary

    # ------------------------------------------------------------- reading
    def windows(self) -> list[TimelineWindow]:
        with self._lock:
            return list(self._windows)

    def summary(self) -> dict:
        """Exact running totals, independent of ring-buffer drops."""
        with self._lock:
            return {
                "events_total": self.events_total,
                "windows_emitted": self.windows_emitted,
                "windows_dropped": self.windows_dropped,
                "watermark": self.watermark,
                "counter_totals": dict(sorted(self._counter_totals.items())),
            }

    # -------------------------------------------------------- merge / export
    def delta(self) -> dict:
        """Picklable dump for cross-process merge (see ``obsmerge``)."""
        self.flush()
        with self._lock:
            return {
                "windows": [w.to_dict() for w in self._windows],
                "events_total": self.events_total,
                "windows_emitted": self.windows_emitted,
                "windows_dropped": self.windows_dropped,
                "watermark": self.watermark,
                "counter_totals": dict(self._counter_totals),
            }

    def absorb(self, delta: Mapping) -> None:
        """Fold a worker's :meth:`delta` into this timeline.

        Worker windows are re-indexed and their event offsets shifted
        past everything already recorded here, preserving arrival order;
        totals add.  Merging in deterministic task order therefore yields
        a deterministic merged timeline.
        """
        with self._lock:
            if self.events_total > self._window_start:
                self._close_window("flush")
            base = self.events_total
            for d in delta.get("windows", ()):
                w = TimelineWindow.from_dict(d)
                w.index = self.windows_emitted
                w.start_events += base
                w.end_events += base
                if len(self._windows) == self._windows.maxlen:
                    self.windows_dropped += 1
                self._windows.append(w)
                self.windows_emitted += 1
            self.events_total += int(delta.get("events_total", 0))
            self._window_start = self.events_total
            self.windows_dropped += int(delta.get("windows_dropped", 0))
            self.watermark = max(self.watermark, int(delta.get("watermark", -1)))
            for key, value in delta.get("counter_totals", {}).items():
                self._counter_totals[key] = (
                    self._counter_totals.get(key, 0.0) + float(value)
                )
            # Counter baselines no longer match the shared registry after a
            # foreign merge; resync so the next window's deltas stay local.
            registry = self._registry or metrics_mod.current()
            if registry is not None:
                self._last_counters, _, self._last_hists = _flatten(registry)

    def export_jsonl(self, path) -> int:
        """Write one JSON line per retained window; returns lines written."""
        windows = self.windows()
        with open(path, "w", encoding="utf-8") as fh:
            for w in windows:
                fh.write(json.dumps(w.to_dict(), sort_keys=True) + "\n")
        return len(windows)


def load_timeline_jsonl(path) -> list[TimelineWindow]:
    """Parse a timeline JSONL export back into windows."""
    out: list[TimelineWindow] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(TimelineWindow.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: bad timeline line: {exc}") from exc
    return out


# --------------------------------------------------------------------------
# process-wide activation (mirrors tracing/metrics)
# --------------------------------------------------------------------------

_active: Timeline | None = None


def current() -> Timeline | None:
    """The process-wide active timeline, or ``None`` when off."""
    return _active


def set_active(timeline: Timeline | None) -> Timeline | None:
    """Install (or clear) the active timeline; returns the previous one."""
    global _active
    previous = _active
    _active = timeline
    return previous


@contextmanager
def activate(timeline: Timeline | None = None) -> Iterator[Timeline]:
    """Activate a timeline for the duration of the block."""
    timeline = timeline if timeline is not None else Timeline()
    previous = set_active(timeline)
    try:
        yield timeline
    finally:
        set_active(previous)


def record(n_events: int = 1, watermark: int | None = None) -> None:
    """Record events on the active timeline (no-op when inactive)."""
    tl = _active
    if tl is None:
        return
    tl.record(n_events, watermark=watermark)
