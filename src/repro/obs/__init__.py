"""Observability subsystem: tracing, metrics, run manifests (DESIGN.md §10).

Four zero-dependency pieces, imported by every other layer but importing
none of them (so instrumentation can never create an import cycle):

- :mod:`repro.obs.tracing` — nested spans with monotonic timings and
  per-span row accounting, collected by a thread-safe in-process
  :class:`~repro.obs.tracing.Tracer`;
- :mod:`repro.obs.metrics` — counters/gauges/histograms with labeled
  series and Prometheus-text/JSON exporters;
- :mod:`repro.obs.manifest` — the per-run manifest (config hash, seeds,
  file digests, stage timings, validation tallies) written atomically
  next to every artifact;
- :mod:`repro.obs.reportobs` — human-readable summaries and
  ``obs diff`` drift detection between two manifests.

Instrumented code calls :func:`repro.obs.tracing.span` /
:func:`repro.obs.metrics.inc`, which no-op unless the CLI (or a test)
activates a collector — the hot paths pay one global read when
observability is off (measured <5 % in ``benchmarks/test_obs_overhead``).
"""

from .manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    ManifestError,
    RunManifest,
    config_digest,
    file_digest,
    load_manifest,
    validate_manifest,
)
from .metrics import DEFAULT_BUCKETS, MetricsRegistry
from .reportobs import DiffEntry, ManifestDiff, diff_manifests, render_manifest
from .tracing import Span, Tracer, traced

__all__ = [
    "MANIFEST_SCHEMA",
    "MANIFEST_VERSION",
    "ManifestError",
    "RunManifest",
    "config_digest",
    "file_digest",
    "load_manifest",
    "validate_manifest",
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "DiffEntry",
    "ManifestDiff",
    "diff_manifests",
    "render_manifest",
    "Span",
    "Tracer",
    "traced",
]
