"""Observability subsystem: tracing, metrics, manifests, live telemetry.

Zero-dependency pieces, imported by every other layer but importing none
of them (so instrumentation can never create an import cycle):

- :mod:`repro.obs.tracing` — nested spans with monotonic timings and
  per-span row accounting, collected by a thread-safe in-process
  :class:`~repro.obs.tracing.Tracer`;
- :mod:`repro.obs.metrics` — counters/gauges/histograms with labeled
  series and Prometheus-text/JSON exporters;
- :mod:`repro.obs.timeline` — deterministic windowed time-series over
  the metrics registry, ticking on event-count/watermark boundaries
  (DESIGN.md §15);
- :mod:`repro.obs.slo` — declarative objectives over timeline windows
  with multi-window burn-rate classification (ok/warn/breach);
- :mod:`repro.obs.eventlog` — structured JSONL event log with levels
  and span correlation (guard/DLQ/health transitions);
- :mod:`repro.obs.manifest` — the per-run manifest (config hash, seeds,
  file digests, stage timings, validation tallies) written atomically
  next to every artifact;
- :mod:`repro.obs.reportobs` — human-readable summaries, ``obs diff``
  drift detection between two manifests and ``obs bench-diff``
  benchmark-regression classification.

Instrumented code calls :func:`repro.obs.tracing.span` /
:func:`repro.obs.metrics.inc` / :func:`repro.obs.timeline.record` /
:func:`repro.obs.eventlog.emit`, which no-op unless the CLI (or a test)
activates a collector — the hot paths pay one global read when
observability is off (measured <5 % in ``benchmarks/test_obs_overhead``).
"""

from .eventlog import LEVELS, EventLog, iter_events, load_events
from .manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    ManifestError,
    RunManifest,
    config_digest,
    file_digest,
    load_manifest,
    validate_manifest,
)
from .metrics import DEFAULT_BUCKETS, MetricsRegistry, bucket_quantile
from .reportobs import (
    BENCH_METRICS,
    BenchDiff,
    DiffEntry,
    ManifestDiff,
    diff_bench,
    diff_manifests,
    render_manifest,
)
from .slo import (
    Objective,
    ObjectiveResult,
    SloReport,
    SloSpec,
    evaluate_objective,
    evaluate_slos,
    load_slo_spec,
    slo_exit_code,
)
from .timeline import (
    TickPolicy,
    Timeline,
    TimelineWindow,
    load_timeline_jsonl,
)
from .tracing import Span, Tracer, traced

__all__ = [
    "MANIFEST_SCHEMA",
    "MANIFEST_VERSION",
    "ManifestError",
    "RunManifest",
    "config_digest",
    "file_digest",
    "load_manifest",
    "validate_manifest",
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "bucket_quantile",
    "BENCH_METRICS",
    "BenchDiff",
    "DiffEntry",
    "ManifestDiff",
    "diff_bench",
    "diff_manifests",
    "render_manifest",
    "LEVELS",
    "EventLog",
    "iter_events",
    "load_events",
    "Objective",
    "ObjectiveResult",
    "SloReport",
    "SloSpec",
    "evaluate_objective",
    "evaluate_slos",
    "load_slo_spec",
    "slo_exit_code",
    "TickPolicy",
    "Timeline",
    "TimelineWindow",
    "load_timeline_jsonl",
    "Span",
    "Tracer",
    "traced",
]
