"""Human-readable run summaries and manifest-to-manifest diffs.

Two consumers:

- ``repro-ssd obs show <manifest>`` — :func:`render_manifest`, a
  one-screen summary of what a run did (stage table with timings and
  rows in/out, validation tallies, artifact digests);
- ``repro-ssd obs diff <a> <b>`` — :func:`diff_manifests`, which
  classifies differences into **drift** (seeds, config, input/output
  digests, row counts, validation tallies — anything that makes two
  runs non-comparable) and **warnings** (stage-time regressions beyond
  a threshold — worth a look, but not a comparability failure).

Two runs of the same command with the same seed and inputs must diff
clean: timings are never drift, and wall-clock metadata (``created_unix``,
``elapsed_seconds``, ``argv``) is ignored.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "DiffEntry",
    "ManifestDiff",
    "diff_manifests",
    "render_manifest",
]

#: Keys compared verbatim at the top level (besides structured sections).
_IDENTITY_KEYS = ("schema_version", "command", "config_digest")


@dataclass(frozen=True)
class DiffEntry:
    """One observed difference between two manifests."""

    kind: str  # e.g. "seed", "config", "input", "output", "rows", "stage-time"
    field: str
    a: Any
    b: Any

    def __str__(self) -> str:
        return f"[{self.kind}] {self.field}: {self.a!r} -> {self.b!r}"


@dataclass
class ManifestDiff:
    """Classified differences between two run manifests."""

    drift: list[DiffEntry] = field(default_factory=list)
    warnings: list[DiffEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the runs are comparable (no drift; warnings allowed)."""
        return not self.drift

    def render(self) -> str:
        lines = [
            f"Manifest diff: {len(self.drift)} drift item(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        for entry in self.drift:
            lines.append(f"  DRIFT {entry}")
        for entry in self.warnings:
            lines.append(f"  warn  {entry}")
        lines.append(
            "Result: " + ("COMPARABLE" if self.ok else "NOT COMPARABLE")
        )
        return "\n".join(lines)


def _diff_mapping(
    kind: str,
    field_prefix: str,
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    out: list[DiffEntry],
) -> None:
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            out.append(DiffEntry(kind, f"{field_prefix}{key}", va, vb))


def diff_manifests(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    time_regression: float = 0.25,
    min_regression_seconds: float = 0.05,
) -> ManifestDiff:
    """Compare two manifests (``a`` = baseline, ``b`` = candidate).

    Parameters
    ----------
    time_regression:
        Fractional slowdown of a stage's ``total_seconds`` (b vs. a)
        reported as a warning, e.g. ``0.25`` = 25 % slower.
    min_regression_seconds:
        Absolute floor below which timing differences are noise and
        never reported.
    """
    diff = ManifestDiff()
    for key in _IDENTITY_KEYS:
        if a.get(key) != b.get(key):
            diff.drift.append(DiffEntry("identity", key, a.get(key), b.get(key)))
    _diff_mapping("seed", "seeds.", a.get("seeds", {}), b.get("seeds", {}), diff.drift)
    _diff_mapping(
        "config", "config.", a.get("config", {}), b.get("config", {}), diff.drift
    )
    _diff_mapping(
        "input", "inputs.", a.get("inputs", {}), b.get("inputs", {}), diff.drift
    )
    _diff_mapping(
        "output", "outputs.", a.get("outputs", {}), b.get("outputs", {}), diff.drift
    )
    _diff_mapping(
        "counts", "counts.", a.get("counts", {}), b.get("counts", {}), diff.drift
    )
    _diff_mapping(
        "validation",
        "validation.",
        a.get("validation", {}),
        b.get("validation", {}),
        diff.drift,
    )

    stages_a = {s.get("name"): s for s in a.get("stages", [])}
    stages_b = {s.get("name"): s for s in b.get("stages", [])}
    for name in sorted(set(stages_a) | set(stages_b)):
        sa, sb = stages_a.get(name), stages_b.get(name)
        if sa is None or sb is None:
            diff.drift.append(
                DiffEntry(
                    "stage",
                    f"stages.{name}",
                    "present" if sa else "absent",
                    "present" if sb else "absent",
                )
            )
            continue
        for rows_key in ("rows_in", "rows_out", "calls"):
            if sa.get(rows_key) != sb.get(rows_key):
                diff.drift.append(
                    DiffEntry(
                        "rows",
                        f"stages.{name}.{rows_key}",
                        sa.get(rows_key),
                        sb.get(rows_key),
                    )
                )
        ta = float(sa.get("total_seconds", 0.0))
        tb = float(sb.get("total_seconds", 0.0))
        if (
            tb - ta > min_regression_seconds
            and ta > 0
            and (tb - ta) / ta > time_regression
        ):
            diff.warnings.append(
                DiffEntry(
                    "stage-time",
                    f"stages.{name}.total_seconds",
                    round(ta, 4),
                    round(tb, 4),
                )
            )
    return diff


def _fmt_rows(value: Any) -> str:
    if value is None:
        return "-"
    return str(int(value))


def render_manifest(m: Mapping[str, Any]) -> str:
    """One-screen human-readable summary of a run manifest."""
    lines = [
        f"Run manifest (schema v{m.get('schema_version', '?')}): "
        f"{m.get('command', '?')}",
        f"  config digest: {str(m.get('config_digest', ''))[:16]}…",
        f"  seeds:         {m.get('seeds', {}) or '{}'}",
        f"  elapsed:       {float(m.get('elapsed_seconds', 0.0)):.2f}s",
    ]
    counts = m.get("counts") or {}
    if counts:
        lines.append(
            "  counts:        "
            + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )
    validation = m.get("validation") or {}
    lines.append(
        "  validation:    "
        f"{validation.get('n_errors', 0)} error(s), "
        f"{validation.get('n_warnings', 0)} warning(s), "
        f"{validation.get('n_quarantined', 0)} quarantined row(s)"
    )
    stages = m.get("stages") or []
    if stages:
        lines.append("  stages:")
        lines.append(
            f"    {'stage':<34s} {'calls':>6s} {'total s':>9s} "
            f"{'rows in':>10s} {'rows out':>10s}"
        )
        for stage in stages:
            lines.append(
                f"    {str(stage.get('name', '?')):<34s} "
                f"{int(stage.get('calls', 0)):>6d} "
                f"{float(stage.get('total_seconds', 0.0)):>9.3f} "
                f"{_fmt_rows(stage.get('rows_in')):>10s} "
                f"{_fmt_rows(stage.get('rows_out')):>10s}"
            )
    for section, title in (("inputs", "inputs"), ("outputs", "outputs")):
        entries = m.get(section) or {}
        if entries:
            lines.append(f"  {title}:")
            for name, digest in sorted(entries.items()):
                lines.append(f"    {name:<20s} sha256:{str(digest)[:16]}…")
    return "\n".join(lines)
