"""Human-readable run summaries and manifest-to-manifest diffs.

Two consumers:

- ``repro-ssd obs show <manifest>`` — :func:`render_manifest`, a
  one-screen summary of what a run did (stage table with timings and
  rows in/out, validation tallies, artifact digests);
- ``repro-ssd obs diff <a> <b>`` — :func:`diff_manifests`, which
  classifies differences into **drift** (seeds, config, input/output
  digests, row counts, validation tallies — anything that makes two
  runs non-comparable) and **warnings** (stage-time regressions beyond
  a threshold — worth a look, but not a comparability failure).

Two runs of the same command with the same seed and inputs must diff
clean: timings are never drift, and wall-clock metadata (``created_unix``,
``elapsed_seconds``, ``argv``) is ignored.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "BENCH_METRICS",
    "BenchDiff",
    "DiffEntry",
    "ManifestDiff",
    "diff_bench",
    "diff_manifests",
    "render_manifest",
]

#: Keys compared verbatim at the top level (besides structured sections).
_IDENTITY_KEYS = ("schema_version", "command", "config_digest")


@dataclass(frozen=True)
class DiffEntry:
    """One observed difference between two manifests."""

    kind: str  # e.g. "seed", "config", "input", "output", "rows", "stage-time"
    field: str
    a: Any
    b: Any

    def __str__(self) -> str:
        return f"[{self.kind}] {self.field}: {self.a!r} -> {self.b!r}"


@dataclass
class ManifestDiff:
    """Classified differences between two run manifests."""

    drift: list[DiffEntry] = field(default_factory=list)
    warnings: list[DiffEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the runs are comparable (no drift; warnings allowed)."""
        return not self.drift

    def render(self) -> str:
        lines = [
            f"Manifest diff: {len(self.drift)} drift item(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        for entry in self.drift:
            lines.append(f"  DRIFT {entry}")
        for entry in self.warnings:
            lines.append(f"  warn  {entry}")
        lines.append(
            "Result: " + ("COMPARABLE" if self.ok else "NOT COMPARABLE")
        )
        return "\n".join(lines)


def _diff_mapping(
    kind: str,
    field_prefix: str,
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    out: list[DiffEntry],
) -> None:
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            out.append(DiffEntry(kind, f"{field_prefix}{key}", va, vb))


def diff_manifests(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    time_regression: float = 0.25,
    min_regression_seconds: float = 0.05,
) -> ManifestDiff:
    """Compare two manifests (``a`` = baseline, ``b`` = candidate).

    Parameters
    ----------
    time_regression:
        Fractional slowdown of a stage's ``total_seconds`` (b vs. a)
        reported as a warning, e.g. ``0.25`` = 25 % slower.
    min_regression_seconds:
        Absolute floor below which timing differences are noise and
        never reported.
    """
    diff = ManifestDiff()
    for key in _IDENTITY_KEYS:
        if a.get(key) != b.get(key):
            diff.drift.append(DiffEntry("identity", key, a.get(key), b.get(key)))
    _diff_mapping("seed", "seeds.", a.get("seeds", {}), b.get("seeds", {}), diff.drift)
    _diff_mapping(
        "config", "config.", a.get("config", {}), b.get("config", {}), diff.drift
    )
    _diff_mapping(
        "input", "inputs.", a.get("inputs", {}), b.get("inputs", {}), diff.drift
    )
    _diff_mapping(
        "output", "outputs.", a.get("outputs", {}), b.get("outputs", {}), diff.drift
    )
    _diff_mapping(
        "counts", "counts.", a.get("counts", {}), b.get("counts", {}), diff.drift
    )
    _diff_mapping(
        "validation",
        "validation.",
        a.get("validation", {}),
        b.get("validation", {}),
        diff.drift,
    )

    stages_a = {s.get("name"): s for s in a.get("stages", [])}
    stages_b = {s.get("name"): s for s in b.get("stages", [])}
    for name in sorted(set(stages_a) | set(stages_b)):
        sa, sb = stages_a.get(name), stages_b.get(name)
        if sa is None or sb is None:
            diff.drift.append(
                DiffEntry(
                    "stage",
                    f"stages.{name}",
                    "present" if sa else "absent",
                    "present" if sb else "absent",
                )
            )
            continue
        for rows_key in ("rows_in", "rows_out", "calls"):
            if sa.get(rows_key) != sb.get(rows_key):
                diff.drift.append(
                    DiffEntry(
                        "rows",
                        f"stages.{name}.{rows_key}",
                        sa.get(rows_key),
                        sb.get(rows_key),
                    )
                )
        ta = float(sa.get("total_seconds", 0.0))
        tb = float(sb.get("total_seconds", 0.0))
        if (
            tb - ta > min_regression_seconds
            and ta > 0
            and (tb - ta) / ta > time_regression
        ):
            diff.warnings.append(
                DiffEntry(
                    "stage-time",
                    f"stages.{name}.total_seconds",
                    round(ta, 4),
                    round(tb, 4),
                )
            )
    return diff


# --------------------------------------------------------------------------
# benchmark diffs (obs bench-diff)
# --------------------------------------------------------------------------

#: Benchmark metrics compared by default: name -> which direction is
#: *better*.  A regression is a move in the other direction beyond the
#: allowed fraction.  Keys absent from either payload are skipped.
BENCH_METRICS: dict[str, str] = {
    "events_per_second": "higher",
    "latency_p50_us": "lower",
    "latency_p95_us": "lower",
    "latency_p99_us": "lower",
}

#: Context keys whose mismatch makes two bench files non-comparable.
_BENCH_CONTEXT = ("n_events", "n_drives", "workers", "chunk_rows")


@dataclass
class BenchDiff:
    """Classified differences between two benchmark payloads."""

    regressions: list[DiffEntry] = field(default_factory=list)
    improvements: list[DiffEntry] = field(default_factory=list)
    warnings: list[DiffEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no metric regressed beyond its threshold."""
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"Bench diff: {len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        for entry in self.regressions:
            lines.append(f"  REGRESSION {entry}")
        for entry in self.improvements:
            lines.append(f"  better     {entry}")
        for entry in self.warnings:
            lines.append(f"  warn       {entry}")
        lines.append("Result: " + ("OK" if self.ok else "REGRESSED"))
        return "\n".join(lines)


def diff_bench(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    max_regression: float = 0.2,
    thresholds: Mapping[str, float] | None = None,
) -> BenchDiff:
    """Compare two ``BENCH_*.json`` payloads (``a`` = baseline).

    ``max_regression`` is the default allowed fractional move in the
    *worse* direction (0.2 = 20 % slower throughput or higher latency);
    ``thresholds`` overrides it per metric name.  Mismatched workload
    context (event counts, worker counts) and a baseline-only/candidate-
    only metric are warnings — the numbers still print, but comparability
    is suspect.  A candidate that lost scoring parity is always a
    regression, whatever the numbers say.
    """
    if max_regression < 0:
        raise ValueError("max_regression must be >= 0")
    diff = BenchDiff()
    for key in _BENCH_CONTEXT:
        if key in a and key in b and a[key] != b[key]:
            diff.warnings.append(DiffEntry("context", key, a[key], b[key]))
    if bool(a.get("parity", True)) and not bool(b.get("parity", True)):
        diff.regressions.append(
            DiffEntry("parity", "parity", a.get("parity"), b.get("parity"))
        )
    for name, better in BENCH_METRICS.items():
        if name not in a or name not in b:
            if name in a or name in b:
                diff.warnings.append(
                    DiffEntry("missing", name, a.get(name), b.get(name))
                )
            continue
        va, vb = float(a[name]), float(b[name])
        if va <= 0:
            diff.warnings.append(DiffEntry("baseline", name, va, vb))
            continue
        frac = (va - vb) / va if better == "higher" else (vb - va) / va
        allowed = (
            float(thresholds[name])
            if thresholds and name in thresholds
            else max_regression
        )
        entry = DiffEntry(
            f"{frac:+.1%} vs {allowed:.0%} allowed", name, va, vb
        )
        if frac > allowed:
            diff.regressions.append(entry)
        elif -frac > allowed:
            diff.improvements.append(entry)
    return diff


def _fmt_rows(value: Any) -> str:
    if value is None:
        return "-"
    return str(int(value))


def render_manifest(m: Mapping[str, Any]) -> str:
    """One-screen human-readable summary of a run manifest."""
    lines = [
        f"Run manifest (schema v{m.get('schema_version', '?')}): "
        f"{m.get('command', '?')}",
        f"  config digest: {str(m.get('config_digest', ''))[:16]}…",
        f"  seeds:         {m.get('seeds', {}) or '{}'}",
        f"  elapsed:       {float(m.get('elapsed_seconds', 0.0)):.2f}s",
    ]
    counts = m.get("counts") or {}
    if counts:
        lines.append(
            "  counts:        "
            + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )
    validation = m.get("validation") or {}
    lines.append(
        "  validation:    "
        f"{validation.get('n_errors', 0)} error(s), "
        f"{validation.get('n_warnings', 0)} warning(s), "
        f"{validation.get('n_quarantined', 0)} quarantined row(s)"
    )
    stages = m.get("stages") or []
    if stages:
        lines.append("  stages:")
        lines.append(
            f"    {'stage':<34s} {'calls':>6s} {'total s':>9s} "
            f"{'rows in':>10s} {'rows out':>10s}"
        )
        for stage in stages:
            lines.append(
                f"    {str(stage.get('name', '?')):<34s} "
                f"{int(stage.get('calls', 0)):>6d} "
                f"{float(stage.get('total_seconds', 0.0)):>9.3f} "
                f"{_fmt_rows(stage.get('rows_in')):>10s} "
                f"{_fmt_rows(stage.get('rows_out')):>10s}"
            )
    slo = m.get("slo") or {}
    if slo:
        objectives = slo.get("objectives") or []
        lines.append(
            f"  slo:           {slo.get('state', '?')} "
            f"({len(objectives)} objective(s))"
        )
        for obj in objectives:
            if obj.get("state", "ok") != "ok":
                lines.append(
                    f"    {obj.get('state', '?'):<7s}"
                    f"{obj.get('name', '?')}: {obj.get('metric', '?')} "
                    f"{obj.get('op', '?')} {obj.get('threshold', '?')} "
                    f"violated {obj.get('violations', 0)}/"
                    f"{obj.get('windows_evaluated', 0)} window(s)"
                )
    for section, title in (("inputs", "inputs"), ("outputs", "outputs")):
        entries = m.get(section) or {}
        if entries:
            lines.append(f"  {title}:")
            for name, digest in sorted(entries.items()):
                lines.append(f"    {name:<20s} sha256:{str(digest)[:16]}…")
    for warning in _histogram_overflows(m.get("metrics") or {}):
        lines.append(f"  WARN {warning}")
    return "\n".join(lines)


def _histogram_overflows(metrics: Mapping[str, Any]) -> list[str]:
    """Warning lines for histograms with observations above the top bucket.

    A quantile read off such a histogram is clamped to the highest
    finite bound — a p99 "holding steady" there may really be unbounded,
    so ``obs show`` must not let it masquerade as healthy.
    """
    out: list[str] = []
    for name, fam in sorted(metrics.items()):
        if not isinstance(fam, Mapping) or fam.get("kind") != "histogram":
            continue
        for series in fam.get("series", []):
            overflow = int(series.get("overflow", 0) or 0)
            if overflow <= 0:
                continue
            labels = series.get("labels") or {}
            label_str = (
                "{" + ",".join(f'{k}="{v}"' for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            out.append(
                f"{name}{label_str}: {overflow}/{series.get('count', '?')} "
                "observation(s) above the top bucket — quantiles are "
                "clamped to the highest finite bound"
            )
    return out
