"""Structured JSONL event log with levels and span correlation.

Where :mod:`repro.obs.tracing` answers "how long did stages take" and
:mod:`repro.obs.timeline` answers "what were the rates per window", the
event log answers "what *happened*": guard rejections, dead-letter
diversions, health-state transitions, heartbeats — discrete facts that
used to be ad-hoc prints or invisible.

Each event is one JSON line::

    {"seq": 12, "ts": 1733000000.0, "level": "warn",
     "kind": "serve.health.transition", "msg": "ready -> degraded",
     "span": 41, "from": "ready", "to": "degraded"}

- ``seq`` is per-file monotone and resumes from an existing file's line
  count, so appends across restarts never collide (same contract as the
  DLQ journal).
- ``ts`` is wall clock, or the ``REPRO_EPOCH`` override when set — the
  same knob that pins :class:`repro.obs.manifest.RunManifest`
  timestamps, so golden event logs diff clean.
- ``span`` is the innermost open span id on the active tracer at emit
  time (``null`` outside any span), correlating events with the trace.
- extra keyword fields land top-level (reserved keys are prefixed with
  ``x_`` instead of clobbering the envelope).

Event *kinds* follow the span naming convention
(``repro.<module>.<what>``, DESIGN.md §10) minus the leading ``repro.``
— e.g. ``serve.guard.dead_letter``, ``serve.engine.heartbeat``.

Module-level :func:`emit` no-ops unless a log is activated, mirroring
tracing/metrics/timeline, so instrumented code never checks a flag.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from pathlib import Path
from typing import Any, TextIO

from . import tracing

__all__ = [
    "LEVELS",
    "EventLog",
    "activate",
    "current",
    "set_active",
    "emit",
    "iter_events",
    "load_events",
]

#: Level name -> numeric severity (filtering compares numerically).
LEVELS: dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}

_RESERVED = frozenset({"seq", "ts", "level", "kind", "msg", "span"})


def _level_num(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown event level {level!r} (expected one of {sorted(LEVELS)})"
        ) from None


def _now() -> float:
    epoch = os.environ.get("REPRO_EPOCH")
    if epoch is not None:
        try:
            return float(epoch)
        except ValueError:
            pass
    return time.time()


class EventLog:
    """Append-only JSONL event sink, thread-safe, flushed per line."""

    def __init__(self, path: str | Path, min_level: str = "debug") -> None:
        self.path = Path(path)
        self.min_level = min_level
        self._threshold = _level_num(min_level)
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {name: 0 for name in LEVELS}
        self._seq = 0
        if self.path.exists():
            with open(self.path, encoding="utf-8") as fh:
                self._seq = sum(1 for line in fh if line.strip())
        self._fh: TextIO | None = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------- emitting
    def emit(self, kind: str, msg: str = "", level: str = "info", **fields: Any) -> None:
        """Append one event (dropped when below ``min_level``)."""
        severity = _level_num(level)
        if severity < self._threshold:
            return
        tracer = tracing.current()
        span_id = tracer.current_parent_id() if tracer is not None else None
        record: dict[str, Any] = {
            "seq": 0,  # patched under the lock below
            "ts": _now(),
            "level": level,
            "kind": kind,
            "msg": msg,
            "span": span_id,
        }
        for key, value in fields.items():
            record[f"x_{key}" if key in _RESERVED else key] = value
        with self._lock:
            if self._fh is None:
                return
            record["seq"] = self._seq
            self._seq += 1
            self._counts[level] += 1
            self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
            self._fh.flush()

    def counts(self) -> dict[str, int]:
        """Events emitted by this instance, per level."""
        with self._lock:
            return dict(self._counts)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# --------------------------------------------------------------------------
# reading (obs tail, tests)
# --------------------------------------------------------------------------

def iter_events(
    path: str | Path,
    min_level: str = "debug",
    kind_prefix: str | None = None,
) -> Iterator[dict[str, Any]]:
    """Stream events from a JSONL log, filtered by level and kind prefix.

    Malformed lines raise ``ValueError`` with the line number — a sick
    event log is itself an event worth hearing about.
    """
    threshold = _level_num(min_level)
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad event line: {exc}") from exc
            if not isinstance(record, Mapping):
                raise ValueError(f"{path}:{lineno}: event line is not an object")
            if LEVELS.get(record.get("level", "info"), 20) < threshold:
                continue
            if kind_prefix and not str(record.get("kind", "")).startswith(kind_prefix):
                continue
            yield dict(record)


def load_events(
    path: str | Path,
    min_level: str = "debug",
    kind_prefix: str | None = None,
) -> list[dict[str, Any]]:
    """:func:`iter_events`, materialized."""
    return list(iter_events(path, min_level=min_level, kind_prefix=kind_prefix))


# --------------------------------------------------------------------------
# process-wide activation (mirrors tracing/metrics/timeline)
# --------------------------------------------------------------------------

_active: EventLog | None = None


def current() -> EventLog | None:
    """The process-wide active event log, or ``None`` when off."""
    return _active


def set_active(log: EventLog | None) -> EventLog | None:
    """Install (or clear) the active event log; returns the previous one."""
    global _active
    previous = _active
    _active = log
    return previous


@contextmanager
def activate(log: EventLog) -> Iterator[EventLog]:
    """Activate an event log for the duration of the block."""
    previous = set_active(log)
    try:
        yield log
    finally:
        set_active(previous)


def emit(kind: str, msg: str = "", level: str = "info", **fields: Any) -> None:
    """Emit on the active event log (no-op when inactive)."""
    log = _active
    if log is None:
        return
    log.emit(kind, msg=msg, level=level, **fields)
