"""Declarative service-level objectives over timeline windows.

An :class:`Objective` names one window-level signal — a latency
quantile, a dead-letter rate, a staleness gauge — a comparison against a
threshold, and two lookbacks.  Evaluation classifies each objective as
``ok`` / ``warn`` / ``breach`` using a simplified multi-window burn-rate
rule (Google SRE workbook, ch. 5): the fraction of *violating* windows
is computed over a short lookback (is it bad **now**?) and a long
lookback (has it been bad for a **while**?), and

- **breach** — short fraction ≥ ``breach_burn`` *and* long fraction ≥
  ``warn_burn``: sustained violation, page-worthy;
- **warn** — short fraction ≥ ``warn_burn`` *or* long fraction ≥
  ``breach_burn``: a fresh spike, or a slow burn that never clears;
- **ok** — otherwise (including "no data": an objective whose signal
  never appears evaluates ok with ``windows_evaluated = 0``; gate on
  that field if absence itself is a failure).

Because timeline windows are deterministic (event/watermark ticks, see
:mod:`repro.obs.timeline`), a replayed stream produces the same
classification every run — SLO evaluation is CI-gateable, not flaky.

Metric addressing uses dotted paths into the window dict:

- ``counters.<key>`` — window counter delta; a bare family name sums
  every labeled series of that family (``repro_serve_dlq_total`` counts
  all fault classes); ``per_event: true`` divides by the window's event
  span, turning the delta into a rate.
- ``gauges.<key>`` — gauge level at the window boundary (window skipped
  when the gauge is absent).
- ``quantiles.<family>.<p50|p90|p99>`` — per-window quantile estimate
  (window skipped when the family saw no observations; a *clamped*
  estimate counts as violating for ``<=`` objectives — an overflowed
  histogram cannot prove the objective was met).
- ``window.events`` / ``window.watermark`` — the window's own fields.

The spec file is JSON: ``{"objectives": [{...}, ...]}`` with each entry
mirroring :class:`Objective` fields (see README "Live telemetry &
SLOs").
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from .timeline import TimelineWindow

__all__ = [
    "STATE_ORDER",
    "Objective",
    "ObjectiveResult",
    "SloSpec",
    "SloReport",
    "evaluate_objective",
    "evaluate_slos",
    "load_slo_spec",
    "slo_exit_code",
]

#: Classification severity order; ``max`` of states is the overall state.
STATE_ORDER: dict[str, int] = {"ok": 0, "warn": 1, "breach": 2}

_OPS = {"<=", ">="}
_SECTIONS = {"counters", "gauges", "quantiles", "window"}


def slo_exit_code(state: str) -> int:
    """The documented exit-code contract: 0 ok / 1 warn / 2 breach."""
    return STATE_ORDER[state]


@dataclass(frozen=True)
class Objective:
    """One declarative objective (see module docstring for semantics)."""

    name: str
    metric: str
    threshold: float
    op: str = "<="
    per_event: bool = False
    short_windows: int = 5
    long_windows: int = 20
    warn_burn: float = 0.5
    breach_burn: float = 0.9

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective needs a name")
        if self.op not in _OPS:
            raise ValueError(f"objective {self.name!r}: op must be one of {_OPS}")
        section = self.metric.partition(".")[0]
        if section not in _SECTIONS:
            raise ValueError(
                f"objective {self.name!r}: metric must start with one of "
                f"{sorted(_SECTIONS)}, got {self.metric!r}"
            )
        if self.short_windows < 1 or self.long_windows < self.short_windows:
            raise ValueError(
                f"objective {self.name!r}: need 1 <= short_windows <= long_windows"
            )
        if not (0.0 < self.warn_burn <= self.breach_burn <= 1.0):
            raise ValueError(
                f"objective {self.name!r}: need 0 < warn_burn <= breach_burn <= 1"
            )
        if self.per_event and not self.metric.startswith("counters."):
            raise ValueError(
                f"objective {self.name!r}: per_event only applies to counters"
            )

    @classmethod
    def from_dict(cls, d: Mapping) -> "Objective":
        known = {
            "name", "metric", "threshold", "op", "per_event",
            "short_windows", "long_windows", "warn_burn", "breach_burn",
        }
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"objective {d.get('name', '?')!r}: unknown keys {sorted(unknown)}"
            )
        try:
            return cls(
                name=str(d["name"]),
                metric=str(d["metric"]),
                threshold=float(d["threshold"]),
                op=str(d.get("op", "<=")),
                per_event=bool(d.get("per_event", False)),
                short_windows=int(d.get("short_windows", 5)),
                long_windows=int(d.get("long_windows", 20)),
                warn_burn=float(d.get("warn_burn", 0.5)),
                breach_burn=float(d.get("breach_burn", 0.9)),
            )
        except KeyError as exc:
            raise ValueError(f"objective missing required key {exc}") from exc

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "threshold": self.threshold,
            "op": self.op,
            "per_event": self.per_event,
            "short_windows": self.short_windows,
            "long_windows": self.long_windows,
            "warn_burn": self.warn_burn,
            "breach_burn": self.breach_burn,
        }


@dataclass
class ObjectiveResult:
    """Classification of one objective over the evaluated windows."""

    name: str
    metric: str
    state: str
    threshold: float
    op: str
    windows_evaluated: int
    violations: int
    short_fraction: float
    long_fraction: float
    last_value: float | None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "state": self.state,
            "threshold": self.threshold,
            "op": self.op,
            "windows_evaluated": self.windows_evaluated,
            "violations": self.violations,
            "short_fraction": self.short_fraction,
            "long_fraction": self.long_fraction,
            "last_value": self.last_value,
        }


@dataclass
class SloReport:
    """Overall state (worst objective) plus per-objective results."""

    state: str
    objectives: list[ObjectiveResult]

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "objectives": [r.to_dict() for r in self.objectives],
        }

    @property
    def exit_code(self) -> int:
        return slo_exit_code(self.state)


@dataclass(frozen=True)
class SloSpec:
    """A named bundle of objectives (one spec file)."""

    objectives: tuple[Objective, ...]

    @classmethod
    def from_dict(cls, d: Mapping) -> "SloSpec":
        objectives = d.get("objectives")
        if not isinstance(objectives, Sequence) or isinstance(objectives, str):
            raise ValueError('SLO spec needs an "objectives" list')
        parsed = tuple(Objective.from_dict(o) for o in objectives)
        names = [o.name for o in parsed]
        if len(set(names)) != len(names):
            raise ValueError("duplicate objective names in SLO spec")
        return cls(objectives=parsed)

    def to_dict(self) -> dict:
        return {"objectives": [o.to_dict() for o in self.objectives]}


def load_slo_spec(path: str | Path) -> SloSpec:
    """Parse a JSON spec file into an :class:`SloSpec`."""
    with open(path, encoding="utf-8") as fh:
        try:
            raw = json.load(fh)
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(raw, Mapping):
        raise ValueError(f"{path}: SLO spec must be a JSON object")
    return SloSpec.from_dict(raw)


# --------------------------------------------------------------------------
# evaluation
# --------------------------------------------------------------------------

def _counter_value(window: TimelineWindow, key: str) -> float:
    """Exact counter key, or the sum of its labeled series (``key{...}``)."""
    if key in window.counters:
        return float(window.counters[key])
    prefix = key + "{"
    return float(
        sum(v for k, v in window.counters.items() if k.startswith(prefix))
    )


def _window_value(
    objective: Objective, window: TimelineWindow
) -> tuple[float | None, bool]:
    """``(value, clamped)`` for one window; ``(None, False)`` = skip."""
    section, _, rest = objective.metric.partition(".")
    if section == "counters":
        value = _counter_value(window, rest)
        if objective.per_event:
            value /= max(window.events, 1)
        return value, False
    if section == "gauges":
        raw = window.gauges.get(rest)
        return (float(raw), False) if raw is not None else (None, False)
    if section == "quantiles":
        family, _, q = rest.rpartition(".")
        if not family:
            raise ValueError(
                f"objective {objective.name!r}: quantile metrics are "
                "quantiles.<family>.<p50|p90|p99>"
            )
        entry = window.quantiles.get(family)
        if entry is None or q not in entry:
            return None, False
        return float(entry[q]), bool(entry.get("clamped", False))
    if section == "window":
        if rest == "events":
            return float(window.events), False
        if rest == "watermark":
            return float(window.watermark), False
        raise ValueError(
            f"objective {objective.name!r}: unknown window field {rest!r}"
        )
    raise ValueError(  # pragma: no cover - blocked by Objective validation
        f"objective {objective.name!r}: unknown metric section {section!r}"
    )


def _violates(objective: Objective, value: float, clamped: bool) -> bool:
    if objective.op == "<=":
        # A clamped quantile understates the truth; it cannot *prove*
        # the objective was met, so it counts against the budget.
        return clamped or value > objective.threshold
    return value < objective.threshold


def evaluate_objective(
    objective: Objective, windows: Sequence[TimelineWindow]
) -> ObjectiveResult:
    """Classify one objective over the (oldest-first) window sequence."""
    flags: list[bool] = []
    last_value: float | None = None
    for window in windows[-objective.long_windows:]:
        value, clamped = _window_value(objective, window)
        if value is None:
            continue
        last_value = value
        flags.append(_violates(objective, value, clamped))
    evaluated = len(flags)
    violations = sum(flags)
    if evaluated == 0:
        return ObjectiveResult(
            name=objective.name,
            metric=objective.metric,
            state="ok",
            threshold=objective.threshold,
            op=objective.op,
            windows_evaluated=0,
            violations=0,
            short_fraction=0.0,
            long_fraction=0.0,
            last_value=None,
        )
    short = flags[-objective.short_windows:]
    short_fraction = sum(short) / len(short)
    long_fraction = violations / evaluated
    if (
        short_fraction >= objective.breach_burn
        and long_fraction >= objective.warn_burn
    ):
        state = "breach"
    elif (
        short_fraction >= objective.warn_burn
        or long_fraction >= objective.breach_burn
    ):
        state = "warn"
    else:
        state = "ok"
    return ObjectiveResult(
        name=objective.name,
        metric=objective.metric,
        state=state,
        threshold=objective.threshold,
        op=objective.op,
        windows_evaluated=evaluated,
        violations=violations,
        short_fraction=short_fraction,
        long_fraction=long_fraction,
        last_value=last_value,
    )


def evaluate_slos(
    spec: SloSpec, windows: Sequence[TimelineWindow]
) -> SloReport:
    """Evaluate every objective; overall state is the worst one."""
    results = [evaluate_objective(o, windows) for o in spec.objectives]
    state = "ok"
    for r in results:
        if STATE_ORDER[r.state] > STATE_ORDER[state]:
            state = r.state
    return SloReport(state=state, objectives=results)
