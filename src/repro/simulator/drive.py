"""Whole-life simulation of a single drive.

A drive's life is a sequence of *operational periods* separated by
failure → swap → repair episodes (Figure 2 of the paper):

1. the period runs from deployment (or re-entry) until a sampled failure
   or the end of the observation window;
2. after a failure, the drive may keep filing zero-activity reports for a
   few days, then goes dark until the physical swap;
3. the swap sends it to repair, from which it may re-enter the field and
   start the next period (with elevated hazard), or never return.

Each period's telemetry is generated vectorized across its days; the
Python-level loop is only over periods (at most a handful per drive).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import DriveModelSpec
from .errors import generate_errors, sample_error_latents
from .lifetime import FailureMode, sample_failure
from .repair import sample_inactive_stretch, sample_nonoperational_days, sample_repair
from .symptoms import SymptomPlan, plan_symptoms
from .workload import generate_workload, sample_workload_latents

__all__ = ["DriveResult", "SwapEvent", "simulate_drive"]


@dataclass(frozen=True)
class SwapEvent:
    """One observed swap-inducing failure of a drive."""

    failure_age: int
    swap_age: int
    reentry_age: float  # nan when never observed to return
    operational_start_age: int
    mode: FailureMode


@dataclass
class DriveResult:
    """All observables produced by one drive's simulated life."""

    drive_id: int
    model: int
    deploy_day: int
    end_of_observation_age: int
    records: dict[str, np.ndarray]
    swaps: list[SwapEvent] = field(default_factory=list)


_RECORD_COLUMNS = (
    "age_days",
    "read_count",
    "write_count",
    "erase_count",
    "pe_cycles",
    "status_dead",
    "status_read_only",
    "factory_bad_blocks",
    "grown_bad_blocks",
    "correctable_error",
    "erase_error",
    "final_read_error",
    "final_write_error",
    "meta_error",
    "read_error",
    "response_error",
    "timeout_error",
    "uncorrectable_error",
    "write_error",
)

#: Native dtype of each record column as produced by the generators
#: (the dataset constructor later casts to the registry storage dtypes).
_RECORD_DTYPES: dict[str, np.dtype] = {
    "age_days": np.dtype(np.int64),
    "read_count": np.dtype(np.float64),
    "write_count": np.dtype(np.float64),
    "erase_count": np.dtype(np.float64),
    "pe_cycles": np.dtype(np.float64),
    "status_dead": np.dtype(np.int8),
    "status_read_only": np.dtype(np.int8),
    "factory_bad_blocks": np.dtype(np.int64),
    "grown_bad_blocks": np.dtype(np.int64),
}
for _err in _RECORD_COLUMNS[9:]:
    _RECORD_DTYPES[_err] = np.dtype(np.int64)

#: Error-counter columns in record order, paired with their PeriodErrors
#: attribute (identical names).
_ERROR_COLUMNS = _RECORD_COLUMNS[9:]


def _alloc_buffers(capacity: int) -> dict[str, np.ndarray]:
    """Per-drive columnar record buffers, written in place with a cursor.

    A drive files at most one record per age day, so ``capacity =
    max_age`` bounds the row count for its whole life — periods, limbo
    stretches and re-entries included — and emission never reallocates.
    """
    return {
        name: np.empty(capacity, dtype=_RECORD_DTYPES[name])
        for name in _RECORD_COLUMNS
    }


def simulate_drive(
    drive_id: int,
    model_index: int,
    spec: DriveModelSpec,
    deploy_day: int,
    horizon_days: int,
    rng: np.random.Generator,
) -> DriveResult:
    """Simulate one drive from deployment to the end of the trace window.

    Parameters
    ----------
    drive_id, model_index:
        Identity written into every record.
    spec:
        The drive model's full parameter set.
    deploy_day:
        Calendar day the drive enters production; its observation window in
        age units is ``[0, horizon_days - deploy_day)``.
    horizon_days:
        Calendar length of the trace.
    rng:
        Drive-local random stream (independent per drive).
    """
    max_age = horizon_days - deploy_day
    if max_age <= 0:
        raise ValueError("drive deployed at or beyond the trace horizon")

    wl_latents = sample_workload_latents(spec.workload, rng)
    err_latents = sample_error_latents(spec.errors, rng)
    record_prob = float(
        rng.beta(spec.observation.record_prob_alpha, spec.observation.record_prob_beta)
    )

    buffers = _alloc_buffers(max_age)
    cursor = 0
    swaps: list[SwapEvent] = []
    pe_state = 0.0
    bb_state = 0
    start_age = 0
    post_repair = False

    while start_age < max_age:
        draw = sample_failure(
            spec.lifetime,
            rng,
            start_age,
            max_age,
            post_repair,
            proneness=err_latents.error_proneness,
        )
        if draw.age is None:
            period_end = max_age - 1
            plan = SymptomPlan.none()
        else:
            period_end = draw.age
            plan = plan_symptoms(
                spec.symptoms, draw.mode, period_end - start_age + 1, rng
            )

        ages = np.arange(start_age, period_end + 1, dtype=np.int64)
        n = ages.shape[0]
        workload = generate_workload(spec.workload, wl_latents, ages, rng)

        # Operator-driven ramp-down before a failure: drain the workload
        # over the last ``decline_days`` (closest day to failure lowest).
        if plan.decline_days > 0:
            k = min(plan.decline_days, n)
            # Decline deepens toward the failure: the last day of the
            # window gets factor**k, the first factor**1.
            powers = np.arange(1, k + 1, dtype=np.float64)
            mult = plan.decline_factor**powers
            for arr in (workload.read_count, workload.write_count, workload.erase_count):
                arr[n - k :] = np.round(arr[n - k :] * mult)
            workload.pe_increment[n - k :] *= mult

        pe = pe_state + np.cumsum(workload.pe_increment)
        errors = generate_errors(
            spec.errors,
            spec.symptoms,
            err_latents,
            plan,
            ages=ages,
            reads=workload.read_count,
            writes=workload.write_count,
            erases=workload.erase_count,
            pe_cycles=pe,
            pe_limit=spec.pe_cycle_limit,
            rng=rng,
        )
        grown_bb = bb_state + np.cumsum(errors.grown_bad_block_increment)

        # Bernoulli record thinning; the failure day is anchored separately.
        recorded = rng.random(n) < record_prob
        if draw.age is not None:
            recorded[-1] = rng.random() < spec.observation.record_failure_day_prob

        k = int(np.count_nonzero(recorded))
        if k:
            sl = slice(cursor, cursor + k)
            full = k == n
            ridx = None if full else np.flatnonzero(recorded)
            for name, col in (
                ("age_days", ages),
                ("read_count", workload.read_count),
                ("write_count", workload.write_count),
                ("erase_count", workload.erase_count),
                ("pe_cycles", pe),
                ("grown_bad_blocks", grown_bb),
            ):
                buffers[name][sl] = col if full else col[ridx]
            for name in _ERROR_COLUMNS:
                col = getattr(errors, name)
                buffers[name][sl] = col if full else col[ridx]
            buffers["factory_bad_blocks"][sl] = err_latents.factory_bad_blocks
            # The dead flag only ever shows up on post-failure limbo
            # reports (emitted below); operational rows — including the
            # failure day — never carry it, so it cannot leak the label.
            buffers["status_dead"][sl] = 0
            if plan.read_only_from_offset is None:
                buffers["status_read_only"][sl] = 0
            else:
                ro_start = max(n - 1 - plan.read_only_from_offset, 0)
                if full:
                    buffers["status_read_only"][cursor : cursor + ro_start] = 0
                    buffers["status_read_only"][cursor + ro_start : cursor + k] = 1
                else:
                    buffers["status_read_only"][sl] = ridx >= ro_start
            cursor += k

        pe_state = float(pe[-1])
        bb_state = int(grown_bb[-1])

        if draw.age is None:
            break

        # ---- failure -> swap -> repair ---------------------------------
        failure_age = draw.age
        nonop = sample_nonoperational_days(spec.repair, rng)
        swap_age = failure_age + nonop
        if swap_age >= max_age:
            # The physical swap falls outside the trace: the failure never
            # appears in the swap log (right-censored, like the paper's
            # drives that "remain in the system in a failed state").
            break

        inactive_len = sample_inactive_stretch(
            spec.repair, rng, max_days=swap_age - failure_age - 1
        )
        if inactive_len > 0:
            cursor = _emit_inactive_records(
                buffers,
                cursor,
                err_latents.factory_bad_blocks,
                bb_state,
                pe_state,
                status_ro_on=plan.read_only_from_offset is not None,
                dead_on=plan.dead_flag,
                first_age=failure_age + 1,
                n_days=inactive_len,
                record_prob=record_prob,
                rng=rng,
            )

        repair = sample_repair(spec.repair, rng)
        if repair.duration_days is None:
            reentry: float = float("nan")
        else:
            candidate = swap_age + repair.duration_days
            reentry = float(candidate) if candidate < max_age - 1 else float("nan")

        swaps.append(
            SwapEvent(
                failure_age=failure_age,
                swap_age=swap_age,
                reentry_age=reentry,
                operational_start_age=start_age,
                mode=draw.mode,
            )
        )

        if np.isnan(reentry):
            break
        start_age = int(reentry)
        post_repair = True

    records = {name: buffers[name][:cursor] for name in _RECORD_COLUMNS}
    return DriveResult(
        drive_id=drive_id,
        model=model_index,
        deploy_day=deploy_day,
        end_of_observation_age=max_age,
        records=records,
        swaps=swaps,
    )


def _emit_inactive_records(
    buffers: dict[str, np.ndarray],
    cursor: int,
    factory_bb: int,
    grown_bb: int,
    pe_state: float,
    *,
    status_ro_on: bool,
    dead_on: bool,
    first_age: int,
    n_days: int,
    record_prob: float,
    rng: np.random.Generator,
) -> int:
    """Zero-activity post-failure reports (the "soft removal" stretch).

    Writes the surviving rows straight into the drive's columnar buffers
    and returns the advanced cursor.
    """
    # One Bernoulli draw per inactive day regardless of how many land —
    # keeps the drive's RNG stream identical to earlier versions that
    # built full-length columns and masked them afterwards.
    recorded = rng.random(n_days) < record_prob
    k = int(np.count_nonzero(recorded))
    if k == 0:
        return cursor
    sl = slice(cursor, cursor + k)
    if k == n_days:
        buffers["age_days"][sl] = np.arange(first_age, first_age + n_days)
    else:
        buffers["age_days"][sl] = np.flatnonzero(recorded) + first_age
    for name in ("read_count", "write_count", "erase_count"):
        buffers[name][sl] = 0.0
    buffers["pe_cycles"][sl] = pe_state
    buffers["status_dead"][sl] = 1 if dead_on else 0
    buffers["status_read_only"][sl] = 1 if status_ro_on else 0
    buffers["factory_bad_blocks"][sl] = factory_bb
    buffers["grown_bad_blocks"][sl] = grown_bb
    for name in _ERROR_COLUMNS:
        buffers[name][sl] = 0
    return cursor + k
