"""Simulator configuration: drive-model specs and fleet parameters.

Every number that shapes the synthetic trace lives here, grouped by the
mechanism it controls and annotated with the published statistic it is
calibrated against (see DESIGN.md §5).  The three presets ``MLC_A``,
``MLC_B`` and ``MLC_D`` correspond to the paper's drive models; they share
a vendor, 480 GB capacity and a 3000-cycle P/E limit (Section 2) and differ
mainly in failure incidence (Table 3) and repair behaviour (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "WorkloadParams",
    "ErrorParams",
    "LifetimeParams",
    "RepairParams",
    "ObservationParams",
    "DriveModelSpec",
    "FleetConfig",
    "MLC_A",
    "MLC_B",
    "MLC_D",
    "default_models",
    "small_fleet_config",
    "paper_scale_config",
]


@dataclass(frozen=True)
class WorkloadParams:
    """Daily workload process (calibrated against Figure 7).

    Daily writes follow ``scale * ramp(age) * noise`` where ``scale`` is a
    per-drive lognormal level, ``ramp`` rises over the first months (young
    drives see *fewer* writes — the paper's no-burn-in observation) and
    decays mildly at high age, and ``noise`` is daily lognormal jitter.
    """

    #: Fleet-median daily write operations at maturity (Fig 7: ~1e8).
    base_writes_per_day: float = 1.25e8
    #: Sigma of the per-drive lognormal activity level.
    drive_scale_sigma: float = 0.45
    #: Ramp start fraction: writes at age 0 relative to maturity.
    ramp_floor: float = 0.30
    #: Days to reach full write intensity.
    ramp_days: int = 300
    #: Age (days) at which slow decay of intensity begins.
    decay_start_days: int = 1500
    #: Relative intensity reached at 6 years (linear decay from 1.0).
    decay_floor: float = 0.70
    #: Daily lognormal jitter sigma.
    daily_sigma: float = 0.35
    #: Probability of a spontaneous idle day (no reads/writes).
    idle_day_prob: float = 0.010
    #: Reads per write (data-center read-heavy mix).
    read_write_ratio: float = 2.5
    #: Flash pages per erase block; erases/day = writes/day ÷ this.
    pages_per_block: int = 512
    #: Number of erase blocks on the device (480 GB / 2 MB blocks);
    #: P/E cycles advance by erases/day ÷ this.
    blocks_per_drive: int = 245760


@dataclass(frozen=True)
class ErrorParams:
    """Background error processes (calibrated against Tables 1, 2; Fig 10).

    Non-transparent errors (uncorrectable / final read / …) are concentrated
    on an *error-prone* minority of drives: the per-drive latent factor is 0
    with probability ``1 - error_prone_prob`` and Gamma-distributed
    otherwise.  That concentration is what lets 0.2–0.3 % of all drive-days
    carry a UE (Table 1) while ~80 % of drives never see one (Fig 10).
    """

    #: Probability a drive is error-prone (latent factor > 0).
    error_prone_prob: float = 0.18
    #: Gamma shape of the positive part of the error-proneness factor.
    error_prone_shape: float = 1.2
    #: Daily UE probability for a drive with unit error-proneness.
    ue_daily_prob: float = 0.018
    #: Lognormal (mu, sigma) of background UE counts on UE days.  Median is
    #: small (1-2 events) with a heavy tail, so final-read days are roughly
    #: half as frequent as UE days (Table 1) while cumulative counts can
    #: still reach the 1e4+ tail of Figure 10.
    ue_count_mu: float = 0.6
    ue_count_sigma: float = 2.2
    #: Probability each UE also counts as a final read error (Table 2's
    #: 0.97 UE<->final-read coupling comes from this event sharing).
    final_read_given_ue: float = 0.45
    #: Daily probability of a final write error for error-prone drives.
    final_write_daily_prob: float = 2.0e-4
    #: Daily probability of a meta error for error-prone drives.
    meta_daily_prob: float = 1.1e-4
    #: Daily probability of a controller-glitch day (drives response and
    #: timeout errors jointly; Table 2 shows rho ~ 0.53 between them).
    glitch_daily_prob: float = 2.0e-5
    #: P(timeout error | glitch day), P(response error | glitch day).
    timeout_given_glitch: float = 0.55
    response_given_glitch: float = 0.18
    #: Daily probability of a (retried, successful) read error at unit
    #: error-proneness plus an activity-driven base.
    read_error_base_prob: float = 6.0e-5
    read_error_prone_boost: float = 3.0e-4
    #: Same for write errors; the wear coefficient ties cumulative write
    #: errors to erase errors and P/E (Table 2's erase<->write rho ~ 0.32).
    write_error_base_prob: float = 8.0e-5
    write_error_prone_boost: float = 3.0e-4
    write_error_wear_coef: float = 6.0e-4
    #: Erase-error probability scales with wear: p = base + coef * (P/E ÷
    #: limit); Table 2 shows erase errors as the only counter with
    #: noticeable P/E correlation (rho ~ 0.32).
    erase_error_base_prob: float = 1.0e-4
    erase_error_wear_coef: float = 1.2e-3
    #: Fraction of days with zero correctable errors (Table 1: ~0.2).
    correctable_zero_prob: float = 0.20
    #: Correctable bits corrected per read op (sets the count scale) and
    #: its per-drive/day lognormal sigmas.
    correctable_rate_per_read: float = 2.0e-6
    correctable_drive_sigma: float = 0.9
    correctable_daily_sigma: float = 0.7
    #: Poisson mean of factory bad blocks per drive.
    factory_bad_block_mean: float = 4.0
    #: Probability that a UE event retires (grows) a bad block.
    bad_block_per_ue_event: float = 0.05
    #: Probability that an erase error retires a bad block (drives the
    #: bad-block<->erase-error coupling of Table 2, rho ~ 0.38).
    bad_block_per_erase_error: float = 0.5
    #: Age coupling of the background UE rate: the daily probability is
    #: scaled by (ue_age_floor + (1 - ue_age_floor) * age / 6y), giving the
    #: positive drive-age<->UE correlation of Table 2 (rho ~ 0.36).
    ue_age_floor: float = 0.5
    #: Wear-driven background bad-block growth: Poisson mean per day at the
    #: P/E limit (scales linearly in P/E ÷ limit).
    bad_block_wear_rate: float = 6.0e-3


@dataclass(frozen=True)
class LifetimeParams:
    """Bathtub failure process (calibrated against Table 3, Figs 6, 8, 9).

    A drive may carry a manufacturing defect (infant mode): it then fails at
    a lognormal age concentrated inside the 90-day infancy window.  All
    drives are additionally exposed to a constant mature hazard; drives that
    return from repair get a hazard multiplier (this produces the repeated
    failures of Table 4).
    """

    #: Probability a (new) drive carries an infant defect.
    defect_prob: float = 0.030
    #: Lognormal (mu of days, sigma) of the defect failure age.
    defect_age_median: float = 25.0
    defect_age_sigma: float = 1.0
    #: Constant mature hazard per day.
    mature_hazard_per_day: float = 5.5e-5
    #: Mature-hazard multiplier per unit of the drive's error-proneness
    #: latent: lambda_eff = lambda * (1 + coef * proneness).  Couples
    #: failure to error incidence (Section 4.2: failed drives saw orders of
    #: magnitude more errors) without making errors deterministic triggers.
    prone_hazard_coef: float = 2.5
    #: Hazard multiplier after a drive returns from repair.
    post_repair_hazard_mult: float = 4.0
    #: Probability a post-repair period carries a (recurrent) defect.
    post_repair_defect_prob: float = 0.02


@dataclass(frozen=True)
class RepairParams:
    """Swap and repair pipeline (calibrated against Figs 4, 5; Table 5).

    The pre-swap non-operational period mixes a "prompt removal" component
    (80 % swapped within a week) with a rare "forgotten in the rack"
    component (~8 % linger past 100 days).  Repairs mix a small fast-shop
    component with a dominant multi-year component; roughly half of swapped
    drives never return within the trace.
    """

    #: Weight of the forgotten-drive component of the non-op period.
    nonop_forgotten_prob: float = 0.10
    #: Lognormal (median days, sigma) of the prompt component.
    nonop_prompt_median: float = 4.0
    nonop_prompt_sigma: float = 0.75
    #: Lognormal (median days, sigma) of the forgotten component.
    nonop_forgotten_median: float = 200.0
    nonop_forgotten_sigma: float = 0.8
    #: Probability the repair process ever completes (uncensored intent).
    return_prob: float = 0.62
    #: Weight of the fast-repair component among completing repairs.
    fast_repair_prob: float = 0.13
    #: Lognormal (median days, sigma) of fast repairs.
    fast_repair_median: float = 9.0
    fast_repair_sigma: float = 1.0
    #: Lognormal (median days, sigma) of slow repairs.
    slow_repair_median: float = 420.0
    slow_repair_sigma: float = 0.75
    #: Fraction of failures followed by an *inactive-but-reporting* stretch
    #: before records stop entirely (Section 3: ~36 % of swaps).
    inactive_records_prob: float = 0.36
    #: Geometric mean length (days) of that inactive reporting stretch.
    inactive_records_mean_days: float = 3.0


@dataclass(frozen=True)
class FailureSymptomParams:
    """Pre-failure telemetry signature (calibrated against Figs 10, 11, 16).

    Each failure is either *symptomatic* (emits an escalating error burst
    ahead of the failure day) or silent.  Young (defect) failures are less
    often UE-symptomatic but, when they are, burst orders of magnitude
    harder; silent failures bound achievable prediction accuracy (the paper:
    26 % of failures show no non-transparent errors and no bad blocks).
    """

    #: P(symptomatic) for infant-defect failures (Fig 10: 68 % of young
    #: failed drives have zero UEs).
    young_symptomatic_prob: float = 0.32
    #: P(symptomatic) for mature failures.
    old_symptomatic_prob: float = 0.30
    #: Burst-day probability at the failure day, and decay timescale (days):
    #: P(UE burst on day -d) = peak * exp(-d / tau).
    burst_peak_prob_young: float = 0.75
    burst_peak_prob_old: float = 0.50
    burst_decay_tau: float = 1.6
    #: Days before failure over which burst days may occur.
    burst_window_days: int = 14
    #: Lognormal (mu, sigma) of UE counts on burst days (young / old).
    burst_ue_mu_young: float = 9.0
    burst_ue_sigma_young: float = 2.3
    burst_ue_mu_old: float = 6.2
    burst_ue_sigma_old: float = 1.9
    #: Defective-from-birth elevation: young symptomatic drives multiply
    #: their background error-proneness by this factor for their whole
    #: (short) life, producing the heavy young tails of Fig 10.
    young_lifelong_error_boost: float = 30.0
    #: Bad blocks grown per burst day: Poisson means (young / old).
    burst_bad_block_mean_young: float = 14.0
    burst_bad_block_mean_old: float = 3.0
    #: Probability a UE-silent failure still announces itself through
    #: bad-block growth alone (failed blocks retired after erase/write
    #: problems that never surfaced as UEs).  Together with the UE-symptom
    #: probabilities this pins the fully-silent failure share near the
    #: paper's 26 %.
    bad_block_only_prob: float = 0.25
    #: Daily burst probability at the failure day for the bad-block-only
    #: channel (same exponential decay as UE bursts).
    bad_block_only_peak_prob: float = 0.55
    #: Poisson mean of blocks retired per bad-block-ramp day.
    bad_block_ramp_mean: float = 3.0
    #: Probability the drive flips to read-only mode in the last two days
    #: (symptomatic failures only).
    read_only_prob: float = 0.50
    #: Probability the dead flag is raised on the post-failure (limbo)
    #: reports.  The flag never appears on pre-failure rows: the paper's
    #: importance ranking (Fig 16) shows no usable dead-flag signal.
    dead_flag_prob: float = 0.50
    #: Probability the failure is preceded by a workload ramp-down
    #: (operators draining the drive), for symptomatic / silent failures.
    #: Jointly with the symptom probabilities this pins the fully-silent
    #: failure share near the paper's 26 %.
    activity_decline_prob_symptomatic: float = 0.85
    activity_decline_prob_silent: float = 0.70
    #: Scale applied to both decline probabilities for *mature* (wear-mode)
    #: failures: operators watch newly deployed drives more closely, so
    #: infant failures are drained ahead of the swap more reliably.  This
    #: asymmetry is what makes young failures more predictable (Fig 15).
    old_decline_prob_scale: float = 0.65
    #: Geometric mean length (days) of the ramp-down window.
    activity_decline_mean_days: float = 5.0
    #: Per-day multiplicative decline factor during the ramp-down.
    activity_decline_factor: float = 0.30


@dataclass(frozen=True)
class ObservationParams:
    """What subset of drive-days actually lands in the log (Figure 1).

    Reporting is Bernoulli-thinned with a per-drive rate, so the "data
    count" CDF sits left of the "max age" CDF as in the paper.  The failure
    day itself is recorded with high probability (it anchors the failure
    definition of Section 3).
    """

    #: Beta parameters of the per-drive daily recording probability
    #: (mean ~ 0.65, matching the Figure 1 data-count/max-age ratio).
    record_prob_alpha: float = 6.5
    record_prob_beta: float = 3.5
    #: Probability the failure day makes it into the log.
    record_failure_day_prob: float = 0.95


@dataclass(frozen=True)
class DriveModelSpec:
    """Everything that characterizes one drive model."""

    name: str
    capacity_gb: int = 480
    pe_cycle_limit: int = 3000
    workload: WorkloadParams = field(default_factory=WorkloadParams)
    errors: ErrorParams = field(default_factory=ErrorParams)
    lifetime: LifetimeParams = field(default_factory=LifetimeParams)
    repair: RepairParams = field(default_factory=RepairParams)
    symptoms: FailureSymptomParams = field(default_factory=FailureSymptomParams)
    observation: ObservationParams = field(default_factory=ObservationParams)


def _mlc_a() -> DriveModelSpec:
    # Table 3: 6.95 % failed; Table 5: slow, mostly-completing repairs.
    return DriveModelSpec(
        name="MLC-A",
        lifetime=LifetimeParams(
            defect_prob=0.020,
            mature_hazard_per_day=2.7e-5,
        ),
        repair=RepairParams(
            return_prob=0.72,
            fast_repair_prob=0.08,
            slow_repair_median=400.0,
        ),
        errors=ErrorParams(),
    )


def _mlc_b() -> DriveModelSpec:
    # Table 3: 14.3 % failed; Table 1: elevated write-error incidence
    # (1.3e-3 vs ~1.5e-4 for the other models); Table 5: fastest repairs
    # but lowest eventual return share.
    return DriveModelSpec(
        name="MLC-B",
        lifetime=LifetimeParams(
            defect_prob=0.038,
            mature_hazard_per_day=4.8e-5,
        ),
        repair=RepairParams(
            return_prob=0.50,
            fast_repair_prob=0.17,
            slow_repair_median=380.0,
        ),
        errors=replace(ErrorParams(), write_error_base_prob=1.2e-3),
    )


def _mlc_d() -> DriveModelSpec:
    # Table 3: 12.5 % failed; Table 5: highest eventual return share.
    return DriveModelSpec(
        name="MLC-D",
        lifetime=LifetimeParams(
            defect_prob=0.033,
            mature_hazard_per_day=4.2e-5,
        ),
        repair=RepairParams(
            return_prob=0.74,
            fast_repair_prob=0.11,
            slow_repair_median=380.0,
        ),
        errors=ErrorParams(),
    )


MLC_A: DriveModelSpec = _mlc_a()
MLC_B: DriveModelSpec = _mlc_b()
MLC_D: DriveModelSpec = _mlc_d()


def default_models() -> tuple[DriveModelSpec, ...]:
    """The paper's three drive models, in index order."""
    return (MLC_A, MLC_B, MLC_D)


@dataclass(frozen=True)
class FleetConfig:
    """Top-level fleet simulation parameters.

    Attributes
    ----------
    n_drives_per_model:
        Fleet size per drive model.
    horizon_days:
        Length of the observation window in days (the paper's trace spans
        six years ~ 2190 days).
    deploy_spread_days:
        Drives enter production uniformly over ``[0, deploy_spread_days]``;
        staggered deployment shapes the max-age CDF of Figure 1.
    seed:
        Root RNG seed; each drive derives an independent child stream, so
        results are reproducible and order-independent.
    """

    n_drives_per_model: int = 400
    horizon_days: int = 2190
    deploy_spread_days: int = 1400
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_drives_per_model < 1:
            raise ValueError("n_drives_per_model must be >= 1")
        if self.horizon_days < 30:
            raise ValueError("horizon_days must be >= 30")
        if not 0 <= self.deploy_spread_days < self.horizon_days:
            raise ValueError("deploy_spread_days must lie in [0, horizon_days)")


def small_fleet_config(seed: int = 0) -> FleetConfig:
    """A laptop-friendly fleet for tests and examples."""
    return FleetConfig(
        n_drives_per_model=80, horizon_days=720, deploy_spread_days=240, seed=seed
    )


def paper_scale_config(seed: int = 0) -> FleetConfig:
    """Parameters matching the paper's population shape (expensive)."""
    return FleetConfig(
        n_drives_per_model=10000, horizon_days=2190, deploy_spread_days=1400, seed=seed
    )
