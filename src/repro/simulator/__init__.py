"""Synthetic SSD fleet telemetry generator.

This package stands in for the proprietary Google trace the paper analyses
(see DESIGN.md §2 for the substitution argument).  It produces a daily
performance log and a swap/repair event log whose published statistics —
error incidence (Table 1), correlation structure (Table 2), failure
incidence (Tables 3–4), repair behaviour (Table 5, Figures 4–5), bathtub
hazard (Figure 6), workload ramp (Figure 7), wear profile (Figures 8–9),
error signatures of failing drives (Figures 10–11) — match the paper's.

Entry point: :func:`simulate_fleet`.
"""

from .config import (
    MLC_A,
    MLC_B,
    MLC_D,
    DriveModelSpec,
    ErrorParams,
    FailureSymptomParams,
    FleetConfig,
    LifetimeParams,
    ObservationParams,
    RepairParams,
    WorkloadParams,
    default_models,
    paper_scale_config,
    small_fleet_config,
)
from .drive import DriveResult, SwapEvent, simulate_drive
from .errors import ErrorLatents, PeriodErrors, generate_errors, sample_error_latents
from .fleet import FleetTrace, simulate_fleet
from .lifetime import FailureDraw, FailureMode, sample_failure
from .repair import (
    RepairOutcome,
    sample_inactive_stretch,
    sample_nonoperational_days,
    sample_repair,
)
from .symptoms import SymptomPlan, plan_symptoms
from .workload import (
    DailyWorkload,
    WorkloadLatents,
    generate_workload,
    intensity_profile,
    sample_workload_latents,
)

__all__ = [
    "MLC_A",
    "MLC_B",
    "MLC_D",
    "DriveModelSpec",
    "ErrorParams",
    "FailureSymptomParams",
    "FleetConfig",
    "LifetimeParams",
    "ObservationParams",
    "RepairParams",
    "WorkloadParams",
    "default_models",
    "paper_scale_config",
    "small_fleet_config",
    "DriveResult",
    "SwapEvent",
    "simulate_drive",
    "ErrorLatents",
    "PeriodErrors",
    "generate_errors",
    "sample_error_latents",
    "FleetTrace",
    "simulate_fleet",
    "FailureDraw",
    "FailureMode",
    "sample_failure",
    "RepairOutcome",
    "sample_inactive_stretch",
    "sample_nonoperational_days",
    "sample_repair",
    "SymptomPlan",
    "plan_symptoms",
    "DailyWorkload",
    "WorkloadLatents",
    "generate_workload",
    "intensity_profile",
    "sample_workload_latents",
]
