"""Daily workload generation for one drive.

Produces the read/write/erase operation counts and the resulting P/E-cycle
accrual for a span of drive ages, vectorized across days.  The intensity
profile is calibrated against Figure 7 of the paper: young drives are
provisioned *less* work (a rising ramp over the first ~10 months — the
paper's evidence against a burn-in period), a plateau follows, and very old
drives decay mildly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import WorkloadParams

__all__ = ["WorkloadLatents", "DailyWorkload", "sample_workload_latents", "generate_workload"]


@dataclass(frozen=True)
class WorkloadLatents:
    """Per-drive workload personality.

    Attributes
    ----------
    activity_scale:
        Lognormal multiplier on the fleet-median intensity; captures that
        some drives serve hot data and some cold.
    read_ratio:
        This drive's reads-per-write mix.
    """

    activity_scale: float
    read_ratio: float


@dataclass
class DailyWorkload:
    """Vectorized daily workload for a span of ages.

    ``pe_increment`` is the per-day P/E cycle accrual (erases per block);
    the cumulative P/E counter is integrated by the drive simulator so it
    carries across operational periods.
    """

    read_count: np.ndarray
    write_count: np.ndarray
    erase_count: np.ndarray
    pe_increment: np.ndarray


def sample_workload_latents(
    params: WorkloadParams, rng: np.random.Generator
) -> WorkloadLatents:
    """Draw the per-drive workload latents."""
    scale = float(np.exp(rng.normal(0.0, params.drive_scale_sigma)))
    # Mild per-drive variation of the read/write mix.
    ratio = params.read_write_ratio * float(np.exp(rng.normal(0.0, 0.25)))
    return WorkloadLatents(activity_scale=scale, read_ratio=ratio)


def intensity_profile(params: WorkloadParams, ages: np.ndarray) -> np.ndarray:
    """Deterministic age-dependent intensity multiplier (Figure 7 shape).

    Rises linearly from ``ramp_floor`` to 1.0 over ``ramp_days``, holds,
    then decays linearly toward ``decay_floor`` at six years.
    """
    ages = np.asarray(ages, dtype=np.float64)
    # In-place sequences below mirror the allocating expressions op for op
    # (commutative reorderings only), so results stay bit-identical.
    ramp = ages / max(params.ramp_days, 1)
    np.minimum(ramp, 1.0, out=ramp)
    np.multiply(ramp, 1.0 - params.ramp_floor, out=ramp)
    np.add(ramp, params.ramp_floor, out=ramp)
    six_years = 2190.0
    decay_span = max(six_years - params.decay_start_days, 1.0)
    decay = ages - params.decay_start_days
    np.divide(decay, decay_span, out=decay)
    np.maximum(decay, 0.0, out=decay)
    np.multiply(decay, 1.0 - params.decay_floor, out=decay)
    np.subtract(1.0, decay, out=decay)
    np.minimum(decay, 1.0, out=decay)
    np.multiply(ramp, decay, out=ramp)
    return ramp


def generate_workload(
    params: WorkloadParams,
    latents: WorkloadLatents,
    ages: np.ndarray,
    rng: np.random.Generator,
) -> DailyWorkload:
    """Generate one drive's daily workload over ``ages`` (1-D, days).

    Counts are continuous (operation counts in the 1e7–1e8 range are stored
    as floats, as in the trace schema); idle days are exactly zero.
    """
    ages = np.asarray(ages, dtype=np.float64)
    n = ages.shape[0]
    # The in-place sequences mirror the original allocating expressions op
    # for op (commutative reorderings only): results are bit-identical.
    writes = intensity_profile(params, ages)
    np.multiply(
        writes,
        params.base_writes_per_day * latents.activity_scale,
        out=writes,
    )
    jitter = rng.normal(0.0, params.daily_sigma, size=n)
    np.exp(jitter, out=jitter)
    np.multiply(writes, jitter, out=writes)
    read_jitter = rng.normal(0.0, params.daily_sigma, size=n)
    np.exp(read_jitter, out=read_jitter)
    reads = writes * latents.read_ratio
    np.multiply(reads, read_jitter, out=reads)
    np.maximum(jitter, 1e-12, out=jitter)
    np.divide(reads, jitter, out=reads)
    # Spontaneous idle days: the drive is powered but unprovisioned.
    idle = rng.random(n) < params.idle_day_prob
    writes[idle] = 0.0
    reads[idle] = 0.0
    erases = writes / params.pages_per_block
    pe_inc = erases / params.blocks_per_drive
    np.round(reads, out=reads)
    np.round(writes, out=writes)
    return DailyWorkload(
        read_count=reads,
        write_count=writes,
        erase_count=np.round(erases),
        pe_increment=pe_inc,
    )
