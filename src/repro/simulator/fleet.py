"""Fleet-level simulation: many drives, three models, one trace.

:func:`simulate_fleet` is the main entry point of the simulator.  It runs
every drive independently (each on its own spawned RNG stream, so results
are reproducible and independent of iteration order) and assembles the two
data products the paper's analyses consume:

- the **daily performance log** (:class:`~repro.data.DriveDayDataset`), and
- the **swap log** (:class:`~repro.data.SwapLog`) plus drive metadata
  (:class:`~repro.data.DriveTable`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import DriveDayDataset, DriveTable, SwapLog
from ..obs import metrics, tracing
from .config import DriveModelSpec, FleetConfig, default_models
from .drive import DriveResult, simulate_drive

__all__ = ["FleetTrace", "simulate_fleet"]


@dataclass
class FleetTrace:
    """The complete synthetic trace: telemetry, drive metadata, swap log."""

    records: DriveDayDataset
    drives: DriveTable
    swaps: SwapLog
    config: FleetConfig

    def summary(self) -> str:
        """One-paragraph human-readable description of the trace."""
        n_dr = len(self.drives)
        n_sw = len(self.swaps)
        failed = len(np.unique(self.swaps.drive_id)) if n_sw else 0
        return (
            f"FleetTrace: {n_dr} drives, {len(self.records)} drive-day records, "
            f"{n_sw} swap events over {failed} distinct failed drives "
            f"({100.0 * failed / max(n_dr, 1):.2f}% of fleet), horizon "
            f"{self.config.horizon_days} days."
        )


def simulate_fleet(
    config: FleetConfig | None = None,
    models: tuple[DriveModelSpec, ...] | None = None,
) -> FleetTrace:
    """Simulate the whole fleet described by ``config``.

    Parameters
    ----------
    config:
        Fleet parameters (defaults to :class:`FleetConfig`'s defaults).
    models:
        Drive-model specs, in model-index order (defaults to the paper's
        MLC-A / MLC-B / MLC-D presets).
    """
    config = config or FleetConfig()
    models = models or default_models()

    root = np.random.SeedSequence(config.seed)
    n_total = config.n_drives_per_model * len(models)
    children = root.spawn(n_total + 1)
    deploy_rng = np.random.default_rng(children[-1])

    results: list[DriveResult] = []
    drive_id = 0
    for model_index, spec in enumerate(models):
        # Span granularity is per model group, not per drive: the hot loop
        # stays uninstrumented inside (benchmarks/test_obs_overhead.py
        # holds the enabled-vs-disabled delta under 5%).
        with tracing.span(
            "repro.simulator.model", n_drives=config.n_drives_per_model
        ) as sp:
            rows = 0
            for _ in range(config.n_drives_per_model):
                deploy_day = (
                    int(deploy_rng.integers(0, config.deploy_spread_days + 1))
                    if config.deploy_spread_days
                    else 0
                )
                rng = np.random.default_rng(children[drive_id])
                results.append(
                    simulate_drive(
                        drive_id=drive_id,
                        model_index=model_index,
                        spec=spec,
                        deploy_day=deploy_day,
                        horizon_days=config.horizon_days,
                        rng=rng,
                    )
                )
                rows += results[-1].records["age_days"].shape[0]
                drive_id += 1
            sp.set(model=model_index, rows_out=rows)
        metrics.inc(
            "repro_drives_simulated_total",
            config.n_drives_per_model,
            help="Drives simulated",
        )

    return _assemble(results, config)


def _assemble(results: list[DriveResult], config: FleetConfig) -> FleetTrace:
    """Concatenate per-drive outputs into the fleet-level data products."""
    with tracing.span("repro.simulator.assemble", n_drives=len(results)) as sp:
        trace = _assemble_inner(results, config)
        sp.set(rows_out=len(trace.records))
    return trace


def _assemble_inner(results: list[DriveResult], config: FleetConfig) -> FleetTrace:
    # --- telemetry records ------------------------------------------------
    col_chunks: dict[str, list[np.ndarray]] = {}
    id_chunks: list[np.ndarray] = []
    model_chunks: list[np.ndarray] = []
    calendar_chunks: list[np.ndarray] = []
    for res in results:
        n = res.records["age_days"].shape[0]
        if n == 0:
            continue
        id_chunks.append(np.full(n, res.drive_id, dtype=np.int32))
        model_chunks.append(np.full(n, res.model, dtype=np.int8))
        calendar_chunks.append(
            (res.records["age_days"] + res.deploy_day).astype(np.int32)
        )
        for name, arr in res.records.items():
            col_chunks.setdefault(name, []).append(arr)

    if id_chunks:
        columns: dict[str, np.ndarray] = {
            "drive_id": np.concatenate(id_chunks),
            "model": np.concatenate(model_chunks),
            "calendar_day": np.concatenate(calendar_chunks),
        }
        for name, chunks in col_chunks.items():
            columns[name] = np.concatenate(chunks)
        records = DriveDayDataset(columns, check_sorted=False)
    else:
        records = DriveDayDataset.empty()

    # --- drive table --------------------------------------------------------
    drives = DriveTable(
        drive_id=np.array([r.drive_id for r in results]),
        model=np.array([r.model for r in results]),
        deploy_day=np.array([r.deploy_day for r in results]),
        end_of_observation_age=np.array(
            [r.end_of_observation_age for r in results]
        ),
    )

    # --- swap log -------------------------------------------------------------
    sw_drive, sw_model, sw_fail, sw_swap, sw_re, sw_start, sw_mode = (
        [],
        [],
        [],
        [],
        [],
        [],
        [],
    )
    for res in results:
        for ev in res.swaps:
            sw_drive.append(res.drive_id)
            sw_model.append(res.model)
            sw_fail.append(ev.failure_age)
            sw_swap.append(ev.swap_age)
            sw_re.append(ev.reentry_age)
            sw_start.append(ev.operational_start_age)
            sw_mode.append(int(ev.mode))
    swaps = SwapLog(
        drive_id=np.array(sw_drive, dtype=np.int32),
        model=np.array(sw_model, dtype=np.int8),
        failure_age=np.array(sw_fail, dtype=np.float64),
        swap_age=np.array(sw_swap, dtype=np.float64),
        reentry_age=np.array(sw_re, dtype=np.float64),
        operational_start_age=np.array(sw_start, dtype=np.float64),
        failure_mode=np.array(sw_mode, dtype=np.int8),
    )
    return FleetTrace(records=records, drives=drives, swaps=swaps, config=config)
