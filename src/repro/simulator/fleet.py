"""Fleet-level simulation: many drives, three models, one trace.

:func:`simulate_fleet` is the main entry point of the simulator.  It runs
every drive independently (each on its own spawned RNG stream, so results
are reproducible and independent of iteration order) and assembles the two
data products the paper's analyses consume:

- the **daily performance log** (:class:`~repro.data.DriveDayDataset`), and
- the **swap log** (:class:`~repro.data.SwapLog`) plus drive metadata
  (:class:`~repro.data.DriveTable`).

Because each drive owns a pre-spawned :class:`numpy.random.SeedSequence`
child, the fleet can be sharded across worker processes
(``simulate_fleet(config, workers=N)``) with byte-identical output for
any ``N`` — scheduling never touches a random stream.  See DESIGN.md §11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import DriveDayDataset, DriveTable, SwapLog, concat_datasets
from ..data.fields import FIELD_DTYPES
from ..obs import metrics, tracing
from ..parallel import iter_tasks, resolve_workers, shard_ranges
from .config import DriveModelSpec, FleetConfig, default_models
from .drive import _RECORD_COLUMNS, DriveResult, simulate_drive

__all__ = ["FleetTrace", "simulate_fleet", "concat_traces"]


@dataclass
class FleetTrace:
    """The complete synthetic trace: telemetry, drive metadata, swap log."""

    records: DriveDayDataset
    drives: DriveTable
    swaps: SwapLog
    config: FleetConfig

    def summary(self) -> str:
        """One-paragraph human-readable description of the trace."""
        n_dr = len(self.drives)
        n_sw = len(self.swaps)
        failed = len(np.unique(self.swaps.drive_id)) if n_sw else 0
        return (
            f"FleetTrace: {n_dr} drives, {len(self.records)} drive-day records, "
            f"{n_sw} swap events over {failed} distinct failed drives "
            f"({100.0 * failed / max(n_dr, 1):.2f}% of fleet), horizon "
            f"{self.config.horizon_days} days."
        )


def _seed_plan(
    config: FleetConfig, n_total: int
) -> tuple[list[np.random.SeedSequence], list[int]]:
    """Spawn the fleet's RNG streams and draw every deploy day upfront.

    One seed child per drive plus a trailing deployment stream; deploy
    days are drawn sequentially in global drive order from that dedicated
    stream, so precomputing them here is stream-for-stream identical to
    drawing them lazily inside the simulation loop.  Both the serial and
    the sharded paths (and :func:`repro.reliability.simulate_fleet_resumable`)
    consume this one plan — the root of the any-N bit-identity guarantee.
    """
    root = np.random.SeedSequence(config.seed)
    children = root.spawn(n_total + 1)
    deploy_rng = np.random.default_rng(children[-1])
    deploy_days = [
        int(deploy_rng.integers(0, config.deploy_spread_days + 1))
        if config.deploy_spread_days
        else 0
        for _ in range(n_total)
    ]
    return children[:n_total], deploy_days


def simulate_fleet(
    config: FleetConfig | None = None,
    models: tuple[DriveModelSpec, ...] | None = None,
    workers: int | None = None,
    policy: object | None = None,
    supervision: object | None = None,
) -> FleetTrace:
    """Simulate the whole fleet described by ``config``.

    Parameters
    ----------
    config:
        Fleet parameters (defaults to :class:`FleetConfig`'s defaults).
    models:
        Drive-model specs, in model-index order (defaults to the paper's
        MLC-A / MLC-B / MLC-D presets).
    workers:
        Worker processes to shard drives across; ``None`` resolves to
        ``$REPRO_WORKERS`` or 1 (serial).  The trace is byte-identical
        for every value.
    policy, supervision:
        A :class:`repro.resilience.SupervisorPolicy` adds deadlines and
        deterministic retries to the sharded path.  Quarantine is forced
        off here (shards concatenate into one trace — a missing shard
        would be silent corruption); use
        :func:`repro.reliability.simulate_fleet_resumable` for runs that
        must survive poison tasks.
    """
    config = config or FleetConfig()
    models = models or default_models()
    n_total = config.n_drives_per_model * len(models)
    workers = resolve_workers(workers)
    if workers > 1 and n_total > 1:
        return _simulate_fleet_parallel(
            config, models, workers, policy=policy, supervision=supervision
        )

    seeds, deploy_days = _seed_plan(config, n_total)
    results: list[DriveResult] = []
    drive_id = 0
    for model_index, spec in enumerate(models):
        # Span granularity is per model group, not per drive: the hot loop
        # stays uninstrumented inside (benchmarks/test_obs_overhead.py
        # holds the enabled-vs-disabled delta under 5%).
        with tracing.span(
            "repro.simulator.model", n_drives=config.n_drives_per_model
        ) as sp:
            rows = 0
            for _ in range(config.n_drives_per_model):
                rng = np.random.default_rng(seeds[drive_id])
                results.append(
                    simulate_drive(
                        drive_id=drive_id,
                        model_index=model_index,
                        spec=spec,
                        deploy_day=deploy_days[drive_id],
                        horizon_days=config.horizon_days,
                        rng=rng,
                    )
                )
                rows += results[-1].records["age_days"].shape[0]
                drive_id += 1
            sp.set(model=model_index, rows_out=rows)
        metrics.inc(
            "repro_drives_simulated_total",
            config.n_drives_per_model,
            help="Drives simulated",
        )

    return _assemble(results, config)


# --------------------------------------------------------------------------
# sharded execution
# --------------------------------------------------------------------------


def _simulate_shard(task: tuple) -> FleetTrace:
    """Pool task: simulate one contiguous drive range into a partial trace."""
    config, models, lo, hi, seeds, deploy_days = task
    with tracing.span("repro.simulator.shard", n_drives=hi - lo) as sp:
        results = []
        for drive_id in range(lo, hi):
            model_index = drive_id // config.n_drives_per_model
            results.append(
                simulate_drive(
                    drive_id=drive_id,
                    model_index=model_index,
                    spec=models[model_index],
                    deploy_day=deploy_days[drive_id - lo],
                    horizon_days=config.horizon_days,
                    rng=np.random.default_rng(seeds[drive_id - lo]),
                )
            )
        part = _assemble(results, config)
        sp.set(shard_lo=lo, rows_out=len(part.records))
    metrics.inc("repro_drives_simulated_total", hi - lo, help="Drives simulated")
    return part


def _simulate_fleet_parallel(
    config: FleetConfig,
    models: tuple[DriveModelSpec, ...],
    workers: int,
    policy: object | None = None,
    supervision: object | None = None,
) -> FleetTrace:
    n_total = config.n_drives_per_model * len(models)
    seeds, deploy_days = _seed_plan(config, n_total)
    tasks = [
        (config, models, lo, hi, seeds[lo:hi], deploy_days[lo:hi])
        for lo, hi in shard_ranges(n_total, workers)
    ]
    if policy is not None:
        # Shards concatenate into one trace; a quarantined hole would be
        # silent data loss, so poison must raise here.
        from ..resilience.supervisor import force_fail

        policy = force_fail(policy)
    parts = [
        part
        for _, part in iter_tasks(
            _simulate_shard,
            tasks,
            workers=workers,
            label="repro.simulator",
            policy=policy,
            supervision=supervision,
        )
    ]
    return concat_traces(parts, config)


def concat_traces(parts: list[FleetTrace], config: FleetConfig) -> FleetTrace:
    """Concatenate partial traces in drive order (parts are disjoint)."""
    records = concat_datasets([p.records for p in parts if len(p.records)])
    if not any(len(p.records) for p in parts):
        records = DriveDayDataset.empty()
    drives = DriveTable(
        drive_id=np.concatenate([p.drives.drive_id for p in parts]),
        model=np.concatenate([p.drives.model for p in parts]),
        deploy_day=np.concatenate([p.drives.deploy_day for p in parts]),
        end_of_observation_age=np.concatenate(
            [p.drives.end_of_observation_age for p in parts]
        ),
    )
    swaps = SwapLog(
        drive_id=np.concatenate([p.swaps.drive_id for p in parts]),
        model=np.concatenate([p.swaps.model for p in parts]),
        failure_age=np.concatenate([p.swaps.failure_age for p in parts]),
        swap_age=np.concatenate([p.swaps.swap_age for p in parts]),
        reentry_age=np.concatenate([p.swaps.reentry_age for p in parts]),
        operational_start_age=np.concatenate(
            [p.swaps.operational_start_age for p in parts]
        ),
        failure_mode=np.concatenate([p.swaps.failure_mode for p in parts]),
    )
    return FleetTrace(records=records, drives=drives, swaps=swaps, config=config)


# --------------------------------------------------------------------------
# assembly
# --------------------------------------------------------------------------


def _assemble(results: list[DriveResult], config: FleetConfig) -> FleetTrace:
    """Concatenate per-drive outputs into the fleet-level data products."""
    with tracing.span("repro.simulator.assemble", n_drives=len(results)) as sp:
        trace = _assemble_inner(results, config)
        sp.set(rows_out=len(trace.records))
    return trace


def _assemble_inner(results: list[DriveResult], config: FleetConfig) -> FleetTrace:
    # --- telemetry records ------------------------------------------------
    # Columns are preallocated at their registry storage dtypes and filled
    # one drive-slice at a time — no per-drive intermediate arrays and no
    # post-hoc casting pass in the dataset constructor.
    sizes = [res.records["age_days"].shape[0] for res in results]
    n_total = sum(sizes)
    if n_total:
        columns: dict[str, np.ndarray] = {
            "drive_id": np.empty(n_total, dtype=np.int32),
            "model": np.empty(n_total, dtype=np.int8),
            "calendar_day": np.empty(n_total, dtype=np.int32),
        }
        for name in _RECORD_COLUMNS:
            columns[name] = np.empty(n_total, dtype=FIELD_DTYPES[name])
        pos = 0
        for res, n in zip(results, sizes):
            if n == 0:
                continue
            end = pos + n
            columns["drive_id"][pos:end] = res.drive_id
            columns["model"][pos:end] = res.model
            columns["calendar_day"][pos:end] = (
                res.records["age_days"] + res.deploy_day
            )
            for name in _RECORD_COLUMNS:
                columns[name][pos:end] = res.records[name]
            pos = end
        records = DriveDayDataset(columns, check_sorted=False)
    else:
        records = DriveDayDataset.empty()

    # --- drive table --------------------------------------------------------
    drives = DriveTable(
        drive_id=np.array([r.drive_id for r in results]),
        model=np.array([r.model for r in results]),
        deploy_day=np.array([r.deploy_day for r in results]),
        end_of_observation_age=np.array(
            [r.end_of_observation_age for r in results]
        ),
    )

    # --- swap log -------------------------------------------------------------
    # Preallocated columns filled one drive-slice at a time (a drive has
    # at most a handful of swaps, the fleet has thousands).
    n_swaps = sum(len(r.swaps) for r in results)
    sw_drive = np.empty(n_swaps, dtype=np.int32)
    sw_model = np.empty(n_swaps, dtype=np.int8)
    sw_fail = np.empty(n_swaps, dtype=np.float64)
    sw_swap = np.empty(n_swaps, dtype=np.float64)
    sw_re = np.empty(n_swaps, dtype=np.float64)
    sw_start = np.empty(n_swaps, dtype=np.float64)
    sw_mode = np.empty(n_swaps, dtype=np.int8)
    pos = 0
    for res in results:
        k = len(res.swaps)
        if k == 0:
            continue
        end = pos + k
        sw_drive[pos:end] = res.drive_id
        sw_model[pos:end] = res.model
        sw_fail[pos:end] = [ev.failure_age for ev in res.swaps]
        sw_swap[pos:end] = [ev.swap_age for ev in res.swaps]
        sw_re[pos:end] = [ev.reentry_age for ev in res.swaps]
        sw_start[pos:end] = [ev.operational_start_age for ev in res.swaps]
        sw_mode[pos:end] = [int(ev.mode) for ev in res.swaps]
        pos = end
    swaps = SwapLog(
        drive_id=sw_drive,
        model=sw_model,
        failure_age=sw_fail,
        swap_age=sw_swap,
        reentry_age=sw_re,
        operational_start_age=sw_start,
        failure_mode=sw_mode,
    )
    return FleetTrace(records=records, drives=drives, swaps=swaps, config=config)
