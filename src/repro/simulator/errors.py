"""Error-counter generation for one drive's operational period.

All ten error types of the trace schema (Section 2 of the paper) are
generated here, vectorized across the period's days, from three inputs: the
drive's latent error personality, its daily workload/wear, and the symptom
plan of an impending failure (if any).

The generative structure is chosen so the *published* statistics emerge:

- Non-transparent errors concentrate on an error-prone minority of drives
  (Table 1 incidence vs. Figure 10 zero-UE shares).
- Uncorrectable and final read errors share events (Table 2: rho ~ 0.97).
- Response and timeout errors share "controller glitch" days (rho ~ 0.53).
- Erase errors scale with P/E wear — the only counter that does (rho ~ 0.32).
- Bad blocks grow from UE events plus a wear-driven trickle, tying them to
  erase/final-read/UE counters (Table 2, bad-block row).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import ErrorParams, FailureSymptomParams
from .symptoms import SymptomPlan

__all__ = ["ErrorLatents", "PeriodErrors", "sample_error_latents", "generate_errors"]

#: Cap on the number of UE events that can each independently retire a
#: block on one day (keeps bad-block growth physical during huge bursts).
_UE_BB_CAP = 2000


@dataclass(frozen=True)
class ErrorLatents:
    """Per-drive latent error personality.

    Attributes
    ----------
    error_proneness:
        0 for clean drives; Gamma-distributed for the error-prone minority.
        Scales all non-transparent background error probabilities.
    glitch_factor:
        Multiplier on controller-glitch (response/timeout) probability.
    correctable_factor:
        Per-drive level of correctable-bits-per-read.
    factory_bad_blocks:
        Blocks dead on arrival.
    """

    error_proneness: float
    glitch_factor: float
    correctable_factor: float
    factory_bad_blocks: int


def sample_error_latents(
    params: ErrorParams, rng: np.random.Generator
) -> ErrorLatents:
    """Draw the per-drive error latents."""
    if rng.random() < params.error_prone_prob:
        prone = float(
            rng.gamma(params.error_prone_shape, 1.0 / params.error_prone_shape)
        )
    else:
        prone = 0.0
    glitch = float(np.exp(rng.normal(0.0, 1.0)))
    corr = float(np.exp(rng.normal(0.0, params.correctable_drive_sigma)))
    factory = int(rng.poisson(params.factory_bad_block_mean))
    return ErrorLatents(
        error_proneness=prone,
        glitch_factor=glitch,
        correctable_factor=corr,
        factory_bad_blocks=factory,
    )


@dataclass
class PeriodErrors:
    """Daily error counters plus bad-block growth for one period."""

    correctable_error: np.ndarray
    erase_error: np.ndarray
    final_read_error: np.ndarray
    final_write_error: np.ndarray
    meta_error: np.ndarray
    read_error: np.ndarray
    response_error: np.ndarray
    timeout_error: np.ndarray
    uncorrectable_error: np.ndarray
    write_error: np.ndarray
    grown_bad_block_increment: np.ndarray

    def as_dict(self) -> dict[str, np.ndarray]:
        return {
            "correctable_error": self.correctable_error,
            "erase_error": self.erase_error,
            "final_read_error": self.final_read_error,
            "final_write_error": self.final_write_error,
            "meta_error": self.meta_error,
            "read_error": self.read_error,
            "response_error": self.response_error,
            "timeout_error": self.timeout_error,
            "uncorrectable_error": self.uncorrectable_error,
            "write_error": self.write_error,
        }


def _count_where(
    mask: np.ndarray, mu: float, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Lognormal event counts (>= 1) on masked days, zeros elsewhere."""
    out = np.zeros(mask.shape[0], dtype=np.int64)
    k = int(np.count_nonzero(mask))
    if k:
        counts = np.maximum(np.rint(np.exp(rng.normal(mu, sigma, size=k))), 1.0)
        out[mask] = counts.astype(np.int64)
    return out


def generate_errors(
    params: ErrorParams,
    symptom_params: FailureSymptomParams,
    latents: ErrorLatents,
    plan: SymptomPlan,
    *,
    ages: np.ndarray,
    reads: np.ndarray,
    writes: np.ndarray,
    erases: np.ndarray,
    pe_cycles: np.ndarray,
    pe_limit: int,
    rng: np.random.Generator,
) -> PeriodErrors:
    """Generate all error counters for one operational period.

    Parameters
    ----------
    ages:
        Drive age (days) on each day of the period (length ``n``).
    reads, writes, erases:
        Daily workload of the period (length ``n``); the last entry is the
        failure day when the period ends in a failure.
    pe_cycles:
        Cumulative P/E cycle count per day (length ``n``).
    pe_limit:
        The model's rated P/E endurance (3000 for these models).
    plan:
        Symptom plan (``SymptomPlan.none()`` for censored periods).
    """
    n = reads.shape[0]
    active = (reads + writes) > 0

    # Defective-from-birth drives are noisy regardless of their background
    # personality: the boost applies to a floored proneness so clean drives
    # (proneness 0) still scream when they carry a symptomatic defect.
    if plan.lifelong_boost > 1.0:
        prone = max(latents.error_proneness, 0.5) * plan.lifelong_boost
    else:
        prone = latents.error_proneness
    # In-place ops below reuse buffers but keep the exact op sequences (and
    # therefore bit-identical results) of the allocating originals.
    wear = pe_cycles / pe_limit
    np.maximum(wear, 0.0, out=wear)
    np.minimum(wear, 4.0, out=wear)

    # --- uncorrectable + final read (shared events) ---------------------
    p_ue = ages / 2190.0
    np.minimum(p_ue, 1.5, out=p_ue)
    np.multiply(p_ue, 1.0 - params.ue_age_floor, out=p_ue)
    np.add(p_ue, params.ue_age_floor, out=p_ue)
    np.multiply(p_ue, params.ue_daily_prob * prone, out=p_ue)
    np.minimum(p_ue, 0.6, out=p_ue)
    ue_day = rng.random(n) < p_ue
    ue_day &= active
    ue = _count_where(ue_day, params.ue_count_mu, params.ue_count_sigma, rng)

    # Burst days injected by the symptom plan (offsets count back from the
    # period's final day).
    if plan.burst_offsets.size:
        idx = n - 1 - plan.burst_offsets
        idx = idx[idx >= 0]
        if idx.size:
            mu = (
                symptom_params.burst_ue_mu_young
                if plan.young
                else symptom_params.burst_ue_mu_old
            )
            sigma = (
                symptom_params.burst_ue_sigma_young
                if plan.young
                else symptom_params.burst_ue_sigma_old
            )
            burst = np.maximum(
                np.rint(np.exp(rng.normal(mu, sigma, size=idx.size))), 1.0
            ).astype(np.int64)
            ue[idx] += burst

    final_read = rng.binomial(np.minimum(ue, 10_000), params.final_read_given_ue)
    # Rare final reads without a same-day UE (distinct root causes exist).
    stray_fr = rng.random(n) < 6.0e-5 * (1.0 + prone)
    stray_fr &= active
    np.add(final_read, stray_fr, out=final_read)

    # --- other non-transparent errors -----------------------------------
    fw_day = rng.random(n) < params.final_write_daily_prob * min(prone, 5.0)
    fw_day &= active
    final_write = _count_where(fw_day, 0.2, 0.8, rng)

    meta_day = rng.random(n) < params.meta_daily_prob * min(prone, 5.0)
    meta_day &= active
    meta = _count_where(meta_day, 0.1, 0.7, rng)

    glitch_day = rng.random(n) < min(
        params.glitch_daily_prob * latents.glitch_factor * (1.0 + 0.5 * prone), 0.05
    )
    timeout_day = rng.random(n) < params.timeout_given_glitch
    timeout_day &= glitch_day
    response_day = rng.random(n) < params.response_given_glitch
    response_day &= glitch_day
    timeout = _count_where(timeout_day, 0.2, 0.7, rng)
    response = _count_where(response_day, 0.1, 0.6, rng)

    # --- transparent errors ----------------------------------------------
    p_read_err = params.read_error_base_prob + params.read_error_prone_boost * prone
    read_day = rng.random(n) < min(p_read_err, 0.3)
    read_day &= active
    read_err = _count_where(read_day, 0.4, 0.9, rng)

    p_write = wear * params.write_error_wear_coef
    np.add(
        p_write,
        params.write_error_base_prob + params.write_error_prone_boost * prone,
        out=p_write,
    )
    np.minimum(p_write, 0.3, out=p_write)
    write_day = rng.random(n) < p_write
    write_day &= active
    write_err = _count_where(write_day, 0.4, 0.9, rng)

    p_erase = wear * params.erase_error_wear_coef
    np.multiply(p_erase, 1.0 + 0.3 * prone, out=p_erase)
    np.add(p_erase, params.erase_error_base_prob, out=p_erase)
    np.minimum(p_erase, 0.3, out=p_erase)
    erase_day = rng.random(n) < p_erase
    erase_day &= erases > 0
    erase_err = _count_where(erase_day, 0.3, 0.8, rng)

    # --- correctable errors (bits corrected during reads) ----------------
    lam = reads * params.correctable_rate_per_read
    np.multiply(lam, latents.correctable_factor, out=lam)
    jitter = rng.normal(0.0, params.correctable_daily_sigma, size=n)
    np.exp(jitter, out=jitter)
    np.multiply(lam, jitter, out=lam)
    np.rint(lam, out=lam)
    correctable = lam.astype(np.int64)
    zero_day = rng.random(n) < params.correctable_zero_prob
    zero_day |= ~active
    correctable[zero_day] = 0

    # --- bad-block growth -------------------------------------------------
    grown = rng.binomial(np.minimum(ue, _UE_BB_CAP), params.bad_block_per_ue_event)
    bb_from_erase = rng.binomial(erase_err, params.bad_block_per_erase_error)
    bb_rate = np.minimum(wear, 2.0)
    np.multiply(bb_rate, params.bad_block_wear_rate, out=bb_rate)
    bb_wear = rng.poisson(bb_rate, size=n)
    np.add(grown, bb_from_erase, out=grown)
    np.add(grown, bb_wear, out=grown)
    if plan.bad_block_offsets.size:
        idx = n - 1 - plan.bad_block_offsets
        idx = idx[idx >= 0]
        if idx.size:
            if plan.symptomatic:
                mean_bb = (
                    symptom_params.burst_bad_block_mean_young
                    if plan.young
                    else symptom_params.burst_bad_block_mean_old
                )
            else:
                mean_bb = symptom_params.bad_block_ramp_mean
            grown[idx] += 1 + rng.poisson(mean_bb, size=idx.size)

    return PeriodErrors(
        correctable_error=correctable,
        erase_error=erase_err,
        final_read_error=final_read,
        final_write_error=final_write,
        meta_error=meta,
        read_error=read_err,
        response_error=response,
        timeout_error=timeout,
        uncorrectable_error=ue,
        write_error=write_err,
        grown_bad_block_increment=grown,
    )
