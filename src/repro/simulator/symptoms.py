"""Pre-failure symptom planning.

When an operational period ends in a failure, this module decides *how* the
failure announces itself in telemetry — or whether it stays silent.  The
plan is consumed both by the error generator (UE/bad-block bursts) and by
the drive simulator (read-only flag, dead flag, workload ramp-down).

Calibration targets: Figure 10 (zero-UE shares among young/old failures),
Figure 11 (burst probability concentrated in the last two days; young burst
magnitudes orders of magnitude above old), Observation 9 (a substantial
fraction of failures is entirely silent) and Figure 16 (activity features
matter because drives are often drained before the swap).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import FailureSymptomParams
from .lifetime import FailureMode

__all__ = ["SymptomPlan", "plan_symptoms"]


@dataclass(frozen=True)
class SymptomPlan:
    """Concrete pre-failure schedule for one failing operational period.

    All day indices are offsets *before* the failure day: offset 0 is the
    failure day itself, offset 1 the day before, and so on.

    Attributes
    ----------
    symptomatic:
        Whether the failure emits an error burst at all.
    young:
        Whether the underlying mechanism is an infant defect.
    burst_offsets:
        Offsets (0-based, before failure) on which UE bursts fire.
    bad_block_offsets:
        Offsets on which extra bad blocks are retired; equals
        ``burst_offsets`` for UE-symptomatic failures, or an independent
        schedule for the bad-block-only channel.
    lifelong_boost:
        Multiplier applied to the drive's background error-proneness for
        the whole period (defective-from-birth drives are noisy from day
        one — this produces the heavy young tails of Figure 10).
    read_only_from_offset:
        Offset at which the drive flips to read-only mode (``None`` if it
        never does); the flag stays on through the failure day.
    dead_flag:
        Whether the dead status flag is raised on the post-failure limbo
        reports (never on operational rows — see ``drive.py``).
    decline_days:
        Length of the pre-failure workload ramp-down window (0 = none).
    decline_factor:
        Per-day multiplicative workload decay inside that window.
    """

    symptomatic: bool
    young: bool
    burst_offsets: np.ndarray
    bad_block_offsets: np.ndarray
    lifelong_boost: float
    read_only_from_offset: int | None
    dead_flag: bool
    decline_days: int
    decline_factor: float

    @staticmethod
    def none() -> "SymptomPlan":
        """A plan for a censored (non-failing) period: no symptoms at all."""
        return SymptomPlan(
            symptomatic=False,
            young=False,
            burst_offsets=np.empty(0, dtype=np.int64),
            bad_block_offsets=np.empty(0, dtype=np.int64),
            lifelong_boost=1.0,
            read_only_from_offset=None,
            dead_flag=False,
            decline_days=0,
            decline_factor=1.0,
        )


def plan_symptoms(
    params: FailureSymptomParams,
    mode: FailureMode,
    period_len: int,
    rng: np.random.Generator,
) -> SymptomPlan:
    """Draw the symptom plan for a period that ends in a failure.

    Parameters
    ----------
    params:
        Symptom parameters of the drive model.
    mode:
        Which latent mechanism caused the failure (defect => "young"
        symptom profile, wear => "old").
    period_len:
        Number of days in the operational period (including the failure
        day); bursts never extend before the period start.
    rng:
        Drive-local random stream.
    """
    if mode == FailureMode.NONE:
        return SymptomPlan.none()

    young = mode == FailureMode.DEFECT
    p_sympt = (
        params.young_symptomatic_prob if young else params.old_symptomatic_prob
    )
    symptomatic = bool(rng.random() < p_sympt)

    burst_offsets = np.empty(0, dtype=np.int64)
    lifelong_boost = 1.0
    read_only_from: int | None = None
    # Any failed drive may report itself dead while sitting in limbo.
    dead_flag = bool(rng.random() < params.dead_flag_prob)
    if symptomatic:
        peak = params.burst_peak_prob_young if young else params.burst_peak_prob_old
        window = min(params.burst_window_days, period_len)
        offsets = np.arange(window)
        probs = peak * np.exp(-offsets / params.burst_decay_tau)
        fires = rng.random(window) < probs
        burst_offsets = offsets[fires]
        if young:
            lifelong_boost = params.young_lifelong_error_boost
        if rng.random() < params.read_only_prob:
            read_only_from = int(rng.integers(0, 4))  # up to the last four days

    if symptomatic:
        bad_block_offsets = burst_offsets
    elif rng.random() < params.bad_block_only_prob:
        window = min(params.burst_window_days, period_len)
        offsets = np.arange(window)
        probs = params.bad_block_only_peak_prob * np.exp(
            -offsets / params.burst_decay_tau
        )
        bad_block_offsets = offsets[rng.random(window) < probs]
    else:
        bad_block_offsets = np.empty(0, dtype=np.int64)

    p_decline = (
        params.activity_decline_prob_symptomatic
        if symptomatic
        else params.activity_decline_prob_silent
    )
    if not young:
        p_decline *= params.old_decline_prob_scale
    decline_days = 0
    if rng.random() < p_decline:
        decline_days = 1 + int(rng.geometric(1.0 / params.activity_decline_mean_days))
        decline_days = min(decline_days, period_len)

    return SymptomPlan(
        symptomatic=symptomatic,
        young=young,
        burst_offsets=burst_offsets,
        bad_block_offsets=bad_block_offsets,
        lifelong_boost=lifelong_boost,
        read_only_from_offset=read_only_from,
        dead_flag=dead_flag,
        decline_days=decline_days,
        decline_factor=params.activity_decline_factor,
    )
