"""Swap and repair pipeline (Section 3 of the paper).

After a failure the drive sits non-operational until it is physically
swapped (Figure 4: 20 % within a day, 80 % within a week, a heavy
"forgotten in the rack" tail past 100 days).  The swapped drive enters the
repair shop; roughly half never return within the trace, and those that do
mostly take over a year (Figure 5, Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import RepairParams

__all__ = ["RepairOutcome", "sample_nonoperational_days", "sample_repair", "sample_inactive_stretch"]


@dataclass(frozen=True)
class RepairOutcome:
    """Result of one visit to the repair shop.

    ``duration_days`` is ``None`` when the drive never returns (censoring
    against the trace horizon is applied by the caller, which also converts
    "returns after the horizon" into an unobserved return).
    """

    duration_days: int | None


def _lognormal_days(
    median: float, sigma: float, rng: np.random.Generator
) -> float:
    return float(np.exp(rng.normal(np.log(median), sigma)))


def sample_nonoperational_days(
    params: RepairParams, rng: np.random.Generator
) -> int:
    """Days between the failure and the physical swap (Figure 4).

    Mixture of a prompt-removal component and a rare forgotten-drive
    component; always at least 0 (same-day swap).
    """
    if rng.random() < params.nonop_forgotten_prob:
        days = _lognormal_days(
            params.nonop_forgotten_median, params.nonop_forgotten_sigma, rng
        )
    else:
        days = _lognormal_days(
            params.nonop_prompt_median, params.nonop_prompt_sigma, rng
        )
    return int(np.floor(days))


def sample_repair(params: RepairParams, rng: np.random.Generator) -> RepairOutcome:
    """Repair-shop outcome: never-returns, fast repair, or slow repair."""
    if rng.random() >= params.return_prob:
        return RepairOutcome(duration_days=None)
    if rng.random() < params.fast_repair_prob:
        days = _lognormal_days(
            params.fast_repair_median, params.fast_repair_sigma, rng
        )
    else:
        days = _lognormal_days(
            params.slow_repair_median, params.slow_repair_sigma, rng
        )
    return RepairOutcome(duration_days=max(int(np.floor(days)), 1))


def sample_inactive_stretch(
    params: RepairParams, rng: np.random.Generator, max_days: int
) -> int:
    """Length of the inactive-but-reporting stretch after a failure.

    For ~36 % of swaps the drive keeps filing (zero-activity) reports for a
    few days before records cease entirely (Section 3); for the rest the
    log goes dark immediately.
    """
    if max_days <= 0 or rng.random() >= params.inactive_records_prob:
        return 0
    stretch = int(rng.geometric(1.0 / params.inactive_records_mean_days))
    return min(stretch, max_days)
