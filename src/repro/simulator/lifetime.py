"""Failure-time processes: the bathtub hazard of Section 4.1.

Two latent mechanisms generate swap-inducing failures:

- **Infant defects** — a small per-drive probability of a manufacturing
  fault that escapes testing; the resulting failure age is lognormal and
  concentrated inside the paper's 90-day infancy window (Figure 6 shows
  25 % of failures before day 90, with the monthly hazard flattening out
  after month 3).
- **Mature hazard** — a constant per-day rate, independent of age and of
  P/E wear, matching the paper's finding that neither old age nor write
  behaviour raises failure incidence (Observations 7 and 8).

Drives returning from repair get a hazard multiplier and a small recurrent-
defect probability, which together generate the repeated failures of
Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from .config import LifetimeParams

__all__ = ["FailureMode", "FailureDraw", "sample_failure"]


class FailureMode(IntEnum):
    """Latent failure mechanism (ground truth; never exposed as a feature)."""

    NONE = -1
    DEFECT = 0
    WEAR = 1


@dataclass(frozen=True)
class FailureDraw:
    """Outcome of sampling a failure time for one operational period.

    ``age`` is the failure age in days (``None`` if the period is censored
    by ``max_age``); ``mode`` records which mechanism fired.
    """

    age: int | None
    mode: FailureMode


def _defect_age(params: LifetimeParams, rng: np.random.Generator) -> float:
    """Failure age (days from period start) of an infant defect."""
    mu = np.log(params.defect_age_median)
    age = float(np.exp(rng.normal(mu, params.defect_age_sigma)))
    # A defect needs at least a couple of days in service to manifest.
    return max(age, 2.0)


def sample_failure(
    params: LifetimeParams,
    rng: np.random.Generator,
    start_age: int,
    max_age: int,
    post_repair: bool,
    proneness: float = 0.0,
) -> FailureDraw:
    """Sample the failure time of one operational period.

    Parameters
    ----------
    params:
        Lifetime parameters of the drive model.
    rng:
        Drive-local random stream.
    start_age:
        Drive age (days) at the start of the period (0 for a new drive,
        the re-entry age for a repaired one).
    max_age:
        Drive age at the end of the observation window; failures at or
        beyond it are censored.
    post_repair:
        Whether the period follows a repair (elevated hazard).
    proneness:
        The drive's error-proneness latent; scales the mature hazard by
        ``1 + prone_hazard_coef * proneness`` (error-prone drives fail
        more, per Section 4.2 of the paper).

    Returns
    -------
    FailureDraw with the *earliest* firing mechanism, or a censored draw.
    """
    if max_age <= start_age:
        return FailureDraw(age=None, mode=FailureMode.NONE)

    candidates: list[tuple[float, FailureMode]] = []

    defect_p = (
        params.post_repair_defect_prob if post_repair else params.defect_prob
    )
    if rng.random() < defect_p:
        candidates.append((start_age + _defect_age(params, rng), FailureMode.DEFECT))

    hazard = params.mature_hazard_per_day * (
        1.0 + params.prone_hazard_coef * max(proneness, 0.0)
    )
    if post_repair:
        hazard *= params.post_repair_hazard_mult
    if hazard > 0:
        wait = float(rng.exponential(1.0 / hazard))
        candidates.append((start_age + max(wait, 1.0), FailureMode.WEAR))

    if not candidates:
        return FailureDraw(age=None, mode=FailureMode.NONE)

    age, mode = min(candidates, key=lambda c: c[0])
    age_int = int(np.floor(age))
    if age_int >= max_age:
        return FailureDraw(age=None, mode=FailureMode.NONE)
    # The failure day must lie strictly inside the period.
    age_int = max(age_int, start_age + 1)
    if age_int >= max_age:
        return FailureDraw(age=None, mode=FailureMode.NONE)
    return FailureDraw(age=age_int, mode=mode)
