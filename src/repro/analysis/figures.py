"""Reproduction of the paper's Figures 1 and 3-16.

Each ``figureN`` function computes the data series behind the corresponding
figure (CDFs, rates, quantile bands, ROC curves, importance rankings) and
returns a structured result.  Figure 2 is a schematic timeline with no data
and is documented in DESIGN.md instead.

No plotting library is required: results carry plain arrays plus a
``render()`` text summary used by the benchmark harness and EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..core import (
    INFANCY_DAYS,
    ImportanceReport,
    ModelSpec,
    build_prediction_dataset,
    default_model_zoo,
    evaluate_model,
    importance_report,
)
from ..data import MODEL_NAMES, downsample_majority
from ..ml import roc_auc_score, roc_curve
from ..simulator import FleetTrace
from ..stats import (
    CensoredECDF,
    ECDF,
    QuantileBands,
    binned_failure_rate,
    binned_quantiles,
    censored_ecdf,
    ecdf,
)
from .support import operational_periods, value_at_failure

__all__ = [
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
]


# ------------------------------------------------------------------- Figure 1
@dataclass
class Figure1Result:
    """CDFs of max observed drive age and of per-drive data volume."""

    max_age: ECDF
    data_count: ECDF

    def render(self) -> str:
        qs = (0.25, 0.5, 0.75)
        ma = ", ".join(f"q{int(q*100)}={self.max_age.quantile(q)/365.25:.1f}y" for q in qs)
        dc = ", ".join(
            f"q{int(q*100)}={self.data_count.quantile(q)/365.25:.1f}y" for q in qs
        )
        return f"Max age: {ma}\nData count: {dc}"


def figure1(trace: FleetTrace) -> Figure1Result:
    """Figure 1: per-drive max observed age and recorded-day count CDFs."""
    records = trace.records
    return Figure1Result(
        max_age=ecdf(records.grouped_max("age_days").astype(np.float64)),
        data_count=ecdf(records.grouped_count().astype(np.float64)),
    )


# ------------------------------------------------------------------- Figure 3
@dataclass
class Figure3Result:
    """CDF of operational-period length, with the censored "∞" bar."""

    cdf: CensoredECDF

    @property
    def never_failing_fraction(self) -> float:
        return self.cdf.censored_mass

    def render(self) -> str:
        return (
            f"operational periods: {self.cdf.n_finite + self.cdf.n_censored} "
            f"({100 * self.cdf.censored_mass:.1f}% censored); "
            f"P(len <= 1y) = {self.cdf(365.0):.3f}, P(len <= 3y) = {self.cdf(1095.0):.3f}"
        )


def figure3(trace: FleetTrace) -> Figure3Result:
    """Figure 3: time-to-failure CDF over all operational periods."""
    periods = operational_periods(trace.drives, trace.swaps)
    return Figure3Result(cdf=censored_ecdf(periods.length))


# ------------------------------------------------------------------- Figure 4
@dataclass
class Figure4Result:
    """CDF of the pre-swap non-operational period."""

    cdf: ECDF

    def render(self) -> str:
        return (
            f"non-op period: P(<=1d) = {self.cdf(1.0):.2f}, "
            f"P(<=7d) = {self.cdf(7.0):.2f}, P(>100d) = {1 - self.cdf(100.0):.3f}"
        )


def figure4(trace: FleetTrace) -> Figure4Result:
    """Figure 4: days between the failure and the physical swap."""
    return Figure4Result(cdf=ecdf(trace.swaps.non_operational_days()))


# ------------------------------------------------------------------- Figure 5
@dataclass
class Figure5Result:
    """CDF of time-to-repair with never-repaired mass."""

    cdf: CensoredECDF

    def render(self) -> str:
        return (
            f"repairs: {100 * self.cdf.censored_mass:.1f}% never return; "
            f"P(<=10d) = {self.cdf(10.0):.3f}, P(<=1y) = {self.cdf(365.0):.3f}"
        )


def figure5(trace: FleetTrace) -> Figure5Result:
    """Figure 5: repair duration CDF (nan = never observed to return)."""
    return Figure5Result(cdf=censored_ecdf(trace.swaps.time_to_repair()))


# ------------------------------------------------------------------- Figure 6
@dataclass
class Figure6Result:
    """Failure-age CDF plus exposure-normalized monthly failure rate."""

    age_cdf: ECDF
    monthly_rate: np.ndarray
    month_edges: np.ndarray

    @property
    def infant_share_30d(self) -> float:
        """Fraction of failures within the first 30 days."""
        return float(self.age_cdf(30.0))

    @property
    def infant_share_90d(self) -> float:
        """Fraction of failures within the first 90 days."""
        return float(self.age_cdf(90.0))

    def render(self) -> str:
        r = self.monthly_rate
        first3 = np.nanmean(r[:3])
        later = np.nanmean(r[3:24]) if len(r) > 3 else float("nan")
        return (
            f"failures <30d: {100 * self.infant_share_30d:.1f}%, "
            f"<90d: {100 * self.infant_share_90d:.1f}%; monthly rate "
            f"months 0-2: {first3:.4f}, months 3-24: {later:.4f}"
        )


def figure6(trace: FleetTrace, n_months: int = 72) -> Figure6Result:
    """Figure 6: failure-age CDF and the per-month hazard estimate."""
    edges = np.arange(n_months + 1) * 30.0
    rate = binned_failure_rate(
        trace.swaps.failure_age,
        exposure_start=np.zeros(len(trace.drives)),
        exposure_stop=trace.drives.end_of_observation_age.astype(np.float64),
        edges=edges,
    )
    return Figure6Result(
        age_cdf=ecdf(trace.swaps.failure_age),
        monthly_rate=rate.rate,
        month_edges=edges,
    )


# ------------------------------------------------------------------- Figure 7
@dataclass
class Figure7Result:
    """Quartile bands of daily write intensity per month of age."""

    bands: QuantileBands

    def render(self) -> str:
        med = self.bands.level(0.5)
        pick = [m for m in (0, 5, 11, 23, 47) if m < len(med)]
        cells = ", ".join(f"m{m}={med[m]:.2e}" for m in pick)
        return f"median daily writes by age month: {cells}"


def figure7(trace: FleetTrace, n_months: int = 72) -> Figure7Result:
    """Figure 7: write-intensity quartiles as a function of drive age."""
    records = trace.records
    edges = np.arange(n_months + 1) * 30.0
    bands = binned_quantiles(
        records["age_days"].astype(np.float64),
        records["write_count"].astype(np.float64),
        edges=edges,
        levels=(0.25, 0.5, 0.75),
    )
    return Figure7Result(bands=bands)


# ------------------------------------------------------------------- Figure 8
@dataclass
class Figure8Result:
    """P/E-at-failure CDF plus failure rate per P/E bin."""

    pe_cdf: ECDF
    rate: np.ndarray
    pe_edges: np.ndarray

    @property
    def share_below_half_limit(self) -> float:
        """Fraction of failures before 1500 cycles (half the rated limit)."""
        return float(self.pe_cdf(1500.0))

    def render(self) -> str:
        return (
            f"failures below 1500 P/E: {100 * self.share_below_half_limit:.1f}%; "
            f"median P/E at failure: {self.pe_cdf.quantile(0.5):.0f}"
        )


def figure8(trace: FleetTrace, bin_width: float = 250.0, max_pe: float = 6000.0) -> Figure8Result:
    """Figure 8: wear (P/E) at failure, CDF and binned failure rate."""
    records = trace.records
    pe_at_fail = value_at_failure(records, trace.swaps, records["pe_cycles"])
    pe_at_fail = pe_at_fail[~np.isnan(pe_at_fail)]
    edges = np.arange(0.0, max_pe + bin_width, bin_width)
    final_pe = records.grouped_last("pe_cycles").astype(np.float64)
    rate = binned_failure_rate(
        pe_at_fail,
        exposure_start=np.zeros(len(final_pe)),
        exposure_stop=final_pe,
        edges=edges,
    )
    return Figure8Result(pe_cdf=ecdf(pe_at_fail), rate=rate.rate, pe_edges=edges)


# ------------------------------------------------------------------- Figure 9
@dataclass
class Figure9Result:
    """P/E-at-failure CDFs split by infant vs. mature failures."""

    young: ECDF
    old: ECDF

    def render(self) -> str:
        return (
            f"median P/E at failure: young {self.young.quantile(0.5):.0f}, "
            f"old {self.old.quantile(0.5):.0f}"
        )


def figure9(trace: FleetTrace, infancy_days: int = INFANCY_DAYS) -> Figure9Result:
    """Figure 9: the Figure 8 CDF split at the 90-day infancy boundary."""
    records = trace.records
    pe_at_fail = value_at_failure(records, trace.swaps, records["pe_cycles"])
    ok = ~np.isnan(pe_at_fail)
    young_mask = ok & (trace.swaps.failure_age <= infancy_days)
    old_mask = ok & (trace.swaps.failure_age > infancy_days)
    return Figure9Result(
        young=ecdf(pe_at_fail[young_mask]), old=ecdf(pe_at_fail[old_mask])
    )


# ------------------------------------------------------------------ Figure 10
@dataclass
class Figure10Result:
    """Cumulative bad-block and UE count CDFs: young / old / not failed."""

    bad_blocks: dict[str, ECDF]
    uncorrectable: dict[str, ECDF]

    def zero_ue_fraction(self, group: str) -> float:
        """P(cumulative UE count == 0) for a group."""
        return float(self.uncorrectable[group](0.0))

    def render(self) -> str:
        z = {g: self.zero_ue_fraction(g) for g in ("young", "old", "not_failed")}
        return (
            "zero-UE share: young {young:.2f}, old {old:.2f}, "
            "not-failed {not_failed:.2f}".format(**z)
        )


def figure10(trace: FleetTrace, infancy_days: int = INFANCY_DAYS) -> Figure10Result:
    """Figure 10: error/bad-block accumulation of failed vs. healthy drives.

    Failed drives are measured *at their first failure* (cumulative counts
    up to the failure day); healthy drives at their last record.
    """
    records = trace.records
    swaps = trace.swaps
    cum_ue = records.grouped_cumsum("uncorrectable_error")
    cum_bb = (
        records["grown_bad_blocks"].astype(np.float64)
        + records["factory_bad_blocks"].astype(np.float64)
    )
    # First failure per drive.
    order = np.lexsort((swaps.failure_age, swaps.drive_id))
    first_mask = np.zeros(len(swaps), dtype=bool)
    seen: set[int] = set()
    for j in order:
        d = int(swaps.drive_id[j])
        if d not in seen:
            seen.add(d)
            first_mask[j] = True
    firsts = swaps.select(first_mask)
    ue_at_fail = value_at_failure(records, firsts, cum_ue)
    bb_at_fail = value_at_failure(records, firsts, cum_bb)
    young = firsts.failure_age <= infancy_days

    ids, offsets = records.drive_groups()
    failed_ids = np.unique(swaps.drive_id)
    not_failed = ~np.isin(ids, failed_ids)
    # Final cumulative values per drive: last row of the per-drive cumsum.
    ue_last = cum_ue[offsets[1:] - 1]
    bb_last = cum_bb[offsets[1:] - 1]

    def _safe(x: np.ndarray) -> np.ndarray:
        x = x[~np.isnan(x)]
        return x if x.size else np.zeros(1)

    return Figure10Result(
        bad_blocks={
            "young": ecdf(_safe(bb_at_fail[young])),
            "old": ecdf(_safe(bb_at_fail[~young])),
            "not_failed": ecdf(bb_last[not_failed]),
        },
        uncorrectable={
            "young": ecdf(_safe(ue_at_fail[young])),
            "old": ecdf(_safe(ue_at_fail[~young])),
            "not_failed": ecdf(ue_last[not_failed]),
        },
    )


# ------------------------------------------------------------------ Figure 11
@dataclass
class Figure11Result:
    """Pre-failure UE behaviour.

    ``prob_within`` maps group -> array over n = 1..window of
    P(any UE within the last n days before the failure); ``baseline`` is
    the same probability over arbitrary n-day stretches of healthy drives.
    ``count_percentiles`` maps group -> (levels, days, values) for nonzero
    UE-count upper percentiles per day-before-failure.
    """

    prob_within: dict[str, np.ndarray]
    baseline: np.ndarray
    count_percentiles: dict[str, np.ndarray]
    percentile_levels: tuple[float, ...]
    window: int

    def render(self) -> str:
        y = self.prob_within["young"]
        o = self.prob_within["old"]
        return (
            f"P(UE within last 2d): young {y[1]:.2f}, old {o[1]:.2f}, "
            f"baseline {self.baseline[1]:.3f}; within 7d: young "
            f"{y[min(6, len(y)-1)]:.2f}, old {o[min(6, len(o)-1)]:.2f}"
        )


def figure11(
    trace: FleetTrace,
    window: int = 7,
    infancy_days: int = INFANCY_DAYS,
    percentile_levels: tuple[float, ...] = (0.75, 0.85, 0.95),
    seed: int = 0,
) -> Figure11Result:
    """Figure 11: UE probability and magnitude in the days before failure."""
    records = trace.records
    swaps = trace.swaps
    ages = records["age_days"]
    ue = records["uncorrectable_error"]
    from .support import drive_slices

    slices = drive_slices(records)
    young_sel = swaps.failure_age <= infancy_days

    # Per failure: UE count on each day-offset before the failure.
    per_day: dict[str, list[np.ndarray]] = {"young": [], "old": []}
    for i in range(len(swaps)):
        span = slices.get(int(swaps.drive_id[i]))
        if span is None:
            continue
        s, e = span
        a = ages[s:e]
        f = swaps.failure_age[i]
        counts = np.zeros(window, dtype=np.float64)
        lo = int(np.searchsorted(a, f - window + 1, side="left"))
        hi = int(np.searchsorted(a, f, side="right"))
        for pos in range(lo, hi):
            off = int(f - a[pos])
            if 0 <= off < window:
                counts[off] = ue[s + pos]
        per_day["young" if young_sel[i] else "old"].append(counts)

    prob_within: dict[str, np.ndarray] = {}
    count_pct: dict[str, np.ndarray] = {}
    for grp, rows in per_day.items():
        if rows:
            mat = np.vstack(rows)
            any_within = np.cumsum(mat > 0, axis=1) > 0  # over offsets 0..n-1
            prob_within[grp] = any_within.mean(axis=0)
            pct = np.full((len(percentile_levels), window), np.nan)
            for d in range(window):
                nz = mat[:, d][mat[:, d] > 0]
                if nz.size:
                    pct[:, d] = np.quantile(nz, percentile_levels)
            count_pct[grp] = pct
        else:
            prob_within[grp] = np.full(window, np.nan)
            count_pct[grp] = np.full((len(percentile_levels), window), np.nan)

    # Baseline: P(any UE within an arbitrary n-day window) estimated from
    # random healthy windows.
    rng = np.random.default_rng(seed)
    failed_ids = set(np.unique(swaps.drive_id).tolist())
    ue_day = ue > 0
    ids, offsets = records.drive_groups()
    healthy = [i for i in range(len(ids)) if int(ids[i]) not in failed_ids]
    baseline = np.zeros(window)
    n_samples = 4000
    hits = np.zeros(window)
    draws = 0
    while draws < n_samples and healthy:
        i = healthy[int(rng.integers(0, len(healthy)))]
        s, e = int(offsets[i]), int(offsets[i + 1])
        if e - s < window:
            draws += 1
            continue
        start = int(rng.integers(s, e - window + 1))
        seg = ue_day[start : start + window]
        hits += np.cumsum(seg) > 0
        draws += 1
    baseline = hits / max(draws, 1)

    return Figure11Result(
        prob_within=prob_within,
        baseline=baseline,
        count_percentiles=count_pct,
        percentile_levels=percentile_levels,
        window=window,
    )


# ------------------------------------------------------------------ Figure 12
@dataclass
class Figure12Result:
    """Random-forest AUC as a function of the lookahead window N."""

    lookaheads: tuple[int, ...]
    auc_mean: np.ndarray
    auc_std: np.ndarray

    def render(self) -> str:
        return ", ".join(
            f"N={n}: {m:.3f}±{s:.3f}"
            for n, m, s in zip(self.lookaheads, self.auc_mean, self.auc_std)
        )


def figure12(
    trace: FleetTrace,
    lookaheads: Sequence[int] = (1, 2, 3, 5, 7, 14, 30),
    spec: ModelSpec | None = None,
    n_splits: int = 5,
    seed: int = 0,
) -> Figure12Result:
    """Figure 12: forest AUC vs. N (the paper sweeps 1..30)."""
    spec = spec or default_model_zoo(seed)[-1]
    means, stds = [], []
    for n in lookaheads:
        ds = build_prediction_dataset(trace, lookahead=n)
        res = evaluate_model(ds, spec, n_splits=n_splits, seed=seed)
        means.append(res.mean_auc)
        stds.append(res.std_auc)
    return Figure12Result(
        lookaheads=tuple(lookaheads),
        auc_mean=np.asarray(means),
        auc_std=np.asarray(stds),
    )


# ------------------------------------------------------------------ Figure 13
@dataclass
class Figure13Result:
    """Per-drive-model ROC curves (random forest, N=1)."""

    curves: dict[str, tuple[np.ndarray, np.ndarray]]  # name -> (fpr, tpr)
    auc: dict[str, float]

    def render(self) -> str:
        return ", ".join(f"{m}: AUC={a:.3f}" for m, a in self.auc.items())


def figure13(
    trace: FleetTrace,
    spec: ModelSpec | None = None,
    lookahead: int = 1,
    n_splits: int = 5,
    seed: int = 0,
) -> Figure13Result:
    """Figure 13: ROC per drive model from out-of-fold predictions."""
    spec = spec or default_model_zoo(seed)[-1]
    dataset = build_prediction_dataset(trace, lookahead=lookahead)
    curves: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    auc: dict[str, float] = {}
    for i, name in enumerate(MODEL_NAMES):
        sub = dataset.for_model(i)
        res = evaluate_model(sub, spec, n_splits=n_splits, seed=seed)
        fpr, tpr, _ = roc_curve(res.oof_true, res.oof_score)
        curves[name] = (fpr, tpr)
        auc[name] = roc_auc_score(res.oof_true, res.oof_score)
    return Figure13Result(curves=curves, auc=auc)


# ------------------------------------------------------------------ Figure 14
@dataclass
class Figure14Result:
    """Recall (TPR) as a function of drive age for several thresholds."""

    month_edges: np.ndarray
    tpr_by_threshold: dict[float, np.ndarray]

    def render(self) -> str:
        parts = []
        for thr, tpr in self.tpr_by_threshold.items():
            young = np.nanmean(tpr[:3])
            old = np.nanmean(tpr[3:])
            parts.append(f"alpha={thr}: TPR months 0-2 = {young:.2f}, 3+ = {old:.2f}")
        return "; ".join(parts)


def figure14(
    trace: FleetTrace,
    thresholds: Sequence[float] = (0.85, 0.90, 0.95),
    spec: ModelSpec | None = None,
    lookahead: int = 1,
    n_months: int = 30,
    n_splits: int = 5,
    seed: int = 0,
) -> Figure14Result:
    """Figure 14: per-age recall of the thresholded forest (out-of-fold)."""
    spec = spec or default_model_zoo(seed)[-1]
    dataset = build_prediction_dataset(trace, lookahead=lookahead)
    res = evaluate_model(dataset, spec, n_splits=n_splits, seed=seed)
    pos = res.oof_true == 1
    ages = dataset.age_days[res.oof_index][pos]
    scores = res.oof_score[pos]
    edges = np.arange(n_months + 1) * 30.0
    bin_id = np.clip(np.searchsorted(edges, ages, side="right") - 1, 0, n_months - 1)
    out: dict[float, np.ndarray] = {}
    for thr in thresholds:
        tpr = np.full(n_months, np.nan)
        for b in range(n_months):
            sel = bin_id == b
            if np.any(sel):
                tpr[b] = float((scores[sel] >= thr).mean())
        out[thr] = tpr
    return Figure14Result(month_edges=edges, tpr_by_threshold=out)


# ------------------------------------------------------------------ Figure 15
@dataclass
class Figure15Result:
    """Young/old ROC comparison plus separately-trained AUCs (§5.3)."""

    curves: dict[str, tuple[np.ndarray, np.ndarray]]
    pooled_auc: dict[str, float]
    partitioned_auc: dict[str, tuple[float, float]]  # group -> (mean, std)

    def render(self) -> str:
        pooled = ", ".join(f"{g}: {a:.3f}" for g, a in self.pooled_auc.items())
        part = ", ".join(
            f"{g}: {m:.3f}±{s:.3f}" for g, (m, s) in self.partitioned_auc.items()
        )
        return f"pooled model AUC by age group [{pooled}]; separately trained [{part}]"


def figure15(
    trace: FleetTrace,
    spec: ModelSpec | None = None,
    lookahead: int = 1,
    infancy_days: int = INFANCY_DAYS,
    n_splits: int = 5,
    seed: int = 0,
) -> Figure15Result:
    """Figure 15 + §5.3: young vs old predictability.

    The pooled model is trained on all ages and its out-of-fold scores are
    split by the age of the input row (the figure); separately trained
    young/old models quantify the partitioning gain the paper reports
    (0.970 / 0.890).
    """
    spec = spec or default_model_zoo(seed)[-1]
    dataset = build_prediction_dataset(trace, lookahead=lookahead)
    res = evaluate_model(dataset, spec, n_splits=n_splits, seed=seed)
    ages = dataset.age_days[res.oof_index]
    curves: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    pooled: dict[str, float] = {}
    for grp, mask in (
        ("young", ages <= infancy_days),
        ("old", ages > infancy_days),
    ):
        yt, ys = res.oof_true[mask], res.oof_score[mask]
        if yt.sum() and yt.sum() < len(yt):
            fpr, tpr, _ = roc_curve(yt, ys)
            curves[grp] = (fpr, tpr)
            pooled[grp] = roc_auc_score(yt, ys)
        else:
            pooled[grp] = float("nan")

    partitioned: dict[str, tuple[float, float]] = {}
    for grp, sub in (("young", dataset.young(infancy_days)), ("old", dataset.old(infancy_days))):
        try:
            r = evaluate_model(sub, spec, n_splits=n_splits, seed=seed)
            partitioned[grp] = (r.mean_auc, r.std_auc)
        except ValueError:
            partitioned[grp] = (float("nan"), float("nan"))
    return Figure15Result(
        curves=curves, pooled_auc=pooled, partitioned_auc=partitioned
    )


# ------------------------------------------------------------------ Figure 16
@dataclass
class Figure16Result:
    """Feature importances of separately trained young/old forests."""

    young: ImportanceReport
    old: ImportanceReport

    def render(self, k: int = 10) -> str:
        from ..core import compare_importances

        return compare_importances(self.young, self.old, k=k)


def figure16(
    trace: FleetTrace,
    spec: ModelSpec | None = None,
    lookahead: int = 1,
    infancy_days: int = INFANCY_DAYS,
    seed: int = 0,
) -> Figure16Result:
    """Figure 16: importance rankings of the infant and mature models."""
    spec = spec or default_model_zoo(seed)[-1]
    dataset = build_prediction_dataset(trace, lookahead=lookahead)
    rng = np.random.default_rng(seed)
    reports: dict[str, ImportanceReport] = {}
    for grp, sub in (("young", dataset.young(infancy_days)), ("old", dataset.old(infancy_days))):
        keep = downsample_majority(sub.y, ratio=1.0, rng=rng)
        model = spec.factory()
        model.fit(sub.X[keep], sub.y[keep])
        imp = getattr(model, "feature_importances_", None)
        if imp is None:
            raise AttributeError("figure16 requires a model with importances")
        reports[grp] = importance_report(list(sub.feature_names), imp)
    return Figure16Result(young=reports["young"], old=reports["old"])
