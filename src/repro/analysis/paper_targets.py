"""Published values from the paper, used as comparison targets.

These constants transcribe the numbers reported in the paper's tables and
the headline statistics quoted in its prose.  EXPERIMENTS.md compares each
against the value measured on the simulated fleet; the integration tests in
``tests/analysis`` check the *shape* claims (orderings, crossovers, rough
magnitudes), not exact equality — the substrate is a simulator, not the
original testbed (DESIGN.md §2).
"""

from __future__ import annotations

__all__ = [
    "TABLE1_INCIDENCE",
    "TABLE3_PCT_FAILED",
    "TABLE4_PCT_OF_DRIVES",
    "TABLE5_PCT_REPAIRED",
    "TABLE6_AUC",
    "TABLE7_AUC",
    "TABLE8_AUC_COMBINED",
    "FIG4_WITHIN_1D",
    "FIG4_WITHIN_7D",
    "FIG5_NEVER_REPAIRED",
    "FIG6_FAILURES_UNDER_30D",
    "FIG6_FAILURES_UNDER_90D",
    "FIG8_FAILURES_UNDER_1500_PE",
    "FIG10_ZERO_UE",
    "FIG15_POOLED_AUC",
    "FIG15_PARTITIONED_AUC",
    "SILENT_FAILURE_FRACTION",
    "PE_CYCLE_LIMIT",
]

#: Table 1 — proportion of drive days exhibiting each error type.
TABLE1_INCIDENCE: dict[str, dict[str, float]] = {
    "correctable_error": {"MLC-A": 0.828895, "MLC-B": 0.776308, "MLC-D": 0.767593},
    "final_read_error": {"MLC-A": 0.001077, "MLC-B": 0.001805, "MLC-D": 0.001552},
    "final_write_error": {"MLC-A": 0.000026, "MLC-B": 0.000027, "MLC-D": 0.000034},
    "meta_error": {"MLC-A": 0.000014, "MLC-B": 0.000016, "MLC-D": 0.000028},
    "read_error": {"MLC-A": 0.000090, "MLC-B": 0.000103, "MLC-D": 0.000133},
    "response_error": {"MLC-A": 0.000001, "MLC-B": 0.000004, "MLC-D": 0.000002},
    "timeout_error": {"MLC-A": 0.000009, "MLC-B": 0.000010, "MLC-D": 0.000014},
    "uncorrectable_error": {"MLC-A": 0.002176, "MLC-B": 0.002349, "MLC-D": 0.002583},
    "write_error": {"MLC-A": 0.000117, "MLC-B": 0.001309, "MLC-D": 0.000162},
}

#: Table 3 — % of drives that fail at least once.
TABLE3_PCT_FAILED: dict[str, float] = {
    "MLC-A": 6.95,
    "MLC-B": 14.3,
    "MLC-D": 12.5,
    "All": 11.29,
}

#: Table 4 — lifetime failure-count distribution (% of all drives).
TABLE4_PCT_OF_DRIVES: dict[int, float] = {
    0: 88.71,
    1: 10.10,
    2: 1.038,
    3: 0.133,
    4: 0.001,
}

#: Table 5 — % of swapped drives re-entering within n days (per model).
TABLE5_PCT_REPAIRED: dict[str, dict[str, float]] = {
    "MLC-A": {"10d": 3.4, "30d": 5.0, "100d": 6.1, "365d": 17.4, "730d": 37.6, "1095d": 43.6, "ever": 53.4},
    "MLC-B": {"10d": 6.8, "30d": 9.4, "100d": 12.7, "365d": 25.3, "730d": 36.1, "1095d": 42.7, "ever": 43.9},
    "MLC-D": {"10d": 4.9, "30d": 8.1, "100d": 15.8, "365d": 28.1, "730d": 43.5, "1095d": 50.2, "ever": 57.6},
}

#: Table 6 — ROC AUC per classifier and lookahead N.
TABLE6_AUC: dict[str, dict[int, float]] = {
    "Logistic Reg.": {1: 0.796, 2: 0.765, 3: 0.745, 7: 0.713},
    "k-NN": {1: 0.816, 2: 0.791, 3: 0.772, 7: 0.716},
    "SVM": {1: 0.821, 2: 0.795, 3: 0.778, 7: 0.728},
    "Neural Network": {1: 0.857, 2: 0.828, 3: 0.803, 7: 0.770},
    "Decision Tree": {1: 0.872, 2: 0.840, 3: 0.819, 7: 0.780},
    "Random Forest": {1: 0.905, 2: 0.859, 3: 0.839, 7: 0.803},
}

#: Table 7 — cross-model transfer AUC (rows: test, cols: train).
TABLE7_AUC: dict[str, dict[str, float]] = {
    "MLC-A": {"MLC-A": 0.891, "MLC-B": 0.871, "MLC-D": 0.887, "All": 0.901},
    "MLC-B": {"MLC-A": 0.832, "MLC-B": 0.892, "MLC-D": 0.849, "All": 0.893},
    "MLC-D": {"MLC-A": 0.868, "MLC-B": 0.857, "MLC-D": 0.897, "All": 0.901},
}

#: Table 8 — error-type prediction AUC (combined column, N=2).
TABLE8_AUC_COMBINED: dict[str, float] = {
    "bad_block": 0.877,
    "erase_error": 0.889,
    "final_read_error": 0.906,
    "final_write_error": 0.841,
    "meta_error": 0.854,
    "read_error": 0.971,
    "response_error": 0.806,
    "timeout_error": 0.755,
    "uncorrectable_error": 0.933,
    "write_error": 0.916,
}

#: Figure 4 — non-operational period landmarks.
FIG4_WITHIN_1D: float = 0.20
FIG4_WITHIN_7D: float = 0.80

#: Figure 5 — repairs never observed to complete.
FIG5_NEVER_REPAIRED: float = 0.50

#: Figure 6 — infant-mortality shares.
FIG6_FAILURES_UNDER_30D: float = 0.15
FIG6_FAILURES_UNDER_90D: float = 0.25

#: Figure 8 — share of failures below half the rated P/E limit.
FIG8_FAILURES_UNDER_1500_PE: float = 0.98

#: Figure 10 — share of drives with zero cumulative uncorrectable errors.
FIG10_ZERO_UE: dict[str, float] = {
    "young": 0.68,
    "old": 0.45,
    "not_failed": 0.80,
}

#: Figure 15 — pooled-model AUC evaluated per age group.
FIG15_POOLED_AUC: dict[str, float] = {"young": 0.961, "old": 0.894}

#: Section 5.3 — separately trained young/old model AUC.
FIG15_PARTITIONED_AUC: dict[str, float] = {"young": 0.970, "old": 0.890}

#: Section 4.2 — failures with no non-transparent errors and no bad blocks.
SILENT_FAILURE_FRACTION: float = 0.26

#: Section 2 — manufacturer P/E endurance rating of all three models.
PE_CYCLE_LIMIT: int = 3000
