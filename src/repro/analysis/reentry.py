"""Post-re-entry behaviour — the paper's stated next step.

The conclusion of the paper announces work on "disk activity prior to a
swap and directly following re-entry".  This module provides that analysis
over the (simulated) trace:

- how quickly re-entered drives fail again, against the first-failure
  baseline (Kaplan-Meier, handling censoring properly);
- the share of returned drives that fail again within fixed horizons;
- workload placed on re-entered drives relative to their pre-failure level
  (are operators cautious with repaired drives?).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator import FleetTrace
from ..stats.survival import KaplanMeier, kaplan_meier
from .support import drive_slices

__all__ = ["ReentryAnalysis", "analyze_reentry"]


@dataclass
class ReentryAnalysis:
    """Comparison of first operational periods vs post-re-entry periods.

    Attributes
    ----------
    first_km, reentry_km:
        Kaplan-Meier curves of time-to-failure for first periods and for
        periods following a re-entry.
    n_reentries:
        Number of observed re-entries.
    refail_within:
        Mapping horizon (days) -> share of re-entered drives observed to
        fail again within it.
    activity_ratio_median:
        Median of (mean daily writes after re-entry) / (mean daily writes
        before the failure) per re-entered drive; ``nan`` if unavailable.
    """

    first_km: KaplanMeier
    reentry_km: KaplanMeier
    n_reentries: int
    refail_within: dict[int, float]
    activity_ratio_median: float

    def render(self) -> str:
        lines = [
            f"re-entries observed: {self.n_reentries}",
            "P(fail again within): "
            + ", ".join(
                f"{h}d = {v:.2f}" for h, v in sorted(self.refail_within.items())
            ),
            f"1-year failure probability: first period "
            f"{self.first_km.cdf(365.0):.3f}, post-re-entry "
            f"{self.reentry_km.cdf(365.0):.3f}",
            f"median post/pre activity ratio: {self.activity_ratio_median:.2f}",
        ]
        return "\n".join(lines)


def analyze_reentry(
    trace: FleetTrace, horizons: tuple[int, ...] = (90, 365, 730)
) -> ReentryAnalysis:
    """Characterize the life of drives after they return from repair."""
    swaps = trace.swaps
    drives = trace.drives
    end_age = dict(
        zip(drives.drive_id.tolist(), drives.end_of_observation_age.tolist())
    )

    # Organize each drive's swap events chronologically.
    order = np.lexsort((swaps.failure_age, swaps.drive_id))
    events_by_drive: dict[int, list[int]] = {}
    for j in order:
        events_by_drive.setdefault(int(swaps.drive_id[j]), []).append(int(j))

    first_dur: list[float] = []
    first_obs: list[bool] = []
    re_dur: list[float] = []
    re_obs: list[bool] = []
    n_reentries = 0

    for i in range(len(drives)):
        did = int(drives.drive_id[i])
        horizon = float(end_age[did])
        events = events_by_drive.get(did, [])
        if events:
            j0 = events[0]
            first_dur.append(float(swaps.failure_age[j0] - swaps.operational_start_age[j0]))
            first_obs.append(True)
        else:
            first_dur.append(horizon)
            first_obs.append(False)
        # Post-re-entry periods: each event whose drive returned.
        for k, j in enumerate(events):
            reentry = swaps.reentry_age[j]
            if np.isnan(reentry):
                continue
            n_reentries += 1
            nxt = events[k + 1] if k + 1 < len(events) else None
            if nxt is not None:
                re_dur.append(float(swaps.failure_age[nxt] - reentry))
                re_obs.append(True)
            else:
                re_dur.append(max(horizon - float(reentry), 0.0))
                re_obs.append(False)

    refail_within: dict[int, float] = {}
    if re_dur:
        re_dur_arr = np.asarray(re_dur)
        re_obs_arr = np.asarray(re_obs)
        for h in horizons:
            refail_within[h] = float(
                np.mean(re_obs_arr & (re_dur_arr <= h))
            )
        reentry_km = kaplan_meier(re_dur_arr, re_obs_arr)
    else:
        for h in horizons:
            refail_within[h] = float("nan")
        reentry_km = kaplan_meier(np.array([1.0]), np.array([False]))

    first_km = kaplan_meier(np.asarray(first_dur), np.asarray(first_obs))

    activity_ratio = _activity_ratio(trace, events_by_drive)
    return ReentryAnalysis(
        first_km=first_km,
        reentry_km=reentry_km,
        n_reentries=n_reentries,
        refail_within=refail_within,
        activity_ratio_median=activity_ratio,
    )


def _activity_ratio(
    trace: FleetTrace, events_by_drive: dict[int, list[int]]
) -> float:
    """Median post-re-entry / pre-failure mean daily writes per drive."""
    records = trace.records
    slices = drive_slices(records)
    ages = records["age_days"]
    writes = records["write_count"]
    ratios: list[float] = []
    for did, events in events_by_drive.items():
        span = slices.get(did)
        if span is None:
            continue
        s, e = span
        a = ages[s:e]
        w = writes[s:e]
        for j in events:
            reentry = trace.swaps.reentry_age[j]
            if np.isnan(reentry):
                continue
            fail = trace.swaps.failure_age[j]
            before = w[(a <= fail) & (a > fail - 60)]
            after = w[(a >= reentry) & (a < reentry + 60)]
            before = before[before > 0]
            after = after[after > 0]
            if before.size and after.size:
                ratios.append(float(after.mean() / before.mean()))
    return float(np.median(ratios)) if ratios else float("nan")
