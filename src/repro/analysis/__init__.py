"""Experiment harness: one function per table/figure of the paper.

``tables.tableN(trace, ...)`` and ``figures.figureN(trace, ...)`` return
structured results with ``render()`` text output; ``paper_targets`` holds
the published values each result is compared against in EXPERIMENTS.md.
"""

from . import paper_targets
from .figures import (
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
)
from .observations import ObservationReport, ObservationResult, check_observations
from .reentry import ReentryAnalysis, analyze_reentry
from .support import operational_periods, value_at_failure
from .tables import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)

__all__ = [
    "paper_targets",
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "ObservationReport",
    "ObservationResult",
    "check_observations",
    "ReentryAnalysis",
    "analyze_reentry",
    "operational_periods",
    "value_at_failure",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
]
