"""Programmatic checks of the paper's thirteen Observations.

The paper distils its findings into Observations 1-13.  Each function here
evaluates one observation on a trace and returns an :class:`ObservationResult`
with the measured evidence, so a single call audits whether a fleet —
simulated or real — exhibits the paper's phenomenology.  This doubles as
the top-level validation that the simulator substitution is faithful
(DESIGN.md §2) and as a template for running the same audit on real
telemetry.

Observations that require the ML pipeline (12, 13) accept a model spec and
are substantially more expensive; :func:`check_observations` lets callers
include or exclude them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import build_prediction_dataset, default_model_zoo, evaluate_model
from ..core.pipeline import INFANCY_DAYS, ModelSpec
from ..data.fields import NON_TRANSPARENT_ERRORS
from ..ml import roc_auc_score
from ..simulator import FleetTrace
from .figures import figure6, figure10, figure11, figure16
from .tables import table2

__all__ = ["ObservationResult", "ObservationReport", "check_observations"]


@dataclass(frozen=True)
class ObservationResult:
    """Outcome of checking one paper observation on a trace."""

    number: int
    claim: str
    holds: bool
    evidence: str


@dataclass
class ObservationReport:
    """All checked observations, with a render for human review."""

    results: list[ObservationResult] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        return all(r.holds for r in self.results)

    def failing(self) -> list[ObservationResult]:
        return [r for r in self.results if not r.holds]

    def render(self) -> str:
        lines = []
        for r in self.results:
            mark = "PASS" if r.holds else "FAIL"
            lines.append(f"[{mark}] Obs {r.number:>2d}: {r.claim}")
            lines.append(f"        {r.evidence}")
        return "\n".join(lines)


def _obs1_2_correlations(trace: FleetTrace) -> list[ObservationResult]:
    """Obs 1-2: P/E and age correlate weakly with non-transparent errors;
    some error pairs correlate mildly (usable for prediction)."""
    t2 = table2(trace)
    pe_ue = abs(t2.value("pe_cycles", "uncorrectable_error"))
    pe_erase = t2.value("pe_cycles", "erase_error")
    mild_pairs = 0
    for a in ("final_write_error", "meta_error", "read_error"):
        for b in ("uncorrectable_error", "final_read_error", "final_write_error"):
            if a != b and abs(t2.value(a, b)) >= 0.15:
                mild_pairs += 1
    r1 = ObservationResult(
        1,
        "P/E wear barely correlates with uncorrectable errors; erase errors "
        "are the exception",
        holds=(pe_ue < 0.3) and (pe_erase > 0.15),
        evidence=f"rho(PE, UE) = {pe_ue:.2f}; rho(PE, erase) = {pe_erase:.2f}",
    )
    r2 = ObservationResult(
        2,
        "some transparent/non-transparent error pairs are mildly correlated",
        holds=mild_pairs >= 1,
        evidence=f"{mild_pairs} pairs with |rho| >= 0.15",
    )
    return [r1, r2]


def _obs3_swap_latency(trace: FleetTrace) -> ObservationResult:
    nonop = trace.swaps.non_operational_days()
    within_week = float((nonop <= 7).mean()) if len(nonop) else float("nan")
    long_tail = float((nonop > 365).mean()) if len(nonop) else float("nan")
    return ObservationResult(
        3,
        "failed drives are usually swapped within a week; a small share "
        "lingers beyond a year",
        holds=within_week > 0.5 and long_tail < 0.2,
        evidence=f"P(swap <= 7d) = {within_week:.2f}; P(> 1y) = {long_tail:.3f}",
    )


def _obs4_5_repairs(trace: FleetTrace) -> list[ObservationResult]:
    ttr = trace.swaps.time_to_repair()
    n = len(ttr)
    completed = float(np.mean(~np.isnan(ttr))) if n else float("nan")
    fast = float(np.mean(ttr <= 10)) if n else float("nan")
    r4 = ObservationResult(
        4,
        "only about half of swapped drives complete repair and re-enter",
        holds=0.25 < completed < 0.75,
        evidence=f"completed repairs: {100 * completed:.1f}% of swaps",
    )
    r5 = ObservationResult(
        5,
        "few completed repairs finish within 10 days",
        holds=fast < 0.2,
        evidence=f"repaired within 10 days: {100 * fast:.1f}% of swaps",
    )
    return [r4, r5]


def _safe_nanmean(x: np.ndarray) -> float:
    """nanmean that returns nan (without warning) for empty/all-nan input."""
    x = np.asarray(x, dtype=np.float64)
    finite = x[np.isfinite(x)]
    return float(finite.mean()) if finite.size else float("nan")


def _obs6_7_infant_mortality(trace: FleetTrace) -> list[ObservationResult]:
    f6 = figure6(trace)
    infant_rate = _safe_nanmean(f6.monthly_rate[:3])
    plateau = _safe_nanmean(f6.monthly_rate[3:36])
    old = _safe_nanmean(f6.monthly_rate[36:60])
    r6 = ObservationResult(
        6,
        "drives younger than 90 days fail at a markedly higher rate",
        holds=infant_rate > 2 * plateau,
        evidence=(
            f"monthly hazard months 0-2: {infant_rate:.4f} vs months 3-35: "
            f"{plateau:.4f}"
        ),
    )
    r7 = ObservationResult(
        7,
        "beyond infancy, age does not raise the failure rate",
        holds=(not np.isfinite(old)) or old < 2.5 * max(plateau, 1e-6),
        evidence=f"monthly hazard months 36-59: {old:.4f}",
    )
    return [r6, r7]


def _obs8_pe_limit(trace: FleetTrace) -> ObservationResult:
    from .figures import figure8

    f8 = figure8(trace)
    below = f8.share_below_half_limit
    beyond_rate = f8.rate[f8.pe_edges[:-1] >= 3000]
    beyond = _safe_nanmean(beyond_rate) if np.isfinite(beyond_rate).any() else 0.0
    within = _safe_nanmean(f8.rate[: len(f8.rate) // 2])
    return ObservationResult(
        8,
        "the vast majority of failures happen well before the P/E limit; "
        "drives beyond the limit fail rarely",
        holds=below > 0.8 and (beyond <= within * 3 + 1e-9),
        evidence=(
            f"failures below 1500 P/E: {100 * below:.1f}%; mean rate beyond "
            f"limit {beyond:.4f} vs early bins {within:.4f}"
        ),
    )


def _obs9_10_error_visibility(trace: FleetTrace) -> list[ObservationResult]:
    f10 = figure10(trace)
    # Silent share: no non-transparent errors and no grown bad blocks.
    records = trace.records
    ids, _ = records.drive_groups()
    nt_total = np.zeros(len(ids))
    for err in NON_TRANSPARENT_ERRORS:
        nt_total = nt_total + records.grouped_sum(err)
    grown = records.grouped_last("grown_bad_blocks")
    failed_ids = np.unique(trace.swaps.drive_id)
    failed_mask = np.isin(ids, failed_ids)
    silent = float(
        ((nt_total[failed_mask] == 0) & (grown[failed_mask] == 0)).mean()
    ) if failed_mask.any() else float("nan")
    r9 = ObservationResult(
        9,
        "a substantial share of failures shows no serious error at all",
        holds=silent > 0.1,
        evidence=f"silent failures: {100 * silent:.1f}% (paper: 26%)",
    )
    young_zero = f10.zero_ue_fraction("young")
    old_zero = f10.zero_ue_fraction("old")
    # Obs 10: young failures that DO see errors see far more of them.
    young_cdf = f10.uncorrectable["young"]
    old_cdf = f10.uncorrectable["old"]
    young_p90 = young_cdf.quantile(0.9)
    old_p90 = old_cdf.quantile(0.9)
    r10 = ObservationResult(
        10,
        "young failures, when symptomatic, see far higher error counts",
        holds=young_p90 >= old_p90,
        evidence=(
            f"90th pct cumulative UEs: young {young_p90:.0f} vs old {old_p90:.0f}; "
            f"zero-UE shares {young_zero:.2f}/{old_zero:.2f}"
        ),
    )
    return [r9, r10]


def _obs11_error_ramp(trace: FleetTrace) -> ObservationResult:
    f11 = figure11(trace)
    young = f11.prob_within["young"]
    old = f11.prob_within["old"]
    p2 = np.nanmax([young[1], old[1]])
    base = max(float(f11.baseline[1]), 1e-5)
    return ObservationResult(
        11,
        "error incidence rises dramatically in the last two days before a "
        "failure",
        holds=p2 > 5 * base,
        evidence=f"P(UE within last 2d) up to {p2:.2f} vs baseline {base:.3f}",
    )


def _obs12_13_prediction(
    trace: FleetTrace, spec: ModelSpec, n_splits: int, seed: int
) -> list[ObservationResult]:
    dataset = build_prediction_dataset(trace, lookahead=1)
    res = evaluate_model(dataset, spec, n_splits=n_splits, seed=seed)
    ages = dataset.age_days[res.oof_index]
    young_mask = ages <= INFANCY_DAYS
    try:
        auc_young = roc_auc_score(
            res.oof_true[young_mask], res.oof_score[young_mask]
        )
        auc_old = roc_auc_score(
            res.oof_true[~young_mask], res.oof_score[~young_mask]
        )
    except ValueError:
        auc_young = auc_old = float("nan")
    f16 = figure16(trace, spec=spec, seed=seed)
    young_top = [n for n, _ in f16.young.top(10)]
    old_top = [n for n, _ in f16.old.top(10)]
    r12 = ObservationResult(
        12,
        "the important features differ between young and old failures",
        holds=young_top != old_top,
        evidence=(
            "unique to young top-10: "
            f"{sorted(set(young_top) - set(old_top)) or '(ordering only)'}; "
            "unique to old top-10: "
            f"{sorted(set(old_top) - set(young_top)) or '(ordering only)'}"
        ),
    )
    r13 = ObservationResult(
        13,
        "infant failures are more predictable than mature ones",
        holds=bool(np.isnan(auc_young)) or auc_young > auc_old,
        evidence=f"AUC young {auc_young:.3f} vs old {auc_old:.3f}",
    )
    return [r12, r13]


def check_observations(
    trace: FleetTrace,
    include_ml: bool = True,
    spec: ModelSpec | None = None,
    n_splits: int = 4,
    seed: int = 0,
) -> ObservationReport:
    """Audit a trace against the paper's Observations 1-13.

    Parameters
    ----------
    trace:
        The fleet to audit.
    include_ml:
        Include Observations 12-13 (requires cross-validated training —
        minutes, not seconds).
    spec:
        Model used for the ML observations (default: the forest).
    """
    report = ObservationReport()
    report.results.extend(_obs1_2_correlations(trace))
    report.results.append(_obs3_swap_latency(trace))
    report.results.extend(_obs4_5_repairs(trace))
    report.results.extend(_obs6_7_infant_mortality(trace))
    report.results.append(_obs8_pe_limit(trace))
    report.results.extend(_obs9_10_error_visibility(trace))
    report.results.append(_obs11_error_ramp(trace))
    if include_ml:
        spec = spec or default_model_zoo(seed)[-1]
        report.results.extend(_obs12_13_prediction(trace, spec, n_splits, seed))
    report.results.sort(key=lambda r: r.number)
    return report
