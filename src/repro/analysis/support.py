"""Shared helpers for the per-table/figure analysis functions.

The characterization figures repeatedly need two joins that the paper
performs between its two logs:

- the telemetry state of a drive *at the moment of a failure* (cumulative
  error counts, P/E cycles — Figures 8, 9, 10);
- the sequence of operational periods of each drive, including censored
  ones (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import DriveDayDataset, DriveTable, SwapLog

__all__ = [
    "value_at_failure",
    "operational_periods",
    "OperationalPeriods",
    "drive_slices",
]


def drive_slices(records: DriveDayDataset) -> dict[int, tuple[int, int]]:
    """Map drive_id -> (row_start, row_stop) in the sorted dataset."""
    ids, offsets = records.drive_groups()
    return {int(ids[i]): (int(offsets[i]), int(offsets[i + 1])) for i in range(len(ids))}


def value_at_failure(
    records: DriveDayDataset,
    swaps: SwapLog,
    values: np.ndarray,
    cumulative: bool = True,
) -> np.ndarray:
    """Per swap event: a per-row quantity evaluated at the failure day.

    Parameters
    ----------
    records:
        Telemetry dataset (sorted by drive, age).
    swaps:
        Swap log; one output value per event.
    values:
        Per-row quantity aligned with ``records`` (e.g. a cumulative error
        count from :meth:`DriveDayDataset.grouped_cumsum`).
    cumulative:
        If True, the *last recorded row at or before* the failure age is
        used (right for cumulative counters).  If False, only a row exactly
        on the failure day qualifies, else ``nan``.

    Returns
    -------
    Array of length ``len(swaps)``; ``nan`` where no qualifying record
    exists (e.g. the failure day was never logged).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] != len(records):
        raise ValueError("values must align with records rows")
    out = np.full(len(swaps), np.nan)
    slices = drive_slices(records)
    ages = records["age_days"]
    for i in range(len(swaps)):
        span = slices.get(int(swaps.drive_id[i]))
        if span is None:
            continue
        s, e = span
        a = ages[s:e]
        pos = int(np.searchsorted(a, swaps.failure_age[i], side="right")) - 1
        if pos < 0:
            continue
        if not cumulative and a[pos] != swaps.failure_age[i]:
            continue
        out[i] = values[s + pos]
    return out


@dataclass(frozen=True)
class OperationalPeriods:
    """All operational periods of the fleet (Figure 3's unit of analysis).

    ``length`` is ``nan`` for censored periods (those not observed to end
    in a failure before the trace horizon).
    """

    drive_id: np.ndarray
    start_age: np.ndarray
    length: np.ndarray

    @property
    def censored_fraction(self) -> float:
        """Share of periods that never end within the trace."""
        return float(np.isnan(self.length).mean()) if len(self.length) else 0.0

    def __len__(self) -> int:
        return len(self.drive_id)


def operational_periods(drives: DriveTable, swaps: SwapLog) -> OperationalPeriods:
    """Reconstruct every operational period from the two event tables.

    A drive contributes one period per swap event (``start -> failure``)
    plus, if its last event re-entered the field (or it never failed), one
    censored period running to the end of its observation window.
    """
    ids: list[int] = []
    starts: list[float] = []
    lengths: list[float] = []
    # Group swap events per drive, ordered by failure age.
    order = np.lexsort((swaps.failure_age, swaps.drive_id))
    by_drive: dict[int, list[int]] = {}
    for j in order:
        by_drive.setdefault(int(swaps.drive_id[j]), []).append(int(j))

    for i in range(len(drives)):
        did = int(drives.drive_id[i])
        end_age = float(drives.end_of_observation_age[i])
        events = by_drive.get(did, [])
        cursor = 0.0
        for j in events:
            ids.append(did)
            starts.append(float(swaps.operational_start_age[j]))
            lengths.append(float(swaps.failure_age[j] - swaps.operational_start_age[j]))
            cursor = swaps.reentry_age[j]
        if not events:
            ids.append(did)
            starts.append(0.0)
            lengths.append(np.nan)
        elif not np.isnan(cursor) and cursor < end_age:
            # The drive returned from its last repair and ran censored.
            ids.append(did)
            starts.append(float(cursor))
            lengths.append(np.nan)
    return OperationalPeriods(
        drive_id=np.asarray(ids, dtype=np.int32),
        start_age=np.asarray(starts),
        length=np.asarray(lengths),
    )
