"""Reproduction of the paper's Tables 1-8.

Each ``tableN`` function computes the same statistic the paper reports,
over a (simulated) trace, and returns a structured result with a ``render``
method producing a plain-text table shaped like the paper's.  The ML tables
(6-8) run the full cross-validated prediction protocol and are accordingly
expensive; their fleet/CV sizes are parameters.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..data import MODEL_NAMES, downsample_majority
from ..data.fields import ERROR_TYPES
from ..ml import roc_auc_score
from ..core import (
    INFANCY_DAYS,
    ModelSpec,
    build_prediction_dataset,
    default_model_zoo,
    error_event_labels,
    evaluate_model,
    evaluate_model_zoo,
)
from ..core.features import build_features
from ..core.labeling import label_dataset
from ..core.pipeline import PredictionDataset
from ..simulator import FleetTrace
from ..stats import spearman_matrix

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "Table5Result",
    "Table6Result",
    "Table7Result",
    "Table8Result",
]


# --------------------------------------------------------------------- Table 1
#: Error types listed in the paper's Table 1 (erase errors are omitted
#: there; Table 2 covers them).
TABLE1_ERRORS: tuple[str, ...] = tuple(
    e for e in ERROR_TYPES if e != "erase_error"
)


@dataclass
class Table1Result:
    """Proportion of drive days that exhibit each error type."""

    proportions: dict[str, dict[str, float]]  # error -> model name -> frac

    def render(self) -> str:
        header = f"{'Error type':<22s}" + "".join(f"{m:>12s}" for m in MODEL_NAMES)
        lines = [header]
        for err in TABLE1_ERRORS:
            row = f"{err.replace('_', ' '):<22s}"
            for m in MODEL_NAMES:
                row += f"{self.proportions[err][m]:>12.6f}"
            lines.append(row)
        return "\n".join(lines)


def table1(trace: FleetTrace) -> Table1Result:
    """Table 1: fraction of drive-days carrying each error type, per model."""
    records = trace.records
    model_col = records["model"]
    out: dict[str, dict[str, float]] = {}
    masks = {name: model_col == i for i, name in enumerate(MODEL_NAMES)}
    for err in TABLE1_ERRORS:
        positive = records[err] > 0
        out[err] = {
            name: float(positive[mask].mean()) if np.any(mask) else float("nan")
            for name, mask in masks.items()
        }
    return Table1Result(proportions=out)


# --------------------------------------------------------------------- Table 2
#: Measure order of the paper's Table 2 correlation matrix.
TABLE2_MEASURES: tuple[str, ...] = (
    "erase_error",
    "final_read_error",
    "final_write_error",
    "meta_error",
    "read_error",
    "response_error",
    "timeout_error",
    "uncorrectable_error",
    "write_error",
    "pe_cycles",
    "bad_block_count",
    "drive_age",
)


@dataclass
class Table2Result:
    """Spearman correlations among per-drive cumulative measures."""

    names: list[str]
    rho: np.ndarray

    def value(self, a: str, b: str) -> float:
        return float(self.rho[self.names.index(a), self.names.index(b)])

    def render(self) -> str:
        short = [n.replace("_error", "").replace("_", " ")[:10] for n in self.names]
        lines = [f"{'':<12s}" + "".join(f"{s:>11s}" for s in short)]
        for i, name in enumerate(short):
            row = f"{name:<12s}"
            for j in range(len(short)):
                if j > i:
                    row += f"{'':>11s}"
                else:
                    row += f"{self.rho[i, j]:>11.2f}"
            lines.append(row)
        return "\n".join(lines)


def table2(trace: FleetTrace, units: str = "drive-days") -> Table2Result:
    """Table 2: Spearman matrix over cumulative error measures.

    Parameters
    ----------
    units:
        ``"drive-days"`` (default) ranks the cumulative counters across all
        daily observations — the paper's 40M-row setting, where within-drive
        growth produces the strong age/PE couplings of its Table 2.
        ``"drives"`` ranks one final cumulative value per drive instead.
    """
    records = trace.records
    cols: dict[str, np.ndarray] = {}
    if units == "drive-days":
        for err in TABLE2_MEASURES[:9]:
            cols[err] = records.grouped_cumsum(err)
        cols["pe_cycles"] = np.asarray(records["pe_cycles"], dtype=np.float64)
        cols["bad_block_count"] = (
            records["grown_bad_blocks"].astype(np.float64)
            + records["factory_bad_blocks"].astype(np.float64)
        )
        cols["drive_age"] = records["age_days"].astype(np.float64)
    elif units == "drives":
        for err in TABLE2_MEASURES[:9]:
            cols[err] = records.grouped_sum(err)
        cols["pe_cycles"] = records.grouped_last("pe_cycles")
        cols["bad_block_count"] = (
            records.grouped_last("grown_bad_blocks").astype(np.float64)
            + records.grouped_last("factory_bad_blocks").astype(np.float64)
        )
        cols["drive_age"] = records.grouped_last("age_days").astype(np.float64)
    else:
        raise ValueError("units must be 'drive-days' or 'drives'")
    names, rho = spearman_matrix(cols)
    return Table2Result(names=names, rho=rho)


# --------------------------------------------------------------------- Table 3
@dataclass
class Table3Result:
    """High-level failure incidence per model."""

    n_failures: dict[str, int]
    pct_failed: dict[str, float]

    def render(self) -> str:
        lines = [f"{'Model':<8s}{'#Failures':>10s}{'%Failed':>9s}"]
        for name in (*MODEL_NAMES, "All"):
            lines.append(
                f"{name:<8s}{self.n_failures[name]:>10d}{self.pct_failed[name]:>9.2f}"
            )
        return "\n".join(lines)


def table3(trace: FleetTrace) -> Table3Result:
    """Table 3: number of failures and % of drives failing at least once."""
    n_failures: dict[str, int] = {}
    pct: dict[str, float] = {}
    for i, name in enumerate(MODEL_NAMES):
        sw = trace.swaps.for_model(i)
        n_drives = trace.drives.n_drives(i)
        n_failures[name] = len(sw)
        failed = len(np.unique(sw.drive_id))
        pct[name] = 100.0 * failed / n_drives if n_drives else float("nan")
    n_failures["All"] = len(trace.swaps)
    total_failed = len(np.unique(trace.swaps.drive_id))
    pct["All"] = 100.0 * total_failed / max(len(trace.drives), 1)
    return Table3Result(n_failures=n_failures, pct_failed=pct)


# --------------------------------------------------------------------- Table 4
@dataclass
class Table4Result:
    """Distribution of lifetime failure counts."""

    counts: np.ndarray  # index k: number of drives with exactly k failures
    pct_of_drives: np.ndarray
    pct_of_failed: np.ndarray

    def render(self) -> str:
        lines = [f"{'#Failures':>10s}{'% of drives':>14s}{'% of failed':>14s}"]
        for k in range(len(self.counts)):
            failed = f"{self.pct_of_failed[k]:>14.3f}" if k > 0 else f"{'—':>14s}"
            lines.append(f"{k:>10d}{self.pct_of_drives[k]:>14.3f}{failed}")
        return "\n".join(lines)


def table4(trace: FleetTrace) -> Table4Result:
    """Table 4: lifetime failure-count distribution (0, 1, 2, ...)."""
    per_drive = trace.swaps.failures_per_drive()
    n_drives = len(trace.drives)
    max_k = max(per_drive.values(), default=0)
    counts = np.zeros(max_k + 1, dtype=np.int64)
    for c in per_drive.values():
        counts[c] += 1
    counts[0] = n_drives - len(per_drive)
    n_failed = counts[1:].sum()
    pct_drives = 100.0 * counts / max(n_drives, 1)
    pct_failed = np.zeros_like(pct_drives)
    if n_failed:
        pct_failed[1:] = 100.0 * counts[1:] / n_failed
    return Table4Result(
        counts=counts, pct_of_drives=pct_drives, pct_of_failed=pct_failed
    )


# --------------------------------------------------------------------- Table 5
#: Repair horizons of Table 5, in days.
TABLE5_HORIZONS: tuple[int, ...] = (10, 30, 100, 365, 730, 1095)


@dataclass
class Table5Result:
    """% of swapped drives re-entering within n days (per model)."""

    pct_of_swapped: dict[str, dict[str, float]]  # model -> horizon label -> %
    pct_of_all: dict[str, dict[str, float]]
    horizons: tuple[str, ...]

    def render(self) -> str:
        lines = [f"{'Model':<8s}" + "".join(f"{h:>16s}" for h in self.horizons)]
        for name in MODEL_NAMES:
            row = f"{name:<8s}"
            for h in self.horizons:
                row += (
                    f"{self.pct_of_swapped[name][h]:>9.1f}"
                    f" ({self.pct_of_all[name][h]:>4.2f})"
                )
            lines.append(row)
        return "\n".join(lines)


def table5(trace: FleetTrace) -> Table5Result:
    """Table 5: repair completion within n days, per drive model."""
    horizons = tuple(f"{h}d" for h in TABLE5_HORIZONS) + ("ever",)
    pct_sw: dict[str, dict[str, float]] = {}
    pct_all: dict[str, dict[str, float]] = {}
    for i, name in enumerate(MODEL_NAMES):
        sw = trace.swaps.for_model(i)
        n_drives = trace.drives.n_drives(i)
        ttr = sw.time_to_repair()
        n_swapped_drives = len(np.unique(sw.drive_id))
        row_sw: dict[str, float] = {}
        row_all: dict[str, float] = {}
        n_swaps = len(sw)
        for h, label in zip(TABLE5_HORIZONS, horizons):
            done = float(np.count_nonzero(ttr <= h))
            row_sw[label] = 100.0 * done / n_swaps if n_swaps else float("nan")
            row_all[label] = 100.0 * done / n_drives if n_drives else float("nan")
        done_ever = float(np.count_nonzero(~np.isnan(ttr)))
        row_sw["ever"] = 100.0 * done_ever / n_swaps if n_swaps else float("nan")
        row_all["ever"] = 100.0 * done_ever / n_drives if n_drives else float("nan")
        pct_sw[name] = row_sw
        pct_all[name] = row_all
    return Table5Result(pct_of_swapped=pct_sw, pct_of_all=pct_all, horizons=horizons)


# --------------------------------------------------------------------- Table 6
@dataclass
class Table6Result:
    """ROC AUC of every classifier across lookahead windows."""

    lookaheads: tuple[int, ...]
    auc_mean: dict[str, dict[int, float]]  # model name -> N -> mean AUC
    auc_std: dict[str, dict[int, float]]

    def render(self) -> str:
        lines = [
            f"{'N (lookahead days)':<20s}"
            + "".join(f"{n:>16d}" for n in self.lookaheads)
        ]
        for name in self.auc_mean:
            row = f"{name:<20s}"
            for n in self.lookaheads:
                row += f"  {self.auc_mean[name][n]:.3f} ± {self.auc_std[name][n]:.3f}"
            lines.append(row)
        return "\n".join(lines)

    def best_model(self, lookahead: int) -> str:
        """Name of the best classifier at one lookahead."""
        return max(self.auc_mean, key=lambda m: self.auc_mean[m][lookahead])


def table6(
    trace: FleetTrace,
    lookaheads: Sequence[int] = (1, 2, 3, 7),
    specs: tuple[ModelSpec, ...] | None = None,
    n_splits: int = 5,
    seed: int = 0,
) -> Table6Result:
    """Table 6: cross-validated AUC of the six classifiers for each N."""
    specs = specs or default_model_zoo(seed)
    auc_mean: dict[str, dict[int, float]] = {s.name: {} for s in specs}
    auc_std: dict[str, dict[int, float]] = {s.name: {} for s in specs}
    for n in lookaheads:
        dataset = build_prediction_dataset(trace, lookahead=n)
        results = evaluate_model_zoo(dataset, specs, n_splits=n_splits, seed=seed)
        for name, res in results.items():
            auc_mean[name][n] = res.mean_auc
            auc_std[name][n] = res.std_auc
    return Table6Result(
        lookaheads=tuple(lookaheads), auc_mean=auc_mean, auc_std=auc_std
    )


# --------------------------------------------------------------------- Table 7
@dataclass
class Table7Result:
    """Cross-model transfer AUC matrix (random forest, N=1)."""

    train_labels: tuple[str, ...]
    test_labels: tuple[str, ...]
    auc: np.ndarray  # (test, train)

    def render(self) -> str:
        head = "Test / Train"
        lines = [f"{head:<14s}" + "".join(f"{t:>10s}" for t in self.train_labels)]
        for i, name in enumerate(self.test_labels):
            lines.append(
                f"{name:<14s}" + "".join(f"{self.auc[i, j]:>10.3f}" for j in range(len(self.train_labels)))
            )
        return "\n".join(lines)


def table7(
    trace: FleetTrace,
    spec: ModelSpec | None = None,
    lookahead: int = 1,
    n_splits: int = 5,
    seed: int = 0,
) -> Table7Result:
    """Table 7: train the forest on one drive model, test on another.

    Diagonal cells are cross-validated (as the paper's italics indicate);
    off-diagonal cells train on all rows of the training model (downsampled)
    and test on the full data of the test model.  The last column trains on
    all three models jointly (cross-validated).
    """
    spec = spec or default_model_zoo(seed)[-1]
    dataset = build_prediction_dataset(trace, lookahead=lookahead)
    per_model = {i: dataset.for_model(i) for i in range(len(MODEL_NAMES))}
    rng = np.random.default_rng(seed)
    train_labels = (*MODEL_NAMES, "All")
    auc = np.full((len(MODEL_NAMES), len(train_labels)), np.nan)

    # Off-diagonal transfer cells.
    fitted = {}
    for j in range(len(MODEL_NAMES)):
        src = per_model[j]
        keep = downsample_majority(src.y, ratio=1.0, rng=rng)
        model = spec.factory()
        model.fit(src.X[keep], src.y[keep])
        fitted[j] = model
    for i in range(len(MODEL_NAMES)):
        tgt = per_model[i]
        for j in range(len(MODEL_NAMES)):
            if i == j:
                res = evaluate_model(tgt, spec, n_splits=n_splits, seed=seed)
                auc[i, j] = res.mean_auc
            else:
                scores = fitted[j].predict_proba(tgt.X)
                auc[i, j] = roc_auc_score(tgt.y, scores)
        # "All" column: CV over the pooled dataset, scored on this model's
        # rows only (out-of-fold).
        res_all = evaluate_model(dataset, spec, n_splits=n_splits, seed=seed)
        mask = dataset.model[res_all.oof_index] == i
        auc[i, len(MODEL_NAMES)] = roc_auc_score(
            res_all.oof_true[mask], res_all.oof_score[mask]
        )
    return Table7Result(
        train_labels=train_labels, test_labels=MODEL_NAMES, auc=auc
    )


# --------------------------------------------------------------------- Table 8
#: Error targets of the paper's Table 8, in its row order.
TABLE8_TARGETS: tuple[str, ...] = (
    "bad_block",
    "erase_error",
    "final_read_error",
    "final_write_error",
    "meta_error",
    "read_error",
    "response_error",
    "timeout_error",
    "uncorrectable_error",
    "write_error",
)


@dataclass
class Table8Result:
    """AUC of error-type prediction, combined / young / old (N=2)."""

    auc: dict[str, dict[str, float]]  # target -> partition -> AUC (nan = n/a)

    def render(self) -> str:
        parts = ("combined", "young", "old")
        lines = [f"{'Error':<16s}" + "".join(f"{p:>10s}" for p in parts)]
        for target, row in self.auc.items():
            cells = "".join(
                f"{row[p]:>10.3f}" if not np.isnan(row[p]) else f"{'—':>10s}"
                for p in parts
            )
            lines.append(f"{target.replace('_error', ''):<16s}{cells}")
        return "\n".join(lines)


def table8(
    trace: FleetTrace,
    spec: ModelSpec | None = None,
    lookahead: int = 2,
    targets: Sequence[str] = TABLE8_TARGETS,
    n_splits: int = 5,
    seed: int = 0,
    min_positives: int = 12,
) -> Table8Result:
    """Table 8: random-forest AUC predicting each error type, N=2.

    Targets whose partition holds fewer than ``min_positives`` positive
    rows are reported as ``nan`` (the paper likewise marks response errors
    "too rare to predict" per age group).
    """
    spec = spec or default_model_zoo(seed)[-1]
    records = trace.records
    frame = build_features(records)
    _, keep = label_dataset(records, trace.swaps, 1)
    out: dict[str, dict[str, float]] = {}
    age = frame.age_days
    for target in targets:
        y_all = error_event_labels(records, target, lookahead)
        row: dict[str, float] = {}
        for part, mask in (
            ("combined", np.ones(len(frame), dtype=bool)),
            ("young", age <= INFANCY_DAYS),
            ("old", age > INFANCY_DAYS),
        ):
            m = mask & keep
            y = y_all[m]
            if y.sum() < min_positives or y.sum() == y.shape[0]:
                row[part] = float("nan")
                continue
            ds = PredictionDataset(
                X=frame.X[m],
                y=y,
                groups=frame.drive_id[m],
                age_days=age[m],
                model=frame.model[m],
                feature_names=frame.names,
                lookahead=lookahead,
            )
            try:
                res = evaluate_model(ds, spec, n_splits=n_splits, seed=seed)
            except ValueError:
                row[part] = float("nan")
                continue
            row[part] = res.mean_auc
        out[target] = row
    return Table8Result(auc=out)
