"""Dead-letter queue and accepted-event journal for the serving path.

When the admission guard (:mod:`repro.serve.guard`) refuses an event —
late, malformed, schema-violating, conflicting, or shed under load — the
event is not silently dropped: it is appended to a **dead-letter queue**,
an append-only JSONL file where every entry carries the fault class, the
drive id, the watermark the event was judged against, and the event
payload itself (or the raw line, when it never parsed).  Accepted events
are optionally appended to a matching **journal**.

Together the two files make faults *replayable*: ``serve heal`` merges
the journal with the healable dead letters, restores per-drive age order,
deduplicates exact duplicates, and re-admits everything into a fresh
feature store — producing scores byte-identical to a run that never saw
the faults (DESIGN.md §14).  Events are stored canonically (Python
scalars, exact JSON float round-trip), so the healed feature rows are
bit-for-bit the rows a clean ingest would have produced.

Fault classes:

=============  ==========================================================
``malformed``  the line never parsed, or required fields are missing
``schema``     a field is non-numeric, non-finite, negative, or a
               collector sentinel (reuses the PR-1 validation bounds)
``late``       the event's age is behind the drive's absorbed watermark
``conflict``   same drive-day as the last absorbed event but a different
               payload (ambiguous without an upstream source of truth)
``shed``       diverted by backpressure load-shedding, never validated
=============  ==========================================================

``late`` and ``shed`` events heal from the DLQ alone; ``schema`` and
``conflict`` events heal when ``--refetch`` provides the upstream trace
(keys are intact, the payload is re-read); ``malformed`` entries have no
usable keys and stay dead.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..data.fields import FIELD_DTYPES

__all__ = [
    "FAULT_CLASSES",
    "HEALABLE_FAULTS",
    "REFETCHABLE_FAULTS",
    "DeadLetterError",
    "DeadLetterEntry",
    "DeadLetterQueue",
    "EventJournal",
    "HealPlan",
    "canonical_event",
    "event_digest",
    "build_heal_plan",
]

#: Serve-path fault classes, in documentation order.
FAULT_CLASSES = ("malformed", "schema", "late", "conflict", "shed")

#: Faults whose DLQ payload is the intact original event.
HEALABLE_FAULTS = frozenset({"late", "shed"})

#: Faults healable only by re-reading the payload from upstream
#: (``serve heal --refetch``): keys survive, the payload does not.
REFETCHABLE_FAULTS = frozenset({"schema", "conflict"})


class DeadLetterError(RuntimeError):
    """A DLQ or journal file is unreadable or inconsistent."""


def canonical_event(record: Mapping[str, Any]) -> dict[str, Any]:
    """Normalize a record to plain Python scalars in registry order.

    NumPy scalars become ``int``/``float`` per the field registry dtype,
    so the JSON round-trip is exact (``repr`` floats) and two copies of
    the same drive-day always serialize to the same bytes.  Unknown keys
    are preserved (as-is) after the registry fields.

    Values the registry dtype cannot absorb — a NaN in an integer
    counter, a string where a number belongs — are kept verbatim: the
    DLQ must be able to record *any* sick event, and the admission
    guard (not this normalizer) is where such payloads get rejected.
    """
    out: dict[str, Any] = {}
    for name, dtype in FIELD_DTYPES.items():
        if name not in record:
            continue
        value = record[name]
        try:
            if dtype.kind in "iu":
                coerced = int(value)
                # int(7.5) would silently change the payload; keep the
                # original so the digest reflects what actually arrived.
                if float(coerced) != float(value):
                    raise ValueError
                out[name] = coerced
            else:
                out[name] = float(value)
        except (TypeError, ValueError, OverflowError):
            out[name] = value
    for name in record:
        if name not in out:
            out[name] = record[name]
    return out


def event_digest(event: Mapping[str, Any]) -> str:
    """sha256 of the canonical JSON payload — the duplicate/conflict key."""
    payload = json.dumps(
        canonical_event(event), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class DeadLetterEntry:
    """One diverted event, as recorded in the DLQ JSONL."""

    seq: int
    fault: str
    reason: str
    drive_id: int | None = None
    age_days: int | None = None
    watermark: int | None = None
    event: dict[str, Any] | None = None
    raw: str | None = None
    source: str = "guard"

    def to_dict(self) -> dict[str, Any]:
        body: dict[str, Any] = {
            "seq": self.seq,
            "fault": self.fault,
            "reason": self.reason,
            "drive_id": self.drive_id,
            "age_days": self.age_days,
            "watermark": self.watermark,
            "source": self.source,
        }
        if self.event is not None:
            body["event"] = self.event
        if self.raw is not None:
            body["raw"] = self.raw
        return body

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "DeadLetterEntry":
        try:
            return cls(
                seq=int(body["seq"]),
                fault=str(body["fault"]),
                reason=str(body.get("reason", "")),
                drive_id=(
                    None if body.get("drive_id") is None else int(body["drive_id"])
                ),
                age_days=(
                    None if body.get("age_days") is None else int(body["age_days"])
                ),
                watermark=(
                    None
                    if body.get("watermark") is None
                    else int(body["watermark"])
                ),
                event=body.get("event"),
                raw=body.get("raw"),
                source=str(body.get("source", "guard")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DeadLetterError(f"malformed dead-letter entry ({exc})") from None


class _JsonlAppender:
    """Append-only JSONL file: lazy open, line-buffered, fsync-free.

    Each ``append`` writes one complete line and flushes, so a crashed
    process leaves at most a prefix of whole lines — readers skip
    nothing and ``heal`` sees every fault recorded before the crash.

    Opening an existing non-empty file resumes ``seq`` numbering from
    its line count, so appends from a resumed run never collide with
    the sequence numbers already on disk — the ``(drive_id, age_days,
    seq)`` heal ordering stays a total order across restarts.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None
        self.appended = 0
        if self.path.exists():
            with open(self.path) as fh:
                self.appended = sum(1 for line in fh if line.strip())

    def append(self, body: Mapping[str, Any]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(body, sort_keys=True) + "\n")
        self._fh.flush()
        self.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _read_jsonl(path: str | Path, what: str) -> list[dict[str, Any]]:
    path = Path(path)
    if not path.exists():
        raise DeadLetterError(f"{what} file {path} does not exist")
    out = []
    with open(path) as fh:
        for n, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except ValueError as exc:
                raise DeadLetterError(
                    f"{what} file {path} line {n} is not valid JSON ({exc})"
                ) from None
    return out


class DeadLetterQueue(_JsonlAppender):
    """Append-only JSONL sink for diverted events.

    ``seq`` numbers are assigned monotonically (resuming from the line
    count of an existing file) and recorded in every entry, so the heal
    ordering ``(drive_id, age_days, seq)`` is deterministic even across
    equal drive-days and restarts.
    """

    def __init__(self, path: str | Path):
        super().__init__(path)
        self.by_fault: dict[str, int] = {}

    def divert(
        self,
        fault: str,
        reason: str,
        *,
        event: Mapping[str, Any] | None = None,
        raw: str | None = None,
        drive_id: int | None = None,
        age_days: int | None = None,
        watermark: int | None = None,
        source: str = "guard",
    ) -> DeadLetterEntry:
        if fault not in FAULT_CLASSES:
            raise DeadLetterError(
                f"unknown fault class {fault!r}; choose from "
                f"{', '.join(FAULT_CLASSES)}"
            )
        entry = DeadLetterEntry(
            seq=self.appended,
            fault=fault,
            reason=reason,
            drive_id=drive_id,
            age_days=age_days,
            watermark=watermark,
            event=None if event is None else canonical_event(event),
            raw=raw,
            source=source,
        )
        self.append(entry.to_dict())
        self.by_fault[fault] = self.by_fault.get(fault, 0) + 1
        return entry

    @staticmethod
    def read(path: str | Path) -> list[DeadLetterEntry]:
        """Load every entry of a DLQ file, in append order."""
        return [
            DeadLetterEntry.from_dict(body)
            for body in _read_jsonl(path, "dead-letter queue")
        ]


class EventJournal(_JsonlAppender):
    """Append-only JSONL journal of accepted (admitted) events."""

    def record(self, event: Mapping[str, Any]) -> None:
        self.append({"seq": self.appended, "event": canonical_event(event)})

    @staticmethod
    def read(path: str | Path) -> list[dict[str, Any]]:
        """Accepted events in admission order (each with its ``seq``)."""
        out = []
        for body in _read_jsonl(path, "journal"):
            if "event" not in body or "seq" not in body:
                raise DeadLetterError(
                    f"journal file {path} entry is missing seq/event: {body}"
                )
            out.append(body)
        return out


@dataclass
class HealPlan:
    """The deterministic re-admission plan built by :func:`build_heal_plan`.

    ``events`` is the healed stream: accepted + healed dead letters,
    exact duplicates dropped, sorted by ``(drive_id, age_days, seq)`` —
    the canonical trace order, so re-ingesting it into a fresh store
    reproduces a fault-free run bit-for-bit.
    """

    events: list[dict[str, Any]] = field(default_factory=list)
    healed_by_fault: dict[str, int] = field(default_factory=dict)
    duplicates_dropped: int = 0
    conflicts_resolved: int = 0
    unhealable: list[DeadLetterEntry] = field(default_factory=list)

    @property
    def n_healed(self) -> int:
        return sum(self.healed_by_fault.values())


def _finite_payload(event: Mapping[str, Any]) -> bool:
    return all(
        not (isinstance(v, float) and not math.isfinite(v))
        for v in event.values()
    )


def build_heal_plan(
    journal_events: Iterable[Mapping[str, Any]],
    entries: Iterable[DeadLetterEntry],
    refetch: Mapping[tuple[int, int], Mapping[str, Any]] | None = None,
) -> HealPlan:
    """Merge journal + dead letters into a deterministic healed stream.

    - ``late``/``shed`` entries re-admit their stored payload;
    - ``schema``/``conflict`` entries re-admit the upstream payload from
      ``refetch`` (a ``(drive_id, age_days) → record`` mapping) when
      provided, and are unhealable otherwise;
    - ``malformed`` entries are always unhealable (no usable keys);
    - exact duplicates (same drive-day, same canonical payload) collapse
      to the earliest occurrence; same drive-day with differing payloads
      resolves to the refetched truth when available and is otherwise a
      conflict kept from the journal side.

    The result is sorted by ``(drive_id, age_days, seq)`` — the order
    :func:`repro.data.iter_drive_day_chunks` streams a clean trace in —
    so replaying the plan reproduces per-drive cumulative state exactly.
    """
    plan = HealPlan()
    # (drive_id, age_days) -> (sort_seq, event, digest, from_journal)
    chosen: dict[tuple[int, int], tuple[int, dict[str, Any], str, bool]] = {}

    def consider(
        event: Mapping[str, Any], seq: int, from_journal: bool
    ) -> bool:
        """Fold one candidate into the plan; True if it survived."""
        body = canonical_event(event)
        key = (int(body["drive_id"]), int(body["age_days"]))
        digest = event_digest(body)
        existing = chosen.get(key)
        if existing is None:
            chosen[key] = (seq, body, digest, from_journal)
            return True
        if existing[2] == digest:
            plan.duplicates_dropped += 1
            return False
        # Differing payloads for one drive-day: prefer the upstream
        # truth when we can refetch it, else keep the journal side.
        if refetch is not None and key in refetch:
            truth = canonical_event(refetch[key])
            chosen[key] = (min(existing[0], seq), truth, event_digest(truth), True)
            plan.conflicts_resolved += 1
            return True
        plan.conflicts_resolved += 1
        return existing[3] is from_journal

    for body in journal_events:
        consider(body["event"], int(body["seq"]), True)

    for entry in sorted(entries, key=lambda e: e.seq):
        # Resolve the payload to re-admit; None means unhealable.
        payload: Mapping[str, Any] | None = None
        if entry.fault in HEALABLE_FAULTS and entry.event is not None:
            payload = entry.event
        elif (
            entry.fault in REFETCHABLE_FAULTS
            and refetch is not None
            and entry.drive_id is not None
            and entry.age_days is not None
        ):
            truth = refetch.get((entry.drive_id, entry.age_days))
            if truth is not None and _finite_payload(canonical_event(truth)):
                payload = truth
        if payload is None:
            plan.unhealable.append(entry)
            continue
        # A False return means the drive-day was already covered (an
        # exact duplicate, or a conflict that kept the other side) —
        # still accounted as healed: the event needs no further action.
        consider(payload, 10**9 + entry.seq, False)
        plan.healed_by_fault[entry.fault] = (
            plan.healed_by_fault.get(entry.fault, 0) + 1
        )

    plan.events = [
        body
        for _, body, _, _ in sorted(
            chosen.values(),
            key=lambda c: (int(c[1]["drive_id"]), int(c[1]["age_days"]), c[0]),
        )
    ]
    return plan
