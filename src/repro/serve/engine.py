"""Online scoring engine: ingest telemetry, micro-batch, predict.

The request loop of :mod:`repro.serve`: every incoming drive-day event
is folded into the :class:`~repro.serve.feature_store.FeatureStore`
(producing its feature row through the shared kernel) and queued as a
scoring request; the :class:`~repro.serve.batching.MicroBatcher` flushes
pending requests by size/wait bounds into one vectorized
:meth:`~repro.core.predictor.FailurePredictor.predict_proba_matrix`
call.  Large flushed batches (backfills) optionally fan out across
:mod:`repro.parallel` workers under a :mod:`repro.resilience`
supervision policy — scores are bit-identical for any batch split and
worker count, so batching and parallelism are pure throughput knobs.

Instrumentation (``repro.serve.*`` spans, ``repro_serve_*`` metrics)
rides the ambient :mod:`repro.obs` collectors, Prometheus-exportable
like every other stage.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..core.features import feature_names, feature_schema_hash
from ..core.predictor import FailurePredictor
from ..data.io import iter_drive_day_chunks
from ..data.dataset import DriveDayDataset
from ..obs import metrics, tracing
from .batching import BatchPolicy, MicroBatcher
from .feature_store import FeatureStore, SchemaMismatchError

__all__ = ["ScoredEvent", "ReplayResult", "ScoringEngine"]

#: Flushed batches at least this large fan out across workers (when the
#: engine was given ``workers > 1``); smaller batches stay in-process —
#: pool dispatch overhead would dominate.
BACKFILL_MIN_ROWS = 2048


@dataclass(frozen=True)
class ScoredEvent:
    """One scored drive-day."""

    drive_id: int
    age_days: int
    probability: float


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of streaming a trace through the engine."""

    probability: np.ndarray
    n_events: int
    n_batches: int
    elapsed_seconds: float

    @property
    def events_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.n_events / self.elapsed_seconds


class ScoringEngine:
    """Ties the feature store, micro-batcher, and predictor together.

    Parameters
    ----------
    predictor:
        A fitted :class:`FailurePredictor` (typically loaded from the
        :class:`~repro.serve.registry.ModelRegistry`).
    store:
        Feature store to fold events into; a fresh one by default.
    batch_policy:
        Micro-batching bounds; default flushes at 256 requests / 5 ms.
    workers, policy, supervision:
        Execution controls applied to large flushed batches (see
        :data:`BACKFILL_MIN_ROWS`): worker processes for sharded predict
        plus an optional resilience supervision policy.
    clock:
        Injectable monotonic clock (tests, deterministic replays).
    """

    def __init__(
        self,
        predictor: FailurePredictor,
        store: FeatureStore | None = None,
        batch_policy: BatchPolicy | None = None,
        workers: int | None = None,
        policy: Any | None = None,
        supervision: Any | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        names = predictor.feature_names
        if names is None:
            raise ValueError("ScoringEngine needs a fitted predictor")
        if tuple(names) != feature_names():
            raise SchemaMismatchError(
                "predictor was fitted on a different feature layout than "
                f"this build produces (schema {feature_schema_hash()[:12]}…); "
                "retrain or activate a compatible registry version"
            )
        self.predictor = predictor
        # Not `store or ...`: an empty store is falsy via __len__.
        self.store = store if store is not None else FeatureStore()
        self.clock = clock
        self.batcher = MicroBatcher(batch_policy, clock=clock)
        self.workers = workers
        self.policy = policy
        self.supervision = supervision
        self.requests_total = 0
        self.batches_total = 0

    # ------------------------------------------------------------------ ingest
    def ingest(self, record: Mapping[str, Any]) -> np.ndarray:
        """Fold one event into the store without requesting a score."""
        row = self.store.ingest(record)
        metrics.inc(
            "repro_serve_events_total",
            help="Telemetry events absorbed by the serving feature store",
        )
        return row

    # ------------------------------------------------------------------ request loop
    def submit(self, record: Mapping[str, Any]) -> list[ScoredEvent]:
        """Ingest one event and request a score for it.

        Returns the scored events flushed by this submission — usually
        empty until a batch bound trips, then the whole batch at once.
        """
        row = self.ingest(record)
        request = (int(record["drive_id"]), int(record["age_days"]), row)
        self.requests_total += 1
        metrics.inc(
            "repro_serve_requests_total",
            help="Scoring requests accepted by the engine",
        )
        batch = self.batcher.add(request)
        if batch is None:
            return []
        return self._score_batch(batch)

    def poll(self) -> list[ScoredEvent]:
        """Flush by wait-bound only (idle tick of the request loop)."""
        batch = self.batcher.poll()
        if not batch:
            return []
        return self._score_batch(batch)

    def drain(self) -> list[ScoredEvent]:
        """Score everything still pending (stream end / shutdown)."""
        batch = self.batcher.flush()
        if not batch:
            return []
        return self._score_batch(batch)

    def _score_rows(self, X: np.ndarray, ages: np.ndarray) -> np.ndarray:
        """Vectorized predict; fans out only for backfill-sized batches."""
        workers = self.workers if X.shape[0] >= BACKFILL_MIN_ROWS else 1
        return self.predictor.predict_proba_matrix(
            X,
            ages,
            workers=workers,
            policy=self.policy if workers and workers > 1 else None,
            supervision=self.supervision,
        )

    def _score_batch(self, batch: list[tuple]) -> list[ScoredEvent]:
        t0 = self.clock()
        with tracing.span("repro.serve.score_batch", rows_in=len(batch)) as sp:
            X = np.stack([row for _, _, row in batch])
            ages = np.asarray([age for _, age, _ in batch], dtype=np.int64)
            probs = self._score_rows(X, ages)
            sp.set(rows_out=len(batch))
        self.batches_total += 1
        metrics.inc(
            "repro_serve_batches_total",
            help="Micro-batches scored by the engine",
        )
        metrics.observe(
            "repro_serve_batch_size",
            float(len(batch)),
            help="Scoring requests per flushed micro-batch",
        )
        metrics.observe(
            "repro_serve_score_seconds",
            self.clock() - t0,
            help="Wall time of one vectorized scoring call",
        )
        return [
            ScoredEvent(drive_id=d, age_days=a, probability=float(p))
            for (d, a, _), p in zip(batch, probs)
        ]

    # ------------------------------------------------------------------ replay
    def replay(
        self,
        source: DriveDayDataset | str | Path,
        chunk_rows: int = 4096,
        start_row: int = 0,
        snapshot_every: int | None = None,
        snapshot_path: str | Path | None = None,
        progress: Callable[[int], None] | None = None,
    ) -> ReplayResult:
        """Stream a trace through the online path, scoring every event.

        Events arrive in the stored ``(drive_id, age_days)`` order via
        :func:`repro.data.iter_drive_day_chunks`; each chunk folds into
        the store in one vectorized pass and its rows are scored through
        the same predict kernel as interactive requests.  The returned
        probabilities align with the source's row order, so they compare
        elementwise against the offline
        :meth:`FailurePredictor.predict_proba_records` output — the
        online/offline parity gate.

        ``start_row`` skips that many leading rows *without ingesting
        them* — for resuming a killed replay from a restored store whose
        ``events_total`` says how far it got (the skipped rows are
        already folded into the restored state).

        ``snapshot_every``/``snapshot_path`` persist the store every N
        events (crash-safe serving: a killed replay restores the last
        snapshot and resumes with identical subsequent scores).
        """
        t0 = self.clock()
        parts: list[np.ndarray] = []
        n_events = 0
        batches_before = self.batches_total
        since_snapshot = 0
        to_skip = int(start_row)
        with tracing.span("repro.serve.replay") as sp:
            for chunk in iter_drive_day_chunks(source, chunk_rows=chunk_rows):
                if to_skip > 0:
                    have = len(chunk["drive_id"])
                    if have <= to_skip:
                        to_skip -= have
                        continue
                    chunk = {k: v[to_skip:] for k, v in chunk.items()}
                    to_skip = 0
                X = self.store.ingest_columns(chunk)
                m = X.shape[0]
                ages = np.asarray(chunk["age_days"], dtype=np.int64)
                with tracing.span(
                    "repro.serve.score_batch", rows_in=m, rows_out=m
                ):
                    probs = self._score_rows(X, ages)
                self.batches_total += 1
                metrics.inc(
                    "repro_serve_events_total",
                    m,
                    help="Telemetry events absorbed by the serving feature store",
                )
                metrics.inc(
                    "repro_serve_requests_total",
                    m,
                    help="Scoring requests accepted by the engine",
                )
                metrics.inc(
                    "repro_serve_batches_total",
                    help="Micro-batches scored by the engine",
                )
                metrics.observe(
                    "repro_serve_batch_size",
                    float(m),
                    help="Scoring requests per flushed micro-batch",
                )
                parts.append(probs)
                n_events += m
                since_snapshot += m
                if (
                    snapshot_every is not None
                    and snapshot_path is not None
                    and since_snapshot >= snapshot_every
                ):
                    self.store.snapshot(snapshot_path)
                    since_snapshot = 0
                if progress is not None:
                    progress(n_events)
            sp.set(rows_in=n_events, rows_out=n_events)
        if snapshot_every is not None and snapshot_path is not None:
            self.store.snapshot(snapshot_path)
        elapsed = self.clock() - t0
        metrics.set_gauge(
            "repro_serve_store_drives",
            float(self.store.n_drives),
            help="Drives with live state in the serving feature store",
        )
        return ReplayResult(
            probability=np.concatenate(parts) if parts else np.empty(0),
            n_events=n_events,
            n_batches=self.batches_total - batches_before,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------ misc
    def score_stream(
        self, records: Iterable[Mapping[str, Any]]
    ) -> Iterable[ScoredEvent]:
        """Generator transport: events in, scored events out (in order).

        Used by the stdin/stdout JSONL loop of ``serve run``; flushes
        whatever is pending when the input stream ends.
        """
        for record in records:
            yield from self.submit(record)
        yield from self.drain()
