"""Online scoring engine: ingest telemetry, micro-batch, predict.

The request loop of :mod:`repro.serve`: every incoming drive-day event
is folded into the :class:`~repro.serve.feature_store.FeatureStore`
(producing its feature row through the shared kernel) and queued as a
scoring request; the :class:`~repro.serve.batching.MicroBatcher` flushes
pending requests by size/wait bounds into one vectorized
:meth:`~repro.core.predictor.FailurePredictor.predict_proba_matrix`
call.  Large flushed batches (backfills) optionally fan out across
:mod:`repro.parallel` workers under a :mod:`repro.resilience`
supervision policy — scores are bit-identical for any batch split and
worker count, so batching and parallelism are pure throughput knobs.

Instrumentation (``repro.serve.*`` spans, ``repro_serve_*`` metrics)
rides the ambient :mod:`repro.obs` collectors, Prometheus-exportable
like every other stage.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..core.features import feature_names, feature_schema_hash
from ..core.predictor import FailurePredictor
from ..data.io import iter_drive_day_chunks
from ..data.dataset import DriveDayDataset
from ..obs import eventlog, metrics, tracing
from ..obs import timeline as obs_timeline
from ..obs.manifest import _atomic_write_text, _created_now
from ..obs.slo import SloSpec, evaluate_slos
from .batching import BatchPolicy, MicroBatcher, QueuePolicy
from .feature_store import FeatureStore, SchemaMismatchError
from .guard import DUPLICATE, AdmissionGuard
from .health import STATUS_SCHEMA_VERSION, HealthState, StalenessPolicy

__all__ = ["ScoredEvent", "ReplayResult", "ScoringEngine", "TelemetryConfig"]

#: Flushed batches at least this large fan out across workers (when the
#: engine was given ``workers > 1``); smaller batches stay in-process —
#: pool dispatch overhead would dominate.
BACKFILL_MIN_ROWS = 2048


@dataclass(frozen=True)
class TelemetryConfig:
    """Live-telemetry knobs for the engine (heartbeats + SLO summary).

    ``status_path`` names the ``status.json`` file the engine atomically
    rewrites every ``heartbeat_every`` *seen* events (arrivals, counting
    diverted/shed events — a sick stream must still heartbeat).  With an
    ``slo_spec`` each heartbeat embeds a fresh evaluation of the active
    timeline, which is what ``serve status`` grades.  Heartbeats are
    event-count driven (never wall clock) and write only the status
    file — scores are untouched, so replay parity survives telemetry.
    """

    status_path: str | Path | None = None
    heartbeat_every: int = 5000
    slo_spec: SloSpec | None = None

    def __post_init__(self) -> None:
        if self.heartbeat_every < 1:
            raise ValueError("heartbeat_every must be >= 1")


@dataclass(frozen=True)
class ScoredEvent:
    """One scored drive-day.

    ``staleness_days``/``stale`` carry the degraded-scoring metadata:
    how far the event's calendar day lagged the fleet watermark at
    scoring time, and whether that lag crossed the engine's
    :class:`~repro.serve.health.StalenessPolicy` bound.  Both stay at
    their zero defaults when no staleness policy is configured.
    """

    drive_id: int
    age_days: int
    probability: float
    staleness_days: int = 0
    stale: bool = False
    #: Calendar day the event carried (-1 when the record had none) —
    #: the decision clock downstream consumers (``repro.fleet``) key on.
    calendar_day: int = -1


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of streaming a trace through the engine.

    ``n_diverted``/``n_duplicates`` are nonzero only on guarded replays:
    events the admission guard dead-lettered or dropped as exact
    duplicates (``probability`` covers accepted events only).  On
    guarded replays ``accepted_index`` maps each probability back to its
    source row: position ``i`` of ``probability`` scored row
    ``accepted_index[i]`` of the replayed stream (0 = the first
    post-``start_row`` row).  ``None`` on unguarded replays, where
    probabilities align 1:1 with the stream.
    """

    probability: np.ndarray
    n_events: int
    n_batches: int
    elapsed_seconds: float
    n_diverted: int = 0
    n_duplicates: int = 0
    accepted_index: np.ndarray | None = None

    @property
    def events_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.n_events / self.elapsed_seconds


class ScoringEngine:
    """Ties the feature store, micro-batcher, and predictor together.

    Parameters
    ----------
    predictor:
        A fitted :class:`FailurePredictor` (typically loaded from the
        :class:`~repro.serve.registry.ModelRegistry`).
    store:
        Feature store to fold events into; a fresh one by default.
    batch_policy:
        Micro-batching bounds; default flushes at 256 requests / 5 ms.
    workers, policy, supervision:
        Execution controls applied to large flushed batches (see
        :data:`BACKFILL_MIN_ROWS`): worker processes for sharded predict
        plus an optional resilience supervision policy.
    guard:
        Optional :class:`AdmissionGuard` bound to ``store``.  With a
        guard, bad events divert to the dead-letter queue instead of
        raising, and the engine exposes breaker-driven health states.
        Without one, behavior is exactly the PR-5 engine.
    queue_policy:
        Backpressure bounds (guarded engines only): bounded submit
        queue with a block-or-shed overflow policy.
    staleness:
        :class:`StalenessPolicy` enabling degraded scoring: scores for
        events lagging the fleet watermark are tagged, never withheld.
    telemetry:
        :class:`TelemetryConfig` enabling ``status.json`` heartbeats and
        per-heartbeat SLO evaluation; ``None`` (default) writes nothing.
        The windowed timeline itself rides the ambient
        :func:`repro.obs.timeline.record` hook, active or not.
    on_scored:
        Optional scored-event tap: called after every scored batch with
        four parallel arrays ``(drive_ids, ages, calendar_days,
        probabilities)`` covering exactly the *accepted* events of that
        batch, in scoring order.  This is how the fleet autopilot
        (:mod:`repro.fleet`) rides the serving plane without the engine
        knowing it exists.  The tap must not mutate the arrays.
    clock:
        Injectable monotonic clock (tests, deterministic replays).
    """

    def __init__(
        self,
        predictor: FailurePredictor,
        store: FeatureStore | None = None,
        batch_policy: BatchPolicy | None = None,
        workers: int | None = None,
        policy: Any | None = None,
        supervision: Any | None = None,
        guard: AdmissionGuard | None = None,
        queue_policy: QueuePolicy | None = None,
        staleness: StalenessPolicy | None = None,
        telemetry: TelemetryConfig | None = None,
        on_scored: Callable[
            [np.ndarray, np.ndarray, np.ndarray, np.ndarray], None
        ]
        | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        names = predictor.feature_names
        if names is None:
            raise ValueError("ScoringEngine needs a fitted predictor")
        if tuple(names) != feature_names():
            raise SchemaMismatchError(
                "predictor was fitted on a different feature layout than "
                f"this build produces (schema {feature_schema_hash()[:12]}…); "
                "retrain or activate a compatible registry version"
            )
        self.predictor = predictor
        # Not `store or ...`: an empty store is falsy via __len__.
        self.store = store if store is not None else FeatureStore()
        if guard is not None and guard.store is not self.store:
            raise ValueError(
                "guard must wrap the same FeatureStore as the engine"
            )
        self.guard = guard
        self.queue_policy = queue_policy or QueuePolicy()
        if self.queue_policy.on_full == "shed" and guard is None:
            raise ValueError(
                "QueuePolicy(on_full='shed') requires an AdmissionGuard: "
                "shed events are dead-lettered, never silently dropped"
            )
        self.staleness = staleness
        self.telemetry = telemetry
        self.on_scored = on_scored
        self.clock = clock
        self.batcher = MicroBatcher(batch_policy, clock=clock)
        self.workers = workers
        self.policy = policy
        self.supervision = supervision
        self.requests_total = 0
        self.batches_total = 0
        self.stale_scores = 0
        #: Warm scoring pool (satellite of the sharded-serving PR): the
        #: model bundle pickles into each worker once, then every
        #: backfill-sized batch ships only row slices.  ``None`` until
        #: first use, ``False`` when fan-out is configured off.
        self._scoring_pool: Any = None
        #: Every arrival observed, including diverted/shed/duplicate
        #: events that never became scoring requests.
        self.events_seen = 0
        self.heartbeats_written = 0
        self._since_heartbeat = 0
        #: Newest calendar day absorbed — the fleet watermark staleness
        #: is measured against (-1 until an event carries one).
        self._fleet_day = -1

    @property
    def health_state(self) -> str:
        """Current serving health (``ready`` without a breaker)."""
        if self.guard is not None and self.guard.breaker is not None:
            return self.guard.breaker.state
        return HealthState.READY

    # ------------------------------------------------------------------ telemetry
    def _observe_events(self, n: int, watermark: int | None = None) -> None:
        """Count ``n`` arrivals into the timeline and the heartbeat budget.

        Called once per arrival (or per chunk on replay), *including*
        events the guard diverted or shed — live telemetry must keep
        reporting on a stream that has gone entirely bad.
        """
        self.events_seen += n
        obs_timeline.record(n, watermark=watermark)
        tm = self.telemetry
        if tm is not None and tm.status_path is not None:
            self._since_heartbeat += n
            if self._since_heartbeat >= tm.heartbeat_every:
                self.heartbeat()

    def status(self) -> dict[str, Any]:
        """The current heartbeat payload (what ``status.json`` holds)."""
        out: dict[str, Any] = {
            "schema_version": STATUS_SCHEMA_VERSION,
            "ts": _created_now(),
            "health": self.health_state,
            "events_seen": self.events_seen,
            "requests_total": self.requests_total,
            "batches_total": self.batches_total,
            "stale_scores": self.stale_scores,
            "queue_depth": len(self.batcher),
            "watermark": self._fleet_day,
            "heartbeats": self.heartbeats_written,
        }
        if self.guard is not None:
            out["guard"] = self.guard.stats.to_dict()
            if self.guard.breaker is not None:
                out["breaker"] = self.guard.breaker.to_dict()
        timeline = obs_timeline.current()
        if timeline is not None:
            out["timeline"] = timeline.summary()
            tm = self.telemetry
            if tm is not None and tm.slo_spec is not None:
                report = evaluate_slos(tm.slo_spec, timeline.windows())
                out["slo"] = report.to_dict()
        return out

    def heartbeat(self) -> dict[str, Any]:
        """Atomically rewrite ``status.json`` (when configured) now.

        Returns the payload either way, so transports can forward it
        even without a status file.  Resets the event budget; the next
        automatic heartbeat lands ``heartbeat_every`` events later.
        """
        payload = self.status()
        self._since_heartbeat = 0
        tm = self.telemetry
        if tm is not None and tm.status_path is not None:
            self.heartbeats_written += 1
            payload["heartbeats"] = self.heartbeats_written
            _atomic_write_text(
                Path(tm.status_path),
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
            )
            eventlog.emit(
                "serve.engine.heartbeat",
                level="debug",
                events_seen=self.events_seen,
                health=payload["health"],
                slo=(payload.get("slo") or {}).get("state"),
            )
        return payload

    # ------------------------------------------------------------------ ingest
    def ingest(self, record: Mapping[str, Any]) -> np.ndarray:
        """Fold one event into the store without requesting a score."""
        row = self.store.ingest(record)
        metrics.inc(
            "repro_serve_events_total",
            help="Telemetry events absorbed by the serving feature store",
        )
        return row

    # ------------------------------------------------------------------ request loop
    def submit(self, record: Mapping[str, Any]) -> list[ScoredEvent]:
        """Ingest one event and request a score for it.

        Returns the scored events flushed by this submission — usually
        empty until a batch bound trips, then the whole batch at once.
        On a guarded engine, dead-lettered/duplicate events produce no
        request (the guard accounts for them); under a full queue the
        :class:`QueuePolicy` decides between a synchronous flush
        (``block``) and shedding the incoming event (``shed``).
        """
        pre: list[ScoredEvent] = []
        max_depth = self.queue_policy.max_depth
        if max_depth is not None and len(self.batcher) >= max_depth:
            if self.queue_policy.on_full == "shed" and self.guard is not None:
                self.guard.shed(
                    record,
                    f"submit queue at max_depth={max_depth}",
                )
                self._observe_events(1)
                return []
            # Backpressure: score the pending batch before admitting.
            batch = self.batcher.flush()
            if batch:
                pre = self._score_batch(batch)
        if self.guard is not None:
            outcome = self.guard.admit(record)
            if not outcome.accepted:
                self._observe_events(1)
                return pre
            row = outcome.row
            drive_id, age = outcome.drive_id, outcome.age_days
            metrics.inc(
                "repro_serve_events_total",
                help="Telemetry events absorbed by the serving feature store",
            )
        else:
            row = self.ingest(record)
            drive_id = int(record["drive_id"])
            age = int(record["age_days"])
        try:
            cal = int(record["calendar_day"])
        except (KeyError, TypeError, ValueError):
            cal = -1
        if cal > self._fleet_day:
            self._fleet_day = cal
        self._observe_events(
            1, watermark=self._fleet_day if self._fleet_day >= 0 else None
        )
        request = (drive_id, age, cal, row)
        self.requests_total += 1
        metrics.inc(
            "repro_serve_requests_total",
            help="Scoring requests accepted by the engine",
        )
        batch = self.batcher.add(request)
        metrics.set_gauge(
            "repro_serve_queue_depth",
            float(len(self.batcher)),
            help="Scoring requests pending in the submit queue",
        )
        if batch is None:
            return pre
        return pre + self._score_batch(batch)

    def poll(self) -> list[ScoredEvent]:
        """Flush by wait-bound only (idle tick of the request loop)."""
        batch = self.batcher.poll()
        if not batch:
            return []
        return self._score_batch(batch)

    def drain(self) -> list[ScoredEvent]:
        """Score everything still pending (stream end / shutdown).

        On a guarded engine with a breaker this enters the terminal
        ``draining`` health state — no new events should be admitted.
        """
        if self.guard is not None and self.guard.breaker is not None:
            self.guard.breaker.begin_drain()
        batch = self.batcher.flush()
        scored = self._score_batch(batch) if batch else []
        if self.telemetry is not None and self.telemetry.status_path is not None:
            self.heartbeat()
        return scored

    def _ensure_scoring_pool(self) -> Any:
        """The warm pool, spawned on first backfill-sized batch.

        ``None`` when fan-out is off (resolved worker count of 1) or a
        supervision policy is configured — supervised scoring needs the
        retrying pool, so it keeps the per-call path.
        """
        if self.policy is not None:
            return None
        if self._scoring_pool is None:
            from ..parallel import resolve_workers

            if resolve_workers(self.workers) <= 1:
                self._scoring_pool = False
            else:
                self._scoring_pool = self.predictor.scoring_pool(self.workers)
        return self._scoring_pool or None

    def close(self) -> None:
        """Reap the warm scoring pool (idempotent)."""
        pool, self._scoring_pool = self._scoring_pool, None
        if pool:
            pool.close()

    def __enter__(self) -> "ScoringEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _score_rows(self, X: np.ndarray, ages: np.ndarray) -> np.ndarray:
        """Vectorized predict; fans out only for backfill-sized batches.

        Fan-out goes through the warm :meth:`_ensure_scoring_pool` when
        no supervision policy is set — row sharding matches the per-call
        pool exactly, so the bytes are identical either way.
        """
        if X.shape[0] >= BACKFILL_MIN_ROWS:
            pool = self._ensure_scoring_pool()
            if pool is not None:
                return self.predictor.predict_proba_matrix(X, ages, pool=pool)
            workers = self.workers
        else:
            workers = 1
        return self.predictor.predict_proba_matrix(
            X,
            ages,
            workers=workers,
            policy=self.policy if workers and workers > 1 else None,
            supervision=self.supervision,
        )

    def _staleness(self, cal: int) -> tuple[int, bool]:
        """Lag of one scored event behind the fleet watermark."""
        if self.staleness is None or cal < 0 or self._fleet_day < 0:
            return 0, False
        lag = max(0, self._fleet_day - cal)
        metrics.set_gauge(
            "repro_serve_staleness_days",
            float(lag),
            help="Calendar lag of the most recently scored event vs the watermark",
        )
        stale = lag > self.staleness.max_lag_days
        if stale:
            self.stale_scores += 1
            metrics.inc(
                "repro_serve_stale_scores_total",
                help="Scores tagged stale (calendar lag past the policy bound)",
            )
            if self.staleness.count_as_fault and self.guard is not None:
                self.guard._signal(ok=False)
        return lag, stale

    def _score_batch(self, batch: list[tuple]) -> list[ScoredEvent]:
        t0 = self.clock()
        with tracing.span("repro.serve.score_batch", rows_in=len(batch)) as sp:
            X = np.stack([row for _, _, _, row in batch])
            ages = np.asarray([age for _, age, _, _ in batch], dtype=np.int64)
            probs = self._score_rows(X, ages)
            sp.set(rows_out=len(batch))
        self.batches_total += 1
        metrics.inc(
            "repro_serve_batches_total",
            help="Micro-batches scored by the engine",
        )
        metrics.observe(
            "repro_serve_batch_size",
            float(len(batch)),
            help="Scoring requests per flushed micro-batch",
        )
        metrics.observe(
            "repro_serve_score_seconds",
            self.clock() - t0,
            help="Wall time of one vectorized scoring call",
        )
        if self.on_scored is not None:
            self.on_scored(
                np.asarray([d for d, _, _, _ in batch], dtype=np.int64),
                ages,
                np.asarray([c for _, _, c, _ in batch], dtype=np.int64),
                probs,
            )
        out: list[ScoredEvent] = []
        for (d, a, c, _), p in zip(batch, probs):
            lag, stale = self._staleness(c)
            out.append(
                ScoredEvent(
                    drive_id=d,
                    age_days=a,
                    probability=float(p),
                    staleness_days=lag,
                    stale=stale,
                    calendar_day=c,
                )
            )
        return out

    # ------------------------------------------------------------------ replay
    def _write_snapshot(
        self, path: str | Path, keep: int | None
    ) -> Path:
        """One snapshot write: in-place without ``keep``, rotated with."""
        if keep is None:
            return self.store.snapshot(path)
        from .snapshots import write_rotated

        return write_rotated(Path(path), self.store.snapshot, keep=keep)

    def replay(
        self,
        source: DriveDayDataset | str | Path,
        chunk_rows: int = 4096,
        start_row: int = 0,
        snapshot_every: int | None = None,
        snapshot_path: str | Path | None = None,
        snapshot_keep: int | None = None,
        progress: Callable[[int], None] | None = None,
    ) -> ReplayResult:
        """Stream a trace through the online path, scoring every event.

        Events arrive in the stored ``(drive_id, age_days)`` order via
        :func:`repro.data.iter_drive_day_chunks`; each chunk folds into
        the store in one vectorized pass and its rows are scored through
        the same predict kernel as interactive requests.  The returned
        probabilities align with the source's row order, so they compare
        elementwise against the offline
        :meth:`FailurePredictor.predict_proba_records` output — the
        online/offline parity gate.  On a guarded engine the admission
        guard may divert or dedup rows, so probabilities cover accepted
        events only; the result's ``accepted_index`` records which
        stream rows they came from.

        ``start_row`` skips that many leading rows *without ingesting
        them* — for resuming a killed replay from a restored store whose
        ``events_total`` says how far it got (the skipped rows are
        already folded into the restored state).

        ``snapshot_every``/``snapshot_path`` persist the store every N
        events (crash-safe serving: a killed replay restores the last
        snapshot and resumes with identical subsequent scores).  With
        ``snapshot_keep`` each write rotates a new generation
        (``store-g000001.npz``, …) and prunes all but the newest K —
        strictly after the new generation is durable, so retention can
        never delete the only good copy (see
        :mod:`repro.serve.snapshots`).  Without it the single path is
        overwritten in place, the pre-PR-9 behavior.
        """
        t0 = self.clock()
        parts: list[np.ndarray] = []
        index_parts: list[np.ndarray] = []
        n_events = 0
        n_diverted = 0
        n_duplicates = 0
        batches_before = self.batches_total
        since_snapshot = 0
        to_skip = int(start_row)
        #: Stream row offset of the current chunk's first row (post-skip).
        pos = 0
        with tracing.span("repro.serve.replay") as sp:
            for chunk in iter_drive_day_chunks(source, chunk_rows=chunk_rows):
                if to_skip > 0:
                    have = len(chunk["drive_id"])
                    if have <= to_skip:
                        to_skip -= have
                        continue
                    chunk = {k: v[to_skip:] for k, v in chunk.items()}
                    to_skip = 0
                if self.guard is not None:
                    adm = self.guard.admit_columns(chunk)
                    X, ages = adm.features, adm.ages
                    n_diverted += adm.n_diverted
                    n_duplicates += adm.n_duplicates
                    index_parts.append(pos + adm.accepted_index)
                    ids = np.asarray(
                        chunk["drive_id"], dtype=np.int64
                    )[adm.accepted_index]
                    cals = adm.calendar_days
                    if adm.calendar_days.size:
                        top = int(adm.calendar_days.max())
                        if top > self._fleet_day:
                            self._fleet_day = top
                else:
                    X = self.store.ingest_columns(chunk)
                    ages = np.asarray(chunk["age_days"], dtype=np.int64)
                    ids = np.asarray(chunk["drive_id"], dtype=np.int64)
                    cals = chunk.get("calendar_day")
                    if cals is None:
                        cals = np.full(len(ids), -1, dtype=np.int64)
                    else:
                        cals = np.asarray(cals, dtype=np.int64)
                    if len(cals):
                        top = int(np.max(cals))
                        if top > self._fleet_day:
                            self._fleet_day = top
                m = X.shape[0]
                if m:
                    with tracing.span(
                        "repro.serve.score_batch", rows_in=m, rows_out=m
                    ):
                        probs = self._score_rows(X, ages)
                    self.batches_total += 1
                    parts.append(probs)
                    if self.on_scored is not None:
                        self.on_scored(ids, ages, cals, probs)
                    metrics.inc(
                        "repro_serve_batches_total",
                        help="Micro-batches scored by the engine",
                    )
                    metrics.observe(
                        "repro_serve_batch_size",
                        float(m),
                        help="Scoring requests per flushed micro-batch",
                    )
                metrics.inc(
                    "repro_serve_events_total",
                    m,
                    help="Telemetry events absorbed by the serving feature store",
                )
                metrics.inc(
                    "repro_serve_requests_total",
                    m,
                    help="Scoring requests accepted by the engine",
                )
                pos += len(chunk["drive_id"])
                n_events += m
                self._observe_events(
                    len(chunk["drive_id"]),
                    watermark=self._fleet_day if self._fleet_day >= 0 else None,
                )
                since_snapshot += m
                if (
                    snapshot_every is not None
                    and snapshot_path is not None
                    and since_snapshot >= snapshot_every
                ):
                    self._write_snapshot(snapshot_path, snapshot_keep)
                    since_snapshot = 0
                if progress is not None:
                    progress(n_events)
            sp.set(rows_in=n_events, rows_out=n_events)
        if snapshot_every is not None and snapshot_path is not None:
            self._write_snapshot(snapshot_path, snapshot_keep)
        if self.telemetry is not None and self.telemetry.status_path is not None:
            self.heartbeat()
        elapsed = self.clock() - t0
        metrics.set_gauge(
            "repro_serve_store_drives",
            float(self.store.n_drives),
            help="Drives with live state in the serving feature store",
        )
        return ReplayResult(
            probability=np.concatenate(parts) if parts else np.empty(0),
            n_events=n_events,
            n_batches=self.batches_total - batches_before,
            elapsed_seconds=elapsed,
            n_diverted=n_diverted,
            n_duplicates=n_duplicates,
            accepted_index=(
                np.concatenate(index_parts)
                if index_parts
                else np.empty(0, dtype=np.int64)
            )
            if self.guard is not None
            else None,
        )

    def replay_events(
        self, events: Iterable[Mapping[str, Any]]
    ) -> ReplayResult:
        """Stream individual events through the guarded request loop.

        The event-wise sibling of :meth:`replay` for sources that are
        not ordered column chunks — chiefly chaos-perturbed telemetry
        streams (:func:`repro.resilience.chaos_telemetry_events`), where
        reordered/duplicated/garbled arrivals must route through the
        admission guard one at a time.  Scores cover accepted events in
        admission order; diverted and duplicate counts land on the
        result.
        """
        t0 = self.clock()
        before_requests = self.requests_total
        batches_before = self.batches_total
        scored: list[ScoredEvent] = []
        stats = self.guard.stats if self.guard is not None else None
        div0 = stats.dead_lettered if stats is not None else 0
        dup0 = stats.duplicates_dropped if stats is not None else 0
        with tracing.span("repro.serve.replay_events") as sp:
            for record in events:
                scored.extend(self.submit(record))
            scored.extend(self.drain())
            sp.set(rows_in=self.requests_total - before_requests)
        probs = np.asarray([ev.probability for ev in scored], dtype=np.float64)
        return ReplayResult(
            probability=probs,
            n_events=self.requests_total - before_requests,
            n_batches=self.batches_total - batches_before,
            elapsed_seconds=self.clock() - t0,
            n_diverted=(stats.dead_lettered - div0) if stats else 0,
            n_duplicates=(stats.duplicates_dropped - dup0) if stats else 0,
        )

    # ------------------------------------------------------------------ misc
    def score_stream(
        self, records: Iterable[Mapping[str, Any]]
    ) -> Iterable[ScoredEvent]:
        """Generator transport: events in, scored events out (in order).

        Used by the stdin/stdout JSONL loop of ``serve run``; flushes
        whatever is pending when the input stream ends.
        """
        for record in records:
            yield from self.submit(record)
        yield from self.drain()
