"""Incremental per-drive feature state for online scoring.

The batch path (:func:`repro.core.features.build_features`) recomputes
lifetime-cumulative counters over the whole sorted dataset.  Online, a
drive-day arrives one event at a time; the :class:`FeatureStore` keeps
one running-sum vector per drive and produces feature rows through the
*same* kernel (:func:`repro.core.features.assemble_features`), so a
row's value depends only on the record and the drive's cumulative
counters — never on which path accumulated them.  Counter columns are
integer-valued (see ``core.features``), so float64 running sums match
the batch prefix sums bit-for-bit.

Two ingest shapes share one code path:

- :meth:`FeatureStore.ingest` — a single record mapping (the stdin
  transport of ``serve run``);
- :meth:`FeatureStore.ingest_columns` — a column-dict chunk in
  ``(drive_id, age_days)`` order (the replay/backfill hot path), which
  folds whole per-drive runs with vectorized segment cumsums.

State snapshots go through :func:`repro.reliability.runner.atomic_save_npz`
— deterministic bytes (rows sorted by drive id, fixed zip timestamps), so
``snapshot → restore → snapshot`` round-trips bit-identically and a
SIGKILLed server resumes with exactly the scores it would have produced.
"""

from __future__ import annotations

import threading
import zipfile
from collections.abc import Mapping
from pathlib import Path
from typing import Any

import numpy as np

from ..core.features import (
    DAILY_FEATURE_SOURCES,
    assemble_features,
    feature_names,
    feature_schema_hash,
    fused_feature_matrix,
)

__all__ = [
    "FeatureStoreError",
    "SchemaMismatchError",
    "OutOfOrderError",
    "FeatureStore",
]

_N_SOURCES = len(DAILY_FEATURE_SOURCES)


class FeatureStoreError(RuntimeError):
    """A feature-store snapshot is unreadable or inconsistent."""


class SchemaMismatchError(FeatureStoreError):
    """Persisted state was built for a different feature layout."""


class OutOfOrderError(FeatureStoreError):
    """A record arrived for a drive-day older than already-absorbed state.

    Cumulative features fold left over age; replaying the past into a
    live store would silently double-count, so the store refuses.

    Carries the triage context as attributes (``None`` when unknown):
    ``drive_id`` (which drive rewound), ``age_days`` (the offending
    record's age), and ``watermark`` (the age the store had already
    absorbed for that drive) — so field triage can answer "which drive,
    how late, against what state" straight from the exception.
    """

    def __init__(
        self,
        message: str,
        *,
        drive_id: int | None = None,
        age_days: int | None = None,
        watermark: int | None = None,
    ):
        super().__init__(message)
        self.drive_id = drive_id
        self.age_days = age_days
        self.watermark = watermark


class FeatureStore:
    """Per-drive cumulative state + the online feature extractor.

    Thread-safe: ingest and snapshot take an internal lock, so a
    snapshot taken concurrently with ingestion is always a consistent
    prefix of the event stream.
    """

    def __init__(self, capacity: int = 256):
        self.schema_hash = feature_schema_hash()
        self._lock = threading.Lock()
        self._index: dict[int, int] = {}
        self._cum = np.zeros((max(capacity, 1), _N_SOURCES), dtype=np.float64)
        self._last_age = np.full(max(capacity, 1), -1, dtype=np.int64)
        self._rows = np.zeros(max(capacity, 1), dtype=np.int64)
        self.events_total = 0
        #: drive_id -> digest of the last absorbed event, written by the
        #: admission guard on accept (never by plain ingest).  Lives on
        #: the store so snapshots persist it: duplicate detection at the
        #: watermark boundary survives ``snapshot``/``restore`` — an
        #: idempotent re-delivery after a restart still classifies as
        #: ``duplicate``, not ``conflict``.
        self.boundary_digests: dict[int, str] = {}

    # ------------------------------------------------------------------ state
    def __len__(self) -> int:
        return len(self._index)

    @property
    def n_drives(self) -> int:
        return len(self._index)

    def _grow(self, need: int) -> None:
        cap = self._cum.shape[0]
        if need <= cap:
            return
        new_cap = max(cap * 2, need)
        cum = np.zeros((new_cap, _N_SOURCES), dtype=np.float64)
        cum[:cap] = self._cum
        last = np.full(new_cap, -1, dtype=np.int64)
        last[:cap] = self._last_age
        rows = np.zeros(new_cap, dtype=np.int64)
        rows[:cap] = self._rows
        self._cum, self._last_age, self._rows = cum, last, rows

    def _slot(self, drive_id: int) -> int:
        slot = self._index.get(drive_id)
        if slot is None:
            slot = len(self._index)
            self._grow(slot + 1)
            self._index[drive_id] = slot
        return slot

    def watermark(self, drive_id: int) -> int:
        """Last absorbed ``age_days`` for one drive (``-1`` if unseen)."""
        with self._lock:
            slot = self._index.get(int(drive_id))
            return -1 if slot is None else int(self._last_age[slot])

    def watermarks(self, drive_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`watermark` lookup (``-1`` for unseen drives).

        Does *not* allocate slots for unseen drives — the admission
        guard classifies against this without mutating the store.
        """
        with self._lock:
            out = np.full(len(drive_ids), -1, dtype=np.int64)
            for i, d in enumerate(drive_ids):
                slot = self._index.get(int(d))
                if slot is not None:
                    out[i] = self._last_age[slot]
            return out

    def drive_state(self, drive_id: int) -> dict[str, Any] | None:
        """Cumulative counters + bookkeeping for one drive (copy)."""
        with self._lock:
            slot = self._index.get(int(drive_id))
            if slot is None:
                return None
            return {
                "cumulative": dict(
                    zip(DAILY_FEATURE_SOURCES, self._cum[slot].tolist())
                ),
                "last_age_days": int(self._last_age[slot]),
                "n_records": int(self._rows[slot]),
            }

    # ------------------------------------------------------------------ ingest
    def ingest(self, record: Mapping[str, Any]) -> np.ndarray:
        """Absorb one drive-day record; returns its feature row.

        ``record`` maps column names to scalars (the full daily schema:
        identity, workload, status, bad-block and error columns).
        """
        with self._lock:
            drive_id = int(record["drive_id"])
            age = int(record["age_days"])
            slot = self._slot(drive_id)
            if age < self._last_age[slot]:
                watermark = int(self._last_age[slot])
                raise OutOfOrderError(
                    f"drive {drive_id}: record for age {age}d arrived "
                    f"{watermark - age}d late (state already at watermark "
                    f"{watermark}d)",
                    drive_id=drive_id,
                    age_days=age,
                    watermark=watermark,
                )
            daily = np.empty((1, _N_SOURCES), dtype=np.float64)
            for j, src in enumerate(DAILY_FEATURE_SOURCES):
                daily[0, j] = record[src]
            self._cum[slot] += daily[0]
            self._last_age[slot] = age
            self._rows[slot] += 1
            self.events_total += 1
            bad = float(record["factory_bad_blocks"]) + float(
                record["grown_bad_blocks"]
            )
            return assemble_features(
                daily,
                self._cum[slot][None, :].copy(),
                age_days=np.array([age], dtype=np.float64),
                pe_cycles=np.array([float(record["pe_cycles"])]),
                bad_blocks=np.array([bad]),
                status_read_only=np.array(
                    [float(record["status_read_only"])]
                ),
                status_dead=np.array([float(record["status_dead"])]),
            )[0]

    def ingest_columns(self, cols: Mapping[str, np.ndarray]) -> np.ndarray:
        """Absorb a chunk of records; returns the ``(m, k)`` feature rows.

        Rows must be grouped by drive with ages non-decreasing inside
        each group — the order :func:`repro.data.iter_drive_day_chunks`
        streams and any per-day batch trivially satisfies.  Whole
        per-drive runs fold in one vectorized pass: a chunk-local segment
        cumsum plus the drive's carried-in baseline.
        """
        ids = np.asarray(cols["drive_id"]).astype(np.int64, copy=False)
        m = ids.shape[0]
        if m == 0:
            return np.empty((0, len(feature_names())))
        age = np.asarray(cols["age_days"]).astype(np.int64, copy=False)
        with self._lock:
            # Segment boundaries of the per-drive runs inside this chunk.
            change = np.flatnonzero(ids[1:] != ids[:-1]) + 1
            starts = np.concatenate(([0], change))
            ends = np.concatenate((change, [m]))
            run_ids = ids[starts]
            if len(np.unique(run_ids)) != len(run_ids):
                raise OutOfOrderError(
                    "chunk interleaves records of the same drive; rows must "
                    "be grouped by drive (stream them in (drive, day) order)"
                )
            # Ages must be non-decreasing within each run …
            inner_ok = (ids[1:] != ids[:-1]) | (age[1:] >= age[:-1])
            if not bool(np.all(inner_ok)):
                row = int(np.flatnonzero(~inner_ok)[0]) + 1
                raise OutOfOrderError(
                    f"drive {int(ids[row])}: chunk rows are not age-sorted "
                    f"within a drive run (age {int(age[row])}d follows "
                    f"{int(age[row - 1])}d)",
                    drive_id=int(ids[row]),
                    age_days=int(age[row]),
                    watermark=int(age[row - 1]),
                )
            slots = np.fromiter(
                (self._slot(int(d)) for d in run_ids),
                dtype=np.int64,
                count=len(run_ids),
            )
            # … and start at or after the state already absorbed.
            stale = age[starts] < self._last_age[slots]
            if bool(np.any(stale)):
                k = int(np.flatnonzero(stale)[0])
                bad = int(run_ids[k])
                bad_age = int(age[starts[k]])
                watermark = int(self._last_age[slots[k]])
                raise OutOfOrderError(
                    f"drive {bad}: chunk rewinds to age {bad_age}d, "
                    f"{watermark - bad_age}d older than the already-absorbed "
                    f"watermark {watermark}d",
                    drive_id=bad,
                    age_days=bad_age,
                    watermark=watermark,
                )
            # Chunk-local per-run prefix sums shifted by each run's
            # carried-in baseline, fused with matrix assembly — the same
            # kernel the batch path calls (see
            # :func:`repro.core.features.fused_feature_matrix`).
            X, run_totals = fused_feature_matrix(
                cols, starts, ends, carry_in=self._cum[slots]
            )
            # Carry the run totals into the store state.
            self._cum[slots] = run_totals
            self._last_age[slots] = age[ends - 1]
            self._rows[slots] += ends - starts
            self.events_total += m
            return X

    # ------------------------------------------------------------------ persistence
    #: Arrays every store snapshot must carry (extra arrays — e.g. the
    #: shard-checkpoint score prefix — are allowed and ignored here).
    REQUIRED_ARRAYS = frozenset(
        {
            "schema_hash",
            "drive_id",
            "cumulative",
            "last_age_days",
            "n_records",
            "events_total",
        }
    )

    def state_arrays(self) -> dict[str, np.ndarray]:
        """The store state as deterministic named arrays (copies).

        Drives are sorted by id, so equal states produce equal arrays.
        This is the single serialization schema: :meth:`snapshot` writes
        exactly these arrays, and the shard checkpoint embeds them next
        to its own (score prefix, watermarks) so one atomic NPZ captures
        a consistent cut of the whole shard.
        """
        with self._lock:
            ids = np.fromiter(
                self._index.keys(), dtype=np.int64, count=len(self._index)
            )
            slots = np.fromiter(
                self._index.values(), dtype=np.int64, count=len(self._index)
            )
            order = np.argsort(ids, kind="stable")
            ids, slots = ids[order], slots[order]
            digests = np.array(
                [self.boundary_digests.get(int(d), "") for d in ids],
                dtype="U64",
            )
            return {
                "schema_hash": np.frombuffer(
                    self.schema_hash.encode(), dtype=np.uint8
                ),
                "drive_id": ids,
                "cumulative": self._cum[slots].copy(),
                "last_age_days": self._last_age[slots].copy(),
                "n_records": self._rows[slots].copy(),
                "events_total": np.array([self.events_total], dtype=np.int64),
                "boundary_digest": digests,
            }

    def snapshot(self, path: str | Path) -> Path:
        """Atomically persist the store state; returns the path.

        The snapshot is deterministic: drives are sorted by id and the
        NPZ writer pins zip timestamps, so equal states produce equal
        bytes (the chaos drill compares snapshot digests directly).
        """
        from ..reliability.runner import atomic_save_npz

        path = Path(path)
        atomic_save_npz(path, **self.state_arrays())
        return path

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray], source: str = "snapshot"
    ) -> "FeatureStore":
        """Rebuild a store from :meth:`state_arrays` output.

        ``source`` names the container in error messages (a standalone
        snapshot file or a shard checkpoint).  Schema-hash checked.
        """
        missing = cls.REQUIRED_ARRAYS - set(arrays)
        if missing:
            raise FeatureStoreError(
                f"{source} is missing arrays: {sorted(missing)}"
            )
        persisted = np.asarray(arrays["schema_hash"]).tobytes().decode()
        store = cls(capacity=max(len(arrays["drive_id"]), 1))
        if persisted != store.schema_hash:
            raise SchemaMismatchError(
                f"{source} was written for feature schema "
                f"{persisted[:12]}…, this build produces "
                f"{store.schema_hash[:12]}…; retrain/re-ingest instead of "
                "restoring"
            )
        ids = arrays["drive_id"]
        store._index = {int(d): i for i, d in enumerate(ids)}
        n = len(ids)
        store._cum[:n] = arrays["cumulative"]
        store._last_age[:n] = arrays["last_age_days"]
        store._rows[:n] = arrays["n_records"]
        store.events_total = int(arrays["events_total"][0])
        # Optional for snapshots written before boundary digests were
        # persisted — those restore with duplicate detection cold.
        if "boundary_digest" in arrays:
            store.boundary_digests = {
                int(d): str(s)
                for d, s in zip(ids, arrays["boundary_digest"])
                if s
            }
        return store

    @classmethod
    def restore(cls, path: str | Path) -> "FeatureStore":
        """Rebuild a store from a snapshot file; schema-hash checked."""
        path = Path(path)
        try:
            with np.load(path) as payload:
                arrays = {k: payload[k] for k in payload.files}
        except (OSError, ValueError, zipfile.BadZipFile, EOFError) as exc:
            raise FeatureStoreError(
                f"feature-store snapshot {path} is unreadable ({exc})"
            ) from None
        return cls.from_arrays(arrays, source=f"snapshot {path}")
