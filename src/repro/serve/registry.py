"""Versioned model registry for the online scoring service.

Layout under one root directory::

    registry/
      registry.json            # {"active": "v0002", "history": [...]}
      versions/
        v0001/model.pkl        # pickled FailurePredictor
        v0001/meta.json        # digests + schema hash + provenance
        v0002/...

Every write is atomic (:func:`repro.reliability.runner.atomic_write`),
so a crash mid-publish never leaves a half-registered version: either
``meta.json`` exists and the artifact digest inside it matches the
pickle on disk, or the version does not exist.

Metadata reuses the :mod:`repro.obs.manifest` digest helpers: the model
pickle's sha256, a config digest over the predictor hyper-parameters,
the feature-schema hash from :func:`repro.core.features.feature_schema_hash`,
and (optionally) the sha256 of the training run's manifest, tying a
served model back to the exact training run that produced it.

:meth:`ModelRegistry.activate` refuses a version whose feature-schema
hash differs from the live feature store's — a model trained on one
feature layout can never silently score rows assembled under another.
:meth:`ModelRegistry.load` re-digests the artifact before unpickling, so
a corrupted pickle is a clean error (and ``rollback`` restores the
previous activation).
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Any

from ..core.features import feature_schema_hash
from ..core.predictor import FailurePredictor
from ..obs.manifest import config_digest, file_digest

__all__ = [
    "RegistryError",
    "SchemaMismatchError",
    "ModelRegistry",
]

_REGISTRY_FILE = "registry.json"
_MODEL_FILE = "model.pkl"
_META_FILE = "meta.json"


class RegistryError(RuntimeError):
    """A registry operation failed (missing/corrupt version, bad state)."""


class SchemaMismatchError(RegistryError):
    """Refused activation: model and store disagree on the feature layout."""


class ModelRegistry:
    """Filesystem-backed model versions with publish/activate/rollback."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.versions_dir = self.root / "versions"

    # ------------------------------------------------------------------ state
    def _state(self) -> dict[str, Any]:
        path = self.root / _REGISTRY_FILE
        if not path.exists():
            return {"active": None, "history": []}
        try:
            body = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise RegistryError(
                f"registry state {path} is unreadable: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise RegistryError(f"registry state {path} is not a JSON object")
        return {
            "active": body.get("active"),
            "history": list(body.get("history", [])),
        }

    def _write_state(self, state: dict[str, Any]) -> None:
        from ..reliability.runner import atomic_write

        self.root.mkdir(parents=True, exist_ok=True)
        with atomic_write(self.root / _REGISTRY_FILE, "w") as fh:
            json.dump(state, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def versions(self) -> list[str]:
        """Published version names, oldest first."""
        if not self.versions_dir.exists():
            return []
        return sorted(
            p.name
            for p in self.versions_dir.iterdir()
            if p.is_dir() and (p / _META_FILE).exists()
        )

    def active_version(self) -> str | None:
        """The currently-activated version name (``None`` when empty)."""
        return self._state()["active"]

    def _version_dir(self, version: str) -> Path:
        path = self.versions_dir / version
        if not (path / _META_FILE).exists():
            raise RegistryError(
                f"registry has no version {version!r}; published: "
                f"{', '.join(self.versions()) or '(none)'}"
            )
        return path

    def meta(self, version: str) -> dict[str, Any]:
        """The metadata document of one published version."""
        path = self._version_dir(version) / _META_FILE
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise RegistryError(f"metadata {path} is unreadable: {exc}") from None

    # ------------------------------------------------------------------ publish
    def publish(
        self,
        predictor: FailurePredictor,
        training_manifest: str | Path | None = None,
        activate: bool = False,
        extra: dict[str, Any] | None = None,
    ) -> str:
        """Persist a fitted predictor as the next version; returns its name.

        ``training_manifest`` (the ``train`` run's manifest JSON) is
        digested into the metadata so a served score can be traced back
        to the training run.  ``activate=True`` additionally activates
        the fresh version (schema-checked like any activation).
        """
        if predictor.feature_names is None:
            raise RegistryError("cannot publish an unfitted predictor")
        from ..reliability.runner import atomic_write

        existing = self.versions()
        n = int(existing[-1][1:]) + 1 if existing else 1
        version = f"v{n:04d}"
        vdir = self.versions_dir / version
        vdir.mkdir(parents=True, exist_ok=True)
        with atomic_write(vdir / _MODEL_FILE, "wb") as fh:
            pickle.dump(predictor, fh)
        meta: dict[str, Any] = {
            "version": version,
            "feature_schema_hash": feature_schema_hash(),
            "feature_names": list(predictor.feature_names),
            "model_digest": file_digest(vdir / _MODEL_FILE),
            "config": {
                "lookahead": predictor.lookahead,
                "age_partitioned": predictor.age_partitioned,
                "infancy_days": predictor.infancy_days,
                "downsample_ratio": predictor.downsample_ratio,
                "seed": predictor.seed,
                "model_spec": predictor.model_spec.name,
            },
        }
        meta["config_digest"] = config_digest(meta["config"])
        if training_manifest is not None:
            meta["training_manifest_digest"] = file_digest(training_manifest)
        if extra:
            meta.update(extra)
        with atomic_write(vdir / _META_FILE, "w") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if activate:
            self.activate(version)
        return version

    # ------------------------------------------------------------------ activate
    def activate(
        self, version: str, expected_schema_hash: str | None = None
    ) -> str:
        """Make ``version`` the served model; returns the version name.

        ``expected_schema_hash`` defaults to the live build's
        :func:`feature_schema_hash`; a mismatching model is refused so an
        old artifact can never score rows it does not understand.
        """
        meta = self.meta(version)
        expect = expected_schema_hash or feature_schema_hash()
        got = meta.get("feature_schema_hash")
        if got != expect:
            raise SchemaMismatchError(
                f"refusing to activate {version}: model feature schema "
                f"{str(got)[:12]}… does not match the store's "
                f"{expect[:12]}… (retrain against the current features)"
            )
        state = self._state()
        state["active"] = version
        state["history"].append(version)
        self._write_state(state)
        return version

    def rollback(self) -> str:
        """Re-activate the previously-activated version; returns it.

        The activation history is a stack: rollback pops the current
        activation and restores the one before it (schema-checked, so a
        rollback can never land on a now-incompatible model).
        """
        state = self._state()
        history = state["history"]
        if len(history) < 2:
            raise RegistryError(
                "nothing to roll back to: fewer than two activations recorded"
            )
        previous = history[-2]
        # Re-activating through activate() would append to history and
        # make consecutive rollbacks ping-pong; pop instead.
        meta = self.meta(previous)
        expect = feature_schema_hash()
        if meta.get("feature_schema_hash") != expect:
            raise SchemaMismatchError(
                f"refusing rollback to {previous}: feature schema mismatch"
            )
        state["history"] = history[:-1]
        state["active"] = previous
        self._write_state(state)
        return previous

    # ------------------------------------------------------------------ load
    def load(self, version: str | None = None) -> FailurePredictor:
        """Unpickle a version (default: the active one), integrity-checked.

        The artifact's sha256 is recomputed and compared against the
        digest recorded at publish time *before* unpickling — a corrupt
        or tampered pickle is a :class:`RegistryError`, never a crash or
        a silently-wrong model.
        """
        if version is None:
            version = self.active_version()
            if version is None:
                raise RegistryError(
                    "registry has no active version (publish + activate first)"
                )
        meta = self.meta(version)
        path = self._version_dir(version) / _MODEL_FILE
        if not path.exists():
            raise RegistryError(f"{version}: model artifact {path} is missing")
        digest = file_digest(path)
        if digest != meta.get("model_digest"):
            raise RegistryError(
                f"{version}: model artifact is corrupt (sha256 {digest[:12]}… "
                f"!= published {str(meta.get('model_digest'))[:12]}…); "
                "roll back to a healthy version"
            )
        with open(path, "rb") as fh:
            predictor = pickle.load(fh)
        if not isinstance(predictor, FailurePredictor):
            raise RegistryError(
                f"{version}: artifact is not a FailurePredictor pickle"
            )
        return predictor
