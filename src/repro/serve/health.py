"""Serving health: circuit breaker, degraded state, staleness tagging.

The engine's health is a three-state machine, reusing the PR-4 circuit-
breaker pattern (count consecutive faults, trip, recover on sustained
success) at the serving layer:

``ready``
    The steady state: events admit and score normally.
``degraded``
    The breaker tripped — a streak of dead-lettered/shed events (or
    stale scores) crossed the threshold.  The engine *keeps scoring*
    (degraded, not down: a hyperscale scorer must survive a misbehaving
    telemetry pipeline), but the state is exported via status records,
    metrics, and the run manifest so operators see the input is sick.
``draining``
    Terminal: shutdown has begun, pending requests are being flushed,
    no new events are admitted.  Entered explicitly, never left.

Staleness is a separate, per-score concern: when a scored event's
calendar day lags the fleet watermark (the newest calendar day the
engine has seen) by more than :class:`StalenessPolicy.max_lag_days`,
the score is still produced but tagged ``stale`` with the lag attached —
downstream consumers decide whether a stale risk estimate is actionable.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..obs import eventlog

__all__ = [
    "STATUS_SCHEMA_VERSION",
    "HealthState",
    "StalenessPolicy",
    "ServeBreaker",
    "aggregate_statuses",
    "load_status",
    "render_sharded_status",
    "render_status",
    "status_exit_code",
]

#: Bumped whenever the ``status.json`` layout changes incompatibly.
STATUS_SCHEMA_VERSION = 1


class HealthState:
    """The serving health states (plain strings, JSON-friendly)."""

    READY = "ready"
    DEGRADED = "degraded"
    DRAINING = "draining"

    #: Legal transition order for rendering/asserts.
    ORDER = (READY, DEGRADED, DRAINING)


@dataclass(frozen=True)
class StalenessPolicy:
    """Watermark-lag bound past which a score is tagged stale.

    ``max_lag_days`` compares a scored event's ``calendar_day`` against
    the fleet watermark (newest calendar day seen by the engine) at
    flush time.  ``count_as_fault`` feeds stale scores into the circuit
    breaker, so a fleet scoring mostly-stale drives degrades visibly.
    """

    max_lag_days: int = 7
    count_as_fault: bool = False

    def __post_init__(self) -> None:
        if self.max_lag_days < 0:
            raise ValueError("max_lag_days must be >= 0")


class ServeBreaker:
    """Consecutive-fault circuit breaker over the admission stream.

    ``fault_threshold`` consecutive faults (dead letters, sheds, and —
    under ``StalenessPolicy(count_as_fault=True)`` — stale scores) trip
    ``ready`` → ``degraded``; ``recovery_threshold`` consecutive healthy
    admissions close the breaker again.  ``begin_drain()`` moves to the
    terminal ``draining`` state from anywhere.
    """

    def __init__(
        self, fault_threshold: int = 8, recovery_threshold: int = 32
    ):
        if fault_threshold < 1:
            raise ValueError("fault_threshold must be >= 1")
        if recovery_threshold < 1:
            raise ValueError("recovery_threshold must be >= 1")
        self.fault_threshold = fault_threshold
        self.recovery_threshold = recovery_threshold
        self.state = HealthState.READY
        self.consecutive_faults = 0
        self.consecutive_oks = 0
        self.trips = 0
        self.recoveries = 0

    def _transition(self, new_state: str, level: str) -> None:
        old = self.state
        self.state = new_state
        eventlog.emit(
            "serve.health.transition",
            f"{old} -> {new_state}",
            level=level,
            previous=old,
            state=new_state,
            trips=self.trips,
        )

    def record_ok(self) -> str:
        """One healthy admission; may close a tripped breaker."""
        self.consecutive_faults = 0
        if self.state == HealthState.DEGRADED:
            self.consecutive_oks += 1
            if self.consecutive_oks >= self.recovery_threshold:
                self.recoveries += 1
                self.consecutive_oks = 0
                self._transition(HealthState.READY, "info")
        return self.state

    def record_fault(self) -> str:
        """One diverted/stale event; may trip the breaker."""
        self.consecutive_oks = 0
        self.consecutive_faults += 1
        if (
            self.state == HealthState.READY
            and self.consecutive_faults >= self.fault_threshold
        ):
            self.trips += 1
            self._transition(HealthState.DEGRADED, "warn")
        return self.state

    def begin_drain(self) -> str:
        """Enter the terminal draining state (shutdown has begun)."""
        if self.state != HealthState.DRAINING:
            self._transition(HealthState.DRAINING, "info")
        return self.state

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "fault_threshold": self.fault_threshold,
            "recovery_threshold": self.recovery_threshold,
        }


# --------------------------------------------------------------------------
# status.json (heartbeat file written by ScoringEngine, read by
# `serve status`)
# --------------------------------------------------------------------------

def load_status(path: str | Path) -> dict[str, Any]:
    """Read a ``status.json`` heartbeat; raises ``ValueError`` on problems.

    The file is rewritten atomically by the engine, so a reader never
    sees a torn write — a parse failure means the path is wrong or the
    file is not a status heartbeat at all.
    """
    path = Path(path)
    try:
        body = json.loads(path.read_text())
    except FileNotFoundError:
        raise ValueError(
            f"status file {path} does not exist (serve replay/run write it "
            "via --status-out)"
        ) from None
    except (OSError, ValueError) as exc:
        raise ValueError(f"status file {path} is unreadable: {exc}") from None
    if not isinstance(body, dict) or "health" not in body:
        raise ValueError(f"status file {path} is not a serve status heartbeat")
    return body


def status_exit_code(status: Mapping[str, Any]) -> int:
    """The ``serve status`` exit contract: 0 ok / 1 degraded-or-warn / 2 breach.

    An SLO breach in the embedded evaluation dominates; a ``degraded``
    health state or an SLO warning exits 1; ``ready`` and ``draining``
    (a clean shutdown in progress) are healthy.
    """
    slo_state = (status.get("slo") or {}).get("state", "ok")
    if slo_state == "breach":
        return 2
    if status.get("health") == HealthState.DEGRADED or slo_state == "warn":
        return 1
    return 0


#: Severity order for rolling up many shards into one verdict: a single
#: degraded shard degrades the plane; draining beats ready (a rollout in
#: progress is worth surfacing) but both are healthy per the exit code.
_HEALTH_RANK = {
    HealthState.READY: 0,
    HealthState.DRAINING: 1,
    HealthState.DEGRADED: 2,
}
_SLO_RANK = {"ok": 0, "warn": 1, "breach": 2}


def aggregate_statuses(
    statuses: Mapping[str, Mapping[str, Any]]
) -> dict[str, Any]:
    """Roll many per-shard status heartbeats into one plane verdict.

    The rollup mimics a single heartbeat — worst ``health`` across
    shards, worst embedded ``slo`` state, summed counters, merged guard
    stats, newest watermark — so :func:`status_exit_code` applies to it
    unchanged: the plane's exit code equals the worst shard's.  The
    full per-shard detail rides along under ``"shards"``.
    """
    if not statuses:
        raise ValueError("aggregate_statuses needs at least one status")
    worst_health = HealthState.READY
    worst_slo: str | None = None
    sums = {
        "events_seen": 0,
        "requests_total": 0,
        "batches_total": 0,
        "stale_scores": 0,
        "queue_depth": 0,
    }
    watermark = -1
    guard_totals: dict[str, Any] = {}
    by_fault: dict[str, int] = {}
    shards: dict[str, dict[str, Any]] = {}
    for name in sorted(statuses):
        status = statuses[name]
        health = status.get("health", HealthState.READY)
        if _HEALTH_RANK.get(health, 0) > _HEALTH_RANK[worst_health]:
            worst_health = health
        slo = status.get("slo")
        if slo is not None:
            state = slo.get("state", "ok")
            if worst_slo is None or _SLO_RANK.get(state, 0) > _SLO_RANK.get(
                worst_slo, 0
            ):
                worst_slo = state
        for key in sums:
            sums[key] += int(status.get(key, 0) or 0)
        watermark = max(watermark, int(status.get("watermark", -1)))
        guard = status.get("guard") or {}
        for key, value in guard.items():
            if key == "by_fault":
                for fault, count in (value or {}).items():
                    by_fault[fault] = by_fault.get(fault, 0) + int(count)
            elif isinstance(value, (int, float)):
                guard_totals[key] = guard_totals.get(key, 0) + value
        shards[name] = {
            "health": health,
            "exit_code": status_exit_code(status),
            "events_seen": int(status.get("events_seen", 0) or 0),
            "requests_total": int(status.get("requests_total", 0) or 0),
            "watermark": int(status.get("watermark", -1)),
        }
        if slo is not None:
            shards[name]["slo"] = slo.get("state", "ok")
        if "shard" in status:
            shards[name]["shard"] = status["shard"]
    rollup: dict[str, Any] = {
        "schema_version": STATUS_SCHEMA_VERSION,
        "sharded": True,
        "n_shards": len(shards),
        "health": worst_health,
        "watermark": watermark,
        **sums,
        "shards": shards,
    }
    if guard_totals or by_fault:
        guard_totals["by_fault"] = by_fault
        rollup["guard"] = guard_totals
    if worst_slo is not None:
        rollup["slo"] = {"state": worst_slo}
    return rollup


def render_sharded_status(rollup: Mapping[str, Any]) -> str:
    """One-screen summary of a plane rollup: verdict, totals, shard table."""
    lines = [
        f"serve status (sharded): {rollup.get('health', '?')} across "
        f"{rollup.get('n_shards', 0)} shard(s)",
        f"  events seen:   {rollup.get('events_seen', 0)}",
        f"  requests:      {rollup.get('requests_total', 0)} scored in "
        f"{rollup.get('batches_total', 0)} batch(es)",
        f"  watermark:     day {rollup.get('watermark', -1)}",
    ]
    guard = rollup.get("guard") or {}
    if guard:
        lines.append(
            f"  guard:         {guard.get('admitted', 0)} admitted, "
            f"{guard.get('duplicates_dropped', 0)} duplicate(s), "
            f"{guard.get('dead_lettered', 0)} dead-lettered, "
            f"{guard.get('shed', 0)} shed"
        )
    slo = rollup.get("slo") or {}
    if slo:
        lines.append(f"  slo:           {slo.get('state', '?')} (worst shard)")
    plane = rollup.get("plane") or {}
    if plane:
        lines.append(
            f"  plane:         {plane.get('n_shards', '?')} shard(s) over "
            f"{plane.get('n_rows', '?')} stream row(s)"
        )
    for name, shard in sorted((rollup.get("shards") or {}).items()):
        marker = " " if shard.get("exit_code", 0) == 0 else "!"
        detail = shard.get("shard") or {}
        extra = ""
        if detail.get("restored"):
            extra = (
                f", restored (+{detail.get('tail_replayed', 0)} tail "
                "event(s))"
            )
        lines.append(
            f"  {marker} {name}: {shard.get('health', '?')}, "
            f"{shard.get('events_seen', 0)} seen, "
            f"{shard.get('requests_total', 0)} scored{extra}"
        )
    return "\n".join(lines)


def render_status(status: Mapping[str, Any]) -> str:
    """One-screen human-readable summary of a status heartbeat."""
    lines = [
        f"serve status: {status.get('health', '?')} "
        f"(schema v{status.get('schema_version', '?')})",
        f"  events seen:   {status.get('events_seen', 0)}",
        f"  requests:      {status.get('requests_total', 0)} scored in "
        f"{status.get('batches_total', 0)} batch(es)",
        f"  queue depth:   {status.get('queue_depth', 0)}",
        f"  watermark:     day {status.get('watermark', -1)}",
    ]
    if status.get("stale_scores"):
        lines.append(f"  stale scores:  {status['stale_scores']}")
    guard = status.get("guard") or {}
    if guard:
        by_fault = guard.get("by_fault") or {}
        faults = (
            ", ".join(f"{k}={v}" for k, v in sorted(by_fault.items()))
            or "none"
        )
        lines.append(
            f"  guard:         {guard.get('admitted', 0)} admitted, "
            f"{guard.get('duplicates_dropped', 0)} duplicate(s), "
            f"{guard.get('dead_lettered', 0)} dead-lettered "
            f"({faults}), {guard.get('shed', 0)} shed"
        )
    breaker = status.get("breaker") or {}
    if breaker:
        lines.append(
            f"  breaker:       {breaker.get('trips', 0)} trip(s), "
            f"{breaker.get('recoveries', 0)} recovery(ies)"
        )
    timeline = status.get("timeline") or {}
    if timeline:
        lines.append(
            f"  timeline:      {timeline.get('windows_emitted', 0)} window(s) "
            f"({timeline.get('windows_dropped', 0)} dropped from the ring)"
        )
    slo = status.get("slo") or {}
    if slo:
        lines.append(
            f"  slo:           {slo.get('state', '?')} "
            f"({len(slo.get('objectives') or [])} objective(s))"
        )
        for obj in slo.get("objectives") or []:
            if obj.get("state", "ok") != "ok":
                lines.append(
                    f"    {obj.get('state', '?'):<7s}"
                    f"{obj.get('name', '?')}: {obj.get('metric', '?')} "
                    f"{obj.get('op', '?')} {obj.get('threshold', '?')} "
                    f"violated {obj.get('violations', 0)}/"
                    f"{obj.get('windows_evaluated', 0)} window(s)"
                )
    return "\n".join(lines)
