"""Serving health: circuit breaker, degraded state, staleness tagging.

The engine's health is a three-state machine, reusing the PR-4 circuit-
breaker pattern (count consecutive faults, trip, recover on sustained
success) at the serving layer:

``ready``
    The steady state: events admit and score normally.
``degraded``
    The breaker tripped — a streak of dead-lettered/shed events (or
    stale scores) crossed the threshold.  The engine *keeps scoring*
    (degraded, not down: a hyperscale scorer must survive a misbehaving
    telemetry pipeline), but the state is exported via status records,
    metrics, and the run manifest so operators see the input is sick.
``draining``
    Terminal: shutdown has begun, pending requests are being flushed,
    no new events are admitted.  Entered explicitly, never left.

Staleness is a separate, per-score concern: when a scored event's
calendar day lags the fleet watermark (the newest calendar day the
engine has seen) by more than :class:`StalenessPolicy.max_lag_days`,
the score is still produced but tagged ``stale`` with the lag attached —
downstream consumers decide whether a stale risk estimate is actionable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HealthState", "StalenessPolicy", "ServeBreaker"]


class HealthState:
    """The serving health states (plain strings, JSON-friendly)."""

    READY = "ready"
    DEGRADED = "degraded"
    DRAINING = "draining"

    #: Legal transition order for rendering/asserts.
    ORDER = (READY, DEGRADED, DRAINING)


@dataclass(frozen=True)
class StalenessPolicy:
    """Watermark-lag bound past which a score is tagged stale.

    ``max_lag_days`` compares a scored event's ``calendar_day`` against
    the fleet watermark (newest calendar day seen by the engine) at
    flush time.  ``count_as_fault`` feeds stale scores into the circuit
    breaker, so a fleet scoring mostly-stale drives degrades visibly.
    """

    max_lag_days: int = 7
    count_as_fault: bool = False

    def __post_init__(self) -> None:
        if self.max_lag_days < 0:
            raise ValueError("max_lag_days must be >= 0")


class ServeBreaker:
    """Consecutive-fault circuit breaker over the admission stream.

    ``fault_threshold`` consecutive faults (dead letters, sheds, and —
    under ``StalenessPolicy(count_as_fault=True)`` — stale scores) trip
    ``ready`` → ``degraded``; ``recovery_threshold`` consecutive healthy
    admissions close the breaker again.  ``begin_drain()`` moves to the
    terminal ``draining`` state from anywhere.
    """

    def __init__(
        self, fault_threshold: int = 8, recovery_threshold: int = 32
    ):
        if fault_threshold < 1:
            raise ValueError("fault_threshold must be >= 1")
        if recovery_threshold < 1:
            raise ValueError("recovery_threshold must be >= 1")
        self.fault_threshold = fault_threshold
        self.recovery_threshold = recovery_threshold
        self.state = HealthState.READY
        self.consecutive_faults = 0
        self.consecutive_oks = 0
        self.trips = 0
        self.recoveries = 0

    def record_ok(self) -> str:
        """One healthy admission; may close a tripped breaker."""
        self.consecutive_faults = 0
        if self.state == HealthState.DEGRADED:
            self.consecutive_oks += 1
            if self.consecutive_oks >= self.recovery_threshold:
                self.state = HealthState.READY
                self.recoveries += 1
                self.consecutive_oks = 0
        return self.state

    def record_fault(self) -> str:
        """One diverted/stale event; may trip the breaker."""
        self.consecutive_oks = 0
        self.consecutive_faults += 1
        if (
            self.state == HealthState.READY
            and self.consecutive_faults >= self.fault_threshold
        ):
            self.state = HealthState.DEGRADED
            self.trips += 1
        return self.state

    def begin_drain(self) -> str:
        """Enter the terminal draining state (shutdown has begun)."""
        self.state = HealthState.DRAINING
        return self.state

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "fault_threshold": self.fault_threshold,
            "recovery_threshold": self.recovery_threshold,
        }
