"""Sharded serving plane: partitioned scorer shards under supervision.

A 30M-drive fleet logging daily is a topology, not a process.  This
module partitions the serving tier by drive-ID hash
(:mod:`repro.serve.partition`) across N scorer shards, each running its
own :class:`~repro.serve.engine.ScoringEngine` +
:class:`~repro.serve.guard.AdmissionGuard` + dead-letter queue over a
private slice of the feature store, with all shard state rooted in a
*plane* directory::

    plane/
      plane.json               # partition map, shard count, stream size
      shard-00/
        checkpoint-g000001.npz # store state + score prefix, rotated
        journal.jsonl          # accepted events, admission order
        dlq.jsonl              # diverted events
        status.json            # per-shard heartbeat
      shard-01/ ...

Three invariants make the plane production-grade:

1. **Shard-count identity.**  The partition is pure in the drive id and
   scores are per-row, so merging per-shard outputs back into source-row
   order reproduces the serial replay byte-for-byte at any shard count
   — the sharded analogue of the workers-N guarantee in
   :mod:`repro.parallel`.
2. **Crash failover identity.**  Shards run as supervised pool tasks
   (:func:`repro.resilience.supervised_iter_tasks` — watchdog, retries,
   circuit breaker).  A killed shard (``REPRO_CHAOS=shard_kill=…``
   SIGKILLs the planned victim mid-stream) is healed on retry by
   restoring its newest checkpoint — one atomic NPZ holding the feature
   store *and* the score prefix, a consistent cut — then replaying its
   accepted-event journal tail from the checkpoint watermark, then
   resuming the trace.  Output is byte-identical to a never-crashed run.
3. **Reshard identity.**  An N→M reshard merges the old shards'
   journals back into canonical ``(drive_id, age_days)`` order — every
   drive lived on exactly one shard, so per-drive order is preserved —
   and replays through the new partition map; byte-identical again.

Backpressure is cross-shard by construction: shards share no queues, so
a full shard sheds to *its own* DLQ (``QueuePolicy(on_full="shed")``)
and can never block a sibling — see :class:`ShardRouter`, the
single-process live topology.
"""

from __future__ import annotations

import json
import os
import signal
import time
import zipfile
from dataclasses import dataclass, field
from multiprocessing import parent_process
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..core.predictor import FailurePredictor
from ..data.dataset import DriveDayDataset
from ..data.io import iter_drive_day_chunks
from ..obs import eventlog
from ..obs.manifest import _atomic_write_text, _created_now
from ..reliability.runner import atomic_save_npz
from ..resilience.chaos import planned_shard_kill, shard_spec_from_env
from .batching import BatchPolicy, QueuePolicy
from .dlq import DeadLetterQueue, EventJournal
from .engine import ScoredEvent, ScoringEngine, TelemetryConfig
from .feature_store import FeatureStore, FeatureStoreError
from .guard import AdmissionGuard
from .health import STATUS_SCHEMA_VERSION, ServeBreaker, load_status
from .partition import PARTITION_VERSION, PartitionMap
from .snapshots import latest_snapshot, write_rotated

__all__ = [
    "SHARD_SCHEMA_VERSION",
    "ShardError",
    "ShardPaths",
    "ShardCheckpoint",
    "ShardedReplayResult",
    "ShardRouter",
    "run_sharded_replay",
    "reshard_plane",
    "merged_plane_events",
    "read_plane_manifest",
    "plane_scores",
    "plane_status",
]

#: Bump when the checkpoint or plane layout changes incompatibly.
SHARD_SCHEMA_VERSION = 1

#: Per-shard checkpoints default to keeping this many rotated
#: generations — enough to survive a corrupted newest write.
DEFAULT_CHECKPOINT_KEEP = 2

_PLANE_MANIFEST = "plane.json"
_CHAOS_MARKER = "chaos_fired"


class ShardError(RuntimeError):
    """A shard checkpoint, journal, or plane layout is inconsistent."""


# --------------------------------------------------------------------------
# plane layout
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPaths:
    """Derived file layout for one shard of a plane directory."""

    root: Path
    shard_id: int

    @property
    def dir(self) -> Path:
        return Path(self.root) / f"shard-{self.shard_id:02d}"

    @property
    def checkpoint_base(self) -> Path:
        """Rotation base — generations are ``checkpoint-gNNNNNN.npz``."""
        return self.dir / "checkpoint.npz"

    @property
    def journal(self) -> Path:
        return self.dir / "journal.jsonl"

    @property
    def dlq(self) -> Path:
        return self.dir / "dlq.jsonl"

    @property
    def status(self) -> Path:
        return self.dir / "status.json"

    @property
    def chaos_marker(self) -> Path:
        return self.dir / _CHAOS_MARKER


def _count_lines(path: Path) -> int:
    if not path.exists():
        return 0
    with open(path) as fh:
        return sum(1 for line in fh if line.strip())


def _truncate_jsonl(path: Path, keep: int) -> None:
    """Atomically cut a JSONL file back to its first ``keep`` lines.

    Failover uses this to roll the journal/DLQ back to the checkpoint
    cut before re-appending — otherwise a retried shard would record
    its post-checkpoint events twice.
    """
    if not path.exists():
        if keep:
            raise ShardError(f"{path} is missing but {keep} line(s) expected")
        return
    with open(path) as fh:
        lines = [line for line in fh if line.strip()]
    if keep > len(lines):
        raise ShardError(
            f"{path} has {len(lines)} line(s), cannot keep {keep}"
        )
    from ..reliability.runner import atomic_write

    with atomic_write(path, "w") as fh:
        fh.writelines(lines[:keep])


# --------------------------------------------------------------------------
# shard checkpoint: store state + score prefix in one atomic NPZ
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardCheckpoint:
    """One consistent cut of a shard: store state + everything scored.

    The feature store alone is not enough to fail over — scores produced
    before a crash die with the process.  A shard checkpoint therefore
    bundles, in a single atomic NPZ:

    - the store's :meth:`~repro.serve.feature_store.FeatureStore.state_arrays`;
    - the probability prefix and the global source rows it scored;
    - the shard's stream position (``rows_seen``, counting diverted
      rows) and the journal/DLQ line counts at the cut — restore
      replays only journal lines past ``journal_lines``;
    - ``clean``: whether the shard had seen zero diverted/duplicate
      events, which gates the journal-tail fast path.
    """

    path: Path
    store_arrays: dict[str, np.ndarray]
    probability: np.ndarray
    accepted_global: np.ndarray
    shard_id: int
    n_shards: int
    rows_seen: int
    journal_lines: int
    dlq_lines: int
    clean: bool


def _save_checkpoint(
    path: Path,
    store: FeatureStore,
    probability: np.ndarray,
    accepted_global: np.ndarray,
    shard_id: int,
    n_shards: int,
    rows_seen: int,
    journal_lines: int,
    dlq_lines: int,
    clean: bool,
) -> None:
    meta = np.array(
        [
            SHARD_SCHEMA_VERSION,
            PARTITION_VERSION,
            shard_id,
            n_shards,
            rows_seen,
            journal_lines,
            dlq_lines,
            1 if clean else 0,
        ],
        dtype=np.int64,
    )
    atomic_save_npz(
        path,
        shard_meta=meta,
        shard_probability=np.asarray(probability, dtype=np.float64),
        shard_accepted_global=np.asarray(accepted_global, dtype=np.int64),
        **store.state_arrays(),
    )


def load_checkpoint(path: str | Path) -> ShardCheckpoint:
    """Read one checkpoint generation; raises :class:`ShardError`."""
    path = Path(path)
    try:
        with np.load(path) as payload:
            arrays = {k: payload[k] for k in payload.files}
    except (OSError, ValueError, zipfile.BadZipFile, EOFError) as exc:
        raise ShardError(
            f"shard checkpoint {path} is unreadable ({exc})"
        ) from None
    for key in ("shard_meta", "shard_probability", "shard_accepted_global"):
        if key not in arrays:
            raise ShardError(f"shard checkpoint {path} is missing {key!r}")
    meta = arrays["shard_meta"]
    if int(meta[0]) != SHARD_SCHEMA_VERSION:
        raise ShardError(
            f"shard checkpoint {path} has schema v{int(meta[0])}, "
            f"this build speaks v{SHARD_SCHEMA_VERSION}"
        )
    if int(meta[1]) != PARTITION_VERSION:
        raise ShardError(
            f"shard checkpoint {path} was partitioned under version "
            f"{int(meta[1])}, this build speaks {PARTITION_VERSION}"
        )
    store_arrays = {
        k: v
        for k, v in arrays.items()
        if not k.startswith("shard_")
    }
    return ShardCheckpoint(
        path=path,
        store_arrays=store_arrays,
        probability=arrays["shard_probability"],
        accepted_global=arrays["shard_accepted_global"],
        shard_id=int(meta[2]),
        n_shards=int(meta[3]),
        rows_seen=int(meta[4]),
        journal_lines=int(meta[5]),
        dlq_lines=int(meta[6]),
        clean=bool(meta[7]),
    )


# --------------------------------------------------------------------------
# the shard worker task (runs inside a supervised pool worker)
# --------------------------------------------------------------------------

#: Predictor + trace + plan installed once per pool worker, so running
#: several shard tasks on one worker re-pickles nothing.
_shard_state: tuple | None = None


def _set_shard_state(
    predictor: FailurePredictor, source: Any, plan: dict
) -> None:
    global _shard_state
    _shard_state = (predictor, source, plan)


def _run_shard(shard_id: int) -> dict:
    assert _shard_state is not None, "shard state not installed"
    predictor, source, plan = _shard_state
    return run_shard_task(predictor, source, plan, shard_id)


def _maybe_kill_point(paths: ShardPaths, shard_id: int, plan: dict) -> int | None:
    """Planned SIGKILL threshold (in sub-stream rows), or ``None``.

    Fires only inside a pool worker process (a serial in-process shard
    must never SIGKILL the caller) and only once per shard — the
    on-disk marker written just before the kill gates the retry.
    """
    if parent_process() is None:
        return None
    if paths.chaos_marker.exists():
        return None
    spec, seed = shard_spec_from_env()
    if not spec:
        return None
    frac = planned_shard_kill(shard_id, spec, seed)
    if frac is None:
        return None
    share = max(1, int(plan["n_rows"]) // max(1, int(plan["n_shards"])))
    return max(1, int(frac * share))


def run_shard_task(
    predictor: FailurePredictor,
    source: DriveDayDataset | str | Path,
    plan: Mapping[str, Any],
    shard_id: int,
) -> dict:
    """Run one scorer shard over its slice of the trace.

    Streams the full trace in stored ``(drive_id, age_days)`` order,
    keeps the rows whose drive hashes to this shard (per-drive order is
    preserved — drive runs are contiguous in the sorted stream, so the
    filtered sub-stream is still grouped and age-sorted), admits them
    through the shard's guard, and scores through the shard's engine.

    If a checkpoint exists (a previous attempt was killed), the shard
    **fails over**: restore the newest checkpoint, roll the journal/DLQ
    back to the checkpoint cut, re-admit the journal tail recorded after
    the cut (extending the score prefix through the same kernels), and
    resume the trace at the restored stream position.  Scores are
    byte-identical to a never-crashed run in all cases.
    """
    t0 = time.perf_counter()
    n_shards = int(plan["n_shards"])
    pmap = PartitionMap(n_shards)
    paths = ShardPaths(Path(plan["root"]), shard_id)
    paths.dir.mkdir(parents=True, exist_ok=True)
    checkpoint_every = plan.get("checkpoint_every")
    checkpoint_keep = plan.get("checkpoint_keep") or DEFAULT_CHECKPOINT_KEEP

    # ---------------------------------------------------------- failover
    ckpt_path = latest_snapshot(paths.checkpoint_base)
    ckpt = load_checkpoint(ckpt_path) if ckpt_path is not None else None
    if ckpt is not None and (
        ckpt.shard_id != shard_id or ckpt.n_shards != n_shards
    ):
        raise ShardError(
            f"checkpoint {ckpt.path} belongs to shard {ckpt.shard_id}/"
            f"{ckpt.n_shards}, not {shard_id}/{n_shards} — refusing to "
            "restore across a reshard (use a fresh plane directory)"
        )
    journal_on_disk = _count_lines(paths.journal)
    dlq_on_disk = _count_lines(paths.dlq)
    tail: list[dict] = []
    if ckpt is None:
        # A first attempt killed before any checkpoint may have left
        # journal/DLQ lines; the retry starts from scratch, so roll both
        # back to empty or the re-run would record every event twice.
        if journal_on_disk:
            _truncate_jsonl(paths.journal, 0)
        if dlq_on_disk:
            _truncate_jsonl(paths.dlq, 0)
        store = FeatureStore()
        prob_parts: list[np.ndarray] = []
        idx_parts: list[np.ndarray] = []
        resume_at = 0
    else:
        try:
            store = FeatureStore.from_arrays(
                ckpt.store_arrays, source=f"shard checkpoint {ckpt.path}"
            )
        except FeatureStoreError as exc:
            raise ShardError(str(exc)) from None
        prob_parts = [np.asarray(ckpt.probability, dtype=np.float64)]
        idx_parts = [np.asarray(ckpt.accepted_global, dtype=np.int64)]
        resume_at = ckpt.rows_seen
        if (
            ckpt.clean
            and dlq_on_disk == ckpt.dlq_lines
            and journal_on_disk >= ckpt.journal_lines
        ):
            # Journal-tail fast path: every stream row past the cut was
            # accepted and journaled, so the tail *is* the sub-stream.
            if journal_on_disk > ckpt.journal_lines:
                tail = [
                    body["event"]
                    for body in EventJournal.read(paths.journal)[
                        ckpt.journal_lines :
                    ]
                ]
        # Roll both files back to the cut; tail events re-append (with
        # identical seq numbers) as they re-admit below, and in the
        # sick-tail fallback the trace re-supplies them.
        _truncate_jsonl(paths.journal, ckpt.journal_lines)
        if dlq_on_disk != ckpt.dlq_lines:
            _truncate_jsonl(paths.dlq, ckpt.dlq_lines)

    dlq = DeadLetterQueue(paths.dlq)
    journal = EventJournal(paths.journal)
    guard = AdmissionGuard(store, dlq=dlq, journal=journal, breaker=ServeBreaker())
    engine = ScoringEngine(
        predictor,
        store=store,
        guard=guard,
        workers=1,
        telemetry=TelemetryConfig(status_path=paths.status),
    )

    # Re-admit the journal tail: the store is exactly at the checkpoint
    # cut, so each event accepts and scores through the same per-row
    # kernels the chunk path uses — bit-identical by row independence.
    n_tail = len(tail)
    tail_ids = np.empty(n_tail, dtype=np.int64)
    tail_glob = np.full(n_tail, -1, dtype=np.int64)
    if n_tail:
        tail_probs = np.empty(n_tail, dtype=np.float64)
        for j, event in enumerate(tail):
            out = guard.admit(event)
            if not out.accepted:
                raise ShardError(
                    f"shard {shard_id}: journal tail event {j} "
                    f"(drive {out.drive_id}, age {out.age_days}) did not "
                    f"re-admit ({out.status}: {out.reason}) — checkpoint "
                    "and journal disagree"
                )
            tail_ids[j] = out.drive_id
            tail_probs[j] = engine._score_rows(
                out.row[None, :], np.asarray([out.age_days], dtype=np.int64)
            )[0]
            engine.requests_total += 1
            cal = event.get("calendar_day")
            if cal is not None and int(cal) > engine._fleet_day:
                engine._fleet_day = int(cal)
            engine._observe_events(
                1, watermark=engine._fleet_day if engine._fleet_day >= 0 else None
            )
        prob_parts.append(tail_probs)
        idx_parts.append(tail_glob)  # filled in during the skip phase
    skip_until = resume_at + n_tail

    kill_at = _maybe_kill_point(paths, shard_id, plan)

    # ---------------------------------------------------------- stream
    chunks = iter_drive_day_chunks(
        source, chunk_rows=int(plan.get("chunk_rows") or 4096)
    )
    if plan.get("load_profile"):
        # Bench mode: the seeded arrival process decides how many rows
        # each delivery carries (scores are per-row, so bytes cannot
        # change — only the batching pattern the shards absorb).
        from .loadgen import LoadProfile, burst_chunks

        chunks = burst_chunks(
            chunks,
            int(plan["n_rows"]),
            LoadProfile.from_dict(plan["load_profile"]),
        )
    n_batches = 0
    n_diverted = 0
    n_duplicates = 0
    accepted_since_ckpt = 0
    base_row = 0  # global row of the current chunk's first row
    sub_pos = 0  # sub-stream rows seen so far (including skipped)

    def write_checkpoint() -> None:
        write_rotated(
            paths.checkpoint_base,
            lambda p: _save_checkpoint(
                p,
                store,
                np.concatenate(prob_parts) if prob_parts else np.empty(0),
                np.concatenate(idx_parts)
                if idx_parts
                else np.empty(0, dtype=np.int64),
                shard_id,
                n_shards,
                sub_pos,
                journal.appended,
                dlq.appended,
                clean=(
                    dlq.appended == 0
                    and guard.stats.duplicates_dropped == 0
                    and (ckpt is None or ckpt.clean)
                ),
            ),
            keep=checkpoint_keep,
        )

    for chunk in chunks:
        ids = np.asarray(chunk["drive_id"])
        n_chunk = ids.shape[0]
        mask = pmap.shard_of_array(ids) == shard_id
        length = int(mask.sum())
        if length == 0:
            base_row += n_chunk
            continue
        rows = np.arange(base_row, base_row + n_chunk, dtype=np.int64)
        base_row += n_chunk
        if length == n_chunk:
            sub = dict(chunk)
            g = rows
        else:
            sub = {k: np.asarray(v)[mask] for k, v in chunk.items()}
            g = rows[mask]
        lo, hi = sub_pos, sub_pos + length
        sub_pos = hi
        # Assign global rows to the journal-tail events this sub-chunk
        # covers (positions [resume_at, skip_until) of the sub-stream),
        # verifying the trace agrees with what the journal recorded.
        if n_tail:
            a, b = max(lo, resume_at), min(hi, skip_until)
            if a < b:
                tail_glob[a - resume_at : b - resume_at] = g[a - lo : b - lo]
                got = np.asarray(sub["drive_id"][a - lo : b - lo], dtype=np.int64)
                if not np.array_equal(got, tail_ids[a - resume_at : b - resume_at]):
                    raise ShardError(
                        f"shard {shard_id}: journal tail does not match the "
                        "trace at the checkpoint watermark — refusing to "
                        "merge misattributed scores"
                    )
        if hi <= skip_until:
            continue
        if lo < skip_until:
            cut = skip_until - lo
            sub = {k: v[cut:] for k, v in sub.items()}
            g = g[cut:]
        adm = guard.admit_columns(sub)
        n_diverted += adm.n_diverted
        n_duplicates += adm.n_duplicates
        if adm.calendar_days.size:
            top = int(adm.calendar_days.max())
            if top > engine._fleet_day:
                engine._fleet_day = top
        m = adm.features.shape[0]
        if m:
            prob_parts.append(engine._score_rows(adm.features, adm.ages))
            idx_parts.append(g[adm.accepted_index])
            n_batches += 1
            accepted_since_ckpt += m
            engine.requests_total += m
            engine.batches_total += 1
        engine._observe_events(
            len(g),
            watermark=engine._fleet_day if engine._fleet_day >= 0 else None,
        )
        if (
            checkpoint_every is not None
            and accepted_since_ckpt >= checkpoint_every
        ):
            write_checkpoint()
            accepted_since_ckpt = 0
        if kill_at is not None and hi >= kill_at:
            # Chaos: mark first (the marker gates the retry), then die
            # without warning — the supervisor must heal this.
            _atomic_write_text(
                paths.chaos_marker, f"killed at sub-stream row {hi}\n"
            )
            os.kill(os.getpid(), signal.SIGKILL)

    # Final checkpoint: makes a later restore (or resumed plane) read
    # one NPZ + an empty journal tail, however long the shard lived.
    write_checkpoint()

    probability = (
        np.concatenate(prob_parts) if prob_parts else np.empty(0)
    )
    accepted_global = (
        np.concatenate(idx_parts)
        if idx_parts
        else np.empty(0, dtype=np.int64)
    )
    status = engine.status()
    status["shard"] = {
        "shard_id": shard_id,
        "n_shards": n_shards,
        "partition_version": PARTITION_VERSION,
        "rows_seen": sub_pos,
        "accepted": int(probability.shape[0]),
        "restored": ckpt is not None,
        "tail_replayed": n_tail,
    }
    _atomic_write_text(
        paths.status, json.dumps(status, indent=2, sort_keys=True) + "\n"
    )
    eventlog.emit(
        "serve.shard.done",
        f"shard {shard_id}/{n_shards} scored {probability.shape[0]} events",
        shard_id=shard_id,
        restored=ckpt is not None,
        tail_replayed=n_tail,
    )
    return {
        "shard_id": shard_id,
        "probability": probability,
        "accepted_global": accepted_global,
        "rows_seen": sub_pos,
        "n_batches": n_batches,
        #: Cumulative across attempts: the DLQ file survives failover.
        "n_diverted": dlq.appended,
        "n_duplicates": n_duplicates,
        "n_drives": store.n_drives,
        "restored": ckpt is not None,
        "tail_replayed": n_tail,
        "elapsed_seconds": time.perf_counter() - t0,
    }


# --------------------------------------------------------------------------
# the plane: supervised fan-out + deterministic merge
# --------------------------------------------------------------------------


@dataclass
class ShardedReplayResult:
    """Merged outcome of a sharded replay.

    ``probability`` is in source-row order (the per-shard outputs are
    merged by their global row indices), so it compares elementwise
    against a serial replay or the offline pipeline — the shard-count
    byte-identity gate.  ``accepted_index`` maps each probability to its
    source row, exactly like a guarded serial replay.
    """

    probability: np.ndarray
    accepted_index: np.ndarray
    n_events: int
    n_rows: int
    n_shards: int
    n_diverted: int
    n_duplicates: int
    elapsed_seconds: float
    shards: list[dict] = field(default_factory=list)

    @property
    def n_restored(self) -> int:
        """Shards that failed over from a checkpoint (chaos drills)."""
        return sum(1 for s in self.shards if s.get("restored"))

    @property
    def events_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.n_events / self.elapsed_seconds


def _source_rows(source: DriveDayDataset | str | Path) -> int:
    if isinstance(source, DriveDayDataset):
        return len(source)
    return sum(
        len(chunk["drive_id"])
        for chunk in iter_drive_day_chunks(source, chunk_rows=65536)
    )


def read_plane_manifest(root: str | Path) -> dict:
    """Load ``plane.json``; raises :class:`ShardError` when unusable."""
    path = Path(root) / _PLANE_MANIFEST
    try:
        body = json.loads(path.read_text())
    except FileNotFoundError:
        raise ShardError(
            f"{path} does not exist — not a shard plane directory"
        ) from None
    except (OSError, ValueError) as exc:
        raise ShardError(f"{path} is unreadable: {exc}") from None
    if not isinstance(body, dict) or "n_shards" not in body:
        raise ShardError(f"{path} is not a plane manifest")
    return body


def _write_plane_manifest(
    root: Path, n_shards: int, n_rows: int, chunk_rows: int
) -> None:
    body = {
        "schema_version": SHARD_SCHEMA_VERSION,
        "created": _created_now(),
        "n_shards": n_shards,
        "partition": PartitionMap(n_shards).to_dict(),
        "n_rows": n_rows,
        "chunk_rows": chunk_rows,
    }
    _atomic_write_text(
        root / _PLANE_MANIFEST,
        json.dumps(body, indent=2, sort_keys=True) + "\n",
    )


def run_sharded_replay(
    predictor: FailurePredictor,
    source: DriveDayDataset | str | Path,
    n_shards: int,
    plane: str | Path,
    chunk_rows: int = 4096,
    checkpoint_every: int | None = None,
    checkpoint_keep: int = DEFAULT_CHECKPOINT_KEEP,
    workers: int | None = None,
    policy: Any | None = None,
    supervision: Any | None = None,
    load_profile: Any | None = None,
) -> ShardedReplayResult:
    """Replay a trace through ``n_shards`` supervised scorer shards.

    One supervised pool task per shard; the predictor and trace handle
    install once per worker.  Quarantine is forced off (a missing shard
    would be a silent hole in the merged scores), so a shard that still
    fails after the policy's retries raises — the caller sees exit code
    2 through the CLI, never partial output.

    ``workers`` bounds the concurrently *running* shards; any value
    produces the same bytes.  With ``REPRO_CHAOS=shard_kill=…`` set,
    planned victims SIGKILL themselves mid-stream and are healed by the
    supervisor's retry via checkpoint + journal-tail failover — this
    needs ``workers >= 2`` (an in-process shard never injects the kill).
    """
    if n_shards < 1:
        raise ShardError("n_shards must be >= 1")
    from ..resilience.supervisor import (
        SupervisorPolicy,
        force_fail,
        supervised_iter_tasks,
    )

    t0 = time.perf_counter()
    plane = Path(plane)
    plane.mkdir(parents=True, exist_ok=True)
    n_rows = _source_rows(source)
    _write_plane_manifest(plane, n_shards, n_rows, chunk_rows)
    plan = {
        "root": str(plane),
        "n_shards": n_shards,
        "chunk_rows": chunk_rows,
        "checkpoint_every": checkpoint_every,
        "checkpoint_keep": checkpoint_keep,
        "n_rows": n_rows,
        "load_profile": (
            None if load_profile is None else load_profile.to_dict()
        ),
    }
    results: list[dict | None] = [None] * n_shards
    for index, result in supervised_iter_tasks(
        _run_shard,
        list(range(n_shards)),
        workers=workers,
        policy=force_fail(policy or SupervisorPolicy()),
        label="repro.serve.shard",
        initializer=_set_shard_state,
        initargs=(predictor, source, plan),
        supervision=supervision,
    ):
        results[index] = result
    missing = [i for i, r in enumerate(results) if r is None]
    if missing:  # pragma: no cover - force_fail raises before this
        raise ShardError(f"shards {missing} produced no result")

    all_idx = np.concatenate([r["accepted_global"] for r in results])
    all_p = np.concatenate([r["probability"] for r in results])
    order = np.argsort(all_idx, kind="stable")
    summaries = [
        {k: v for k, v in r.items() if k not in ("probability", "accepted_global")}
        for r in results
    ]
    return ShardedReplayResult(
        probability=all_p[order],
        accepted_index=all_idx[order],
        n_events=int(all_p.shape[0]),
        n_rows=n_rows,
        n_shards=n_shards,
        n_diverted=sum(r["n_diverted"] for r in results),
        n_duplicates=sum(r["n_duplicates"] for r in results),
        elapsed_seconds=time.perf_counter() - t0,
        shards=summaries,
    )


def plane_scores(root: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Merged ``(probability, accepted_index)`` of a completed plane.

    Reads each shard's newest checkpoint (every completed shard writes a
    final one) and merges by global row — the same merge
    :func:`run_sharded_replay` performs in memory, reconstructed from
    disk.  The reshard parity gate compares against this.
    """
    manifest = read_plane_manifest(root)
    prob_parts: list[np.ndarray] = []
    idx_parts: list[np.ndarray] = []
    for shard_id in range(int(manifest["n_shards"])):
        paths = ShardPaths(Path(root), shard_id)
        ckpt_path = latest_snapshot(paths.checkpoint_base)
        if ckpt_path is None:
            raise ShardError(
                f"shard {shard_id} of {root} has no checkpoint — the plane "
                "never completed a sharded replay"
            )
        ckpt = load_checkpoint(ckpt_path)
        prob_parts.append(np.asarray(ckpt.probability, dtype=np.float64))
        idx_parts.append(np.asarray(ckpt.accepted_global, dtype=np.int64))
    probability = np.concatenate(prob_parts)
    index = np.concatenate(idx_parts)
    order = np.argsort(index, kind="stable")
    return probability[order], index[order]


# --------------------------------------------------------------------------
# resharding: N -> M through the journals
# --------------------------------------------------------------------------


def merged_plane_events(root: str | Path) -> list[dict]:
    """All accepted events of a plane, in canonical trace order.

    Each drive lived on exactly one shard, and its journal records that
    drive's events in admission (= stream) order; sorting the union by
    ``(drive_id, age_days, seq)`` therefore reconstructs the canonical
    ``(drive, day)`` trace order with per-drive order preserved — the
    property the reshard identity gate rests on (and the hypothesis
    suite pins).
    """
    manifest = read_plane_manifest(root)
    keyed: list[tuple[int, int, int, dict]] = []
    for shard_id in range(int(manifest["n_shards"])):
        paths = ShardPaths(Path(root), shard_id)
        if not paths.journal.exists():
            continue
        for body in EventJournal.read(paths.journal):
            event = body["event"]
            keyed.append(
                (
                    int(event["drive_id"]),
                    int(event["age_days"]),
                    int(body["seq"]),
                    event,
                )
            )
    keyed.sort(key=lambda item: item[:3])
    return [event for _, _, _, event in keyed]


def _dataset_from_events(events: list[dict]) -> DriveDayDataset:
    if not events:
        return DriveDayDataset({})
    names = list(events[0].keys())
    columns = {
        name: np.asarray([event[name] for event in events])
        for name in names
    }
    return DriveDayDataset(columns)


def reshard_plane(
    old_plane: str | Path,
    new_plane: str | Path,
    predictor: FailurePredictor,
    n_shards: int,
    **kwargs: Any,
) -> ShardedReplayResult:
    """Rebalance an N-shard plane onto ``n_shards`` new shards.

    Merges the old shards' journals into canonical per-drive event
    order and replays the stream through the new partition map into a
    fresh plane directory.  The merged scores are byte-identical to
    both the old plane's and a serial replay of the original trace —
    the reshard identity gate.
    """
    old_plane, new_plane = Path(old_plane), Path(new_plane)
    if old_plane.resolve() == new_plane.resolve():
        raise ShardError(
            "reshard needs a fresh plane directory (old checkpoints "
            "belong to the old partition map)"
        )
    events = merged_plane_events(old_plane)
    dataset = _dataset_from_events(events)
    return run_sharded_replay(
        predictor, dataset, n_shards, new_plane, **kwargs
    )


# --------------------------------------------------------------------------
# plane status rollup
# --------------------------------------------------------------------------


def plane_status(root: str | Path) -> dict:
    """Aggregate every shard's ``status.json`` into one rollup payload.

    The rollup mimics a single status heartbeat (``health``, ``slo``,
    summed counters) so the existing
    :func:`repro.serve.health.status_exit_code` contract applies
    unchanged, and adds a ``shards`` table keyed by shard directory.
    """
    from .health import aggregate_statuses

    root = Path(root)
    statuses: dict[str, dict] = {}
    for shard_dir in sorted(root.glob("shard-*")):
        status_file = shard_dir / "status.json"
        if status_file.is_file():
            statuses[shard_dir.name] = load_status(status_file)
    if not statuses:
        raise ValueError(
            f"{root} contains no shard status files (shard-*/status.json)"
        )
    rollup = aggregate_statuses(statuses)
    try:
        manifest = read_plane_manifest(root)
    except ShardError:
        manifest = None
    if manifest is not None:
        rollup["plane"] = {
            "n_shards": manifest.get("n_shards"),
            "n_rows": manifest.get("n_rows"),
            "partition": manifest.get("partition"),
        }
    return rollup


# --------------------------------------------------------------------------
# live topology: one process, N engines, zero shared queues
# --------------------------------------------------------------------------


class ShardRouter:
    """Route live events to per-shard engines by drive-ID hash.

    The single-process form of the plane, for the ``serve run``-style
    event transport: ``n_shards`` independent engines, each with its own
    store, guard, DLQ, journal, and bounded queue.  Because shards share
    *nothing*, backpressure is local by construction — a shard at its
    queue bound sheds the incoming event to its own DLQ
    (``QueuePolicy(on_full="shed")``) and returns immediately; sibling
    shards keep admitting and scoring untouched.
    """

    def __init__(
        self,
        predictor: FailurePredictor,
        n_shards: int,
        plane: str | Path | None = None,
        batch_policy: BatchPolicy | None = None,
        queue_policy: QueuePolicy | None = None,
        staleness: Any | None = None,
    ):
        if n_shards < 1:
            raise ShardError("n_shards must be >= 1")
        self.pmap = PartitionMap(n_shards)
        self.plane = None if plane is None else Path(plane)
        self.engines: list[ScoringEngine] = []
        if self.plane is not None:
            self.plane.mkdir(parents=True, exist_ok=True)
            _write_plane_manifest(self.plane, n_shards, 0, 0)
        for shard_id in range(n_shards):
            dlq = journal = None
            telemetry = None
            if self.plane is not None:
                paths = ShardPaths(self.plane, shard_id)
                paths.dir.mkdir(parents=True, exist_ok=True)
                dlq = DeadLetterQueue(paths.dlq)
                journal = EventJournal(paths.journal)
                telemetry = TelemetryConfig(status_path=paths.status)
            store = FeatureStore()
            guard = AdmissionGuard(
                store, dlq=dlq, journal=journal, breaker=ServeBreaker()
            )
            self.engines.append(
                ScoringEngine(
                    predictor,
                    store=store,
                    guard=guard,
                    batch_policy=batch_policy,
                    queue_policy=queue_policy,
                    staleness=staleness,
                    telemetry=telemetry,
                )
            )

    @property
    def n_shards(self) -> int:
        return len(self.engines)

    def shard_of(self, record: Mapping[str, Any]) -> int:
        """Owning shard of one event; unaddressable events go to shard 0.

        An event without a usable ``drive_id`` cannot be partitioned —
        shard 0 is the deterministic dumping ground, where the guard
        classifies it ``malformed`` and dead-letters it as usual.
        """
        try:
            return self.pmap.shard_of(int(record["drive_id"]))
        except (KeyError, TypeError, ValueError):
            return 0

    def submit(self, record: Mapping[str, Any]) -> list[ScoredEvent]:
        """Route one event to its shard's engine; scores flush as batched."""
        return self.engines[self.shard_of(record)].submit(record)

    def poll(self) -> list[ScoredEvent]:
        """Wait-bound flush tick across every shard, in shard order."""
        out: list[ScoredEvent] = []
        for engine in self.engines:
            out.extend(engine.poll())
        return out

    def drain(self) -> list[ScoredEvent]:
        """Flush every shard (stream end); shards drain independently."""
        out: list[ScoredEvent] = []
        for engine in self.engines:
            out.extend(engine.drain())
        return out

    def queue_depths(self) -> list[int]:
        return [len(engine.batcher) for engine in self.engines]

    def status(self) -> dict:
        """Live rollup straight from the engines (no files needed)."""
        from .health import aggregate_statuses

        return aggregate_statuses(
            {
                f"shard-{i:02d}": engine.status()
                for i, engine in enumerate(self.engines)
            }
        )

    def close(self) -> None:
        for engine in self.engines:
            engine.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
