"""Seeded synthetic-traffic generator for serving benchmarks.

"Heavy traffic" is only a claim until it is a reproducible benchmark.
This module follows the AsyncFlow request-generator contract (see
SNIPPETS.md, Snippet 3): a closed set of distribution names, a validated
random-variable config, and a seeded arrival process — so a benchmark
run is fully determined by ``(trace, LoadProfile)`` and two runs with
the same profile replay the exact same burst schedule.

The generator does not fabricate telemetry.  It re-chunks an existing
(drive, age)-sorted trace into *arrival bursts* whose sizes are drawn
from the configured distribution: each burst models the batch of events
one collector flush delivers to the scoring tier.  Scores are per-row,
so burst boundaries never change output bytes — only the batching
pattern the engine has to absorb, which is exactly what a throughput
benchmark should vary.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from enum import Enum
from typing import Iterator

import numpy as np

__all__ = [
    "Distribution",
    "RVConfig",
    "LoadProfile",
    "arrival_sizes",
    "burst_chunks",
    "burst_slices",
]


class Distribution(str, Enum):
    """Canonical names of the supported arrival-size distributions."""

    CONSTANT = "constant"
    POISSON = "poisson"
    NORMAL = "normal"
    LOG_NORMAL = "log_normal"
    EXPONENTIAL = "exponential"


@dataclass(frozen=True)
class RVConfig:
    """A validated random-variable configuration.

    ``mean`` is the expected burst size in events.  ``variance``
    defaults to ``mean`` for the two-parameter distributions (normal,
    log-normal) and must be omitted for the one-parameter ones — a typo
    like ``distribution="Poisson"`` raises instead of silently falling
    back.
    """

    mean: float
    distribution: Distribution = Distribution.POISSON
    variance: float | None = None

    def __post_init__(self) -> None:
        if isinstance(self.mean, bool) or not isinstance(self.mean, (int, float)):
            raise ValueError("mean must be a number (int or float)")
        object.__setattr__(self, "mean", float(self.mean))
        if not np.isfinite(self.mean) or self.mean <= 0:
            raise ValueError("mean must be a positive finite number")
        dist = Distribution(self.distribution)
        object.__setattr__(self, "distribution", dist)
        two_param = dist in (Distribution.NORMAL, Distribution.LOG_NORMAL)
        if self.variance is None:
            if two_param:
                object.__setattr__(self, "variance", self.mean)
        else:
            if not two_param:
                raise ValueError(
                    f"variance is not a parameter of {dist.value!r} arrivals"
                )
            v = float(self.variance)
            if not np.isfinite(v) or v < 0:
                raise ValueError("variance must be a non-negative finite number")
            object.__setattr__(self, "variance", v)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` burst sizes (``int64``, each >= 1)."""
        d = self.distribution
        if d is Distribution.CONSTANT:
            draws = np.full(n, self.mean)
        elif d is Distribution.POISSON:
            draws = rng.poisson(self.mean, size=n)
        elif d is Distribution.EXPONENTIAL:
            draws = rng.exponential(self.mean, size=n)
        elif d is Distribution.NORMAL:
            draws = rng.normal(self.mean, np.sqrt(self.variance or 0.0), size=n)
        else:  # log-normal: solve (mu, sigma) from the arithmetic moments
            var = self.variance or 0.0
            sigma2 = np.log1p(var / (self.mean**2))
            mu = np.log(self.mean) - sigma2 / 2.0
            draws = rng.lognormal(mu, np.sqrt(sigma2), size=n)
        return np.maximum(np.rint(draws), 1).astype(np.int64)


@dataclass(frozen=True)
class LoadProfile:
    """A fully seeded traffic profile: arrival process + RNG seed."""

    arrival: RVConfig
    seed: int = 0

    def to_dict(self) -> dict:
        payload: dict = {
            "mean": self.arrival.mean,
            "distribution": self.arrival.distribution.value,
            "seed": int(self.seed),
        }
        if self.arrival.variance is not None:
            payload["variance"] = self.arrival.variance
        return payload

    @classmethod
    def from_dict(cls, body: Mapping) -> "LoadProfile":
        """Inverse of :meth:`to_dict` (profiles ride plan dicts and JSON)."""
        dist = Distribution(body["distribution"])
        kwargs: dict = {"mean": body["mean"], "distribution": dist}
        if dist in (Distribution.NORMAL, Distribution.LOG_NORMAL):
            kwargs["variance"] = body.get("variance")
        return cls(RVConfig(**kwargs), seed=int(body.get("seed", 0)))


def arrival_sizes(n_events: int, profile: LoadProfile) -> np.ndarray:
    """Burst sizes covering exactly ``n_events`` events.

    Sizes are drawn in blocks from a ``default_rng(seed)`` stream until
    the running total covers the trace; the final burst is truncated so
    the sizes sum to ``n_events`` exactly.  Deterministic in
    ``(n_events, profile)``.
    """
    if n_events < 0:
        raise ValueError("n_events must be >= 0")
    if n_events == 0:
        return np.zeros(0, dtype=np.int64)
    rng = np.random.default_rng(profile.seed)
    block = max(int(np.ceil(n_events / max(profile.arrival.mean, 1.0))) + 16, 64)
    sizes: list[np.ndarray] = []
    total = 0
    while total < n_events:
        draw = profile.arrival.sample(rng, block)
        sizes.append(draw)
        total += int(draw.sum())
    flat = np.concatenate(sizes)
    cum = np.cumsum(flat)
    stop = int(np.searchsorted(cum, n_events))
    flat = flat[: stop + 1].copy()
    flat[-1] -= int(cum[stop]) - n_events
    return flat[flat > 0]


def burst_slices(n_events: int, profile: LoadProfile) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` row slices, one per arrival burst."""
    pos = 0
    for size in arrival_sizes(n_events, profile):
        yield pos, pos + int(size)
        pos += int(size)


def burst_chunks(
    chunks: Iterable[Mapping[str, np.ndarray]],
    n_events: int,
    profile: LoadProfile,
) -> Iterator[dict[str, np.ndarray]]:
    """Re-slice a column-chunk stream into arrival-burst-sized chunks.

    Feeds a fixed-size chunk iterator (e.g.
    :func:`repro.data.io.iter_drive_day_chunks`) through the profile's
    burst schedule: each yielded chunk holds exactly one burst's rows,
    preserving stream order.  Raises if the stream runs short of
    ``n_events`` — a load profile sized for a different trace is a
    configuration error, not a quiet truncation.
    """
    it = iter(chunks)
    buf: list[dict[str, np.ndarray]] = []
    buffered = 0
    for size in arrival_sizes(n_events, profile):
        size = int(size)
        while buffered < size:
            try:
                chunk = next(it)
            except StopIteration:
                raise ValueError(
                    f"burst schedule expects {n_events} event(s) but the "
                    f"stream ended {size - buffered} short"
                ) from None
            chunk = {k: np.asarray(v) for k, v in chunk.items()}
            buf.append(chunk)
            buffered += len(chunk["drive_id"])
        parts: dict[str, list[np.ndarray]] = {k: [] for k in buf[0]}
        need = size
        while need:
            head = buf[0]
            have = len(head["drive_id"])
            take = min(need, have)
            for key, col in head.items():
                parts[key].append(col[:take])
            if take == have:
                buf.pop(0)
            else:
                buf[0] = {k: v[take:] for k, v in head.items()}
            need -= take
            buffered -= take
        yield {
            k: (np.concatenate(v) if len(v) > 1 else v[0])
            for k, v in parts.items()
        }
