"""Snapshot rotation and keep-last-K retention for serving state.

``serve replay --snapshot-every`` used to overwrite a single snapshot
path; a long-lived shard instead rotates *generations* so a crash while
writing generation ``g`` still leaves ``g-1`` restorable:

- each write goes to ``<stem>-g<NNNNNN><suffix>`` via an atomic
  write-fsync-rename, so a generation either exists completely or not
  at all;
- only after the new generation is durable are generations older than
  the newest ``keep`` pruned — retention can never drop the only good
  copy;
- :func:`latest_snapshot` resolves either an exact file or a rotation
  base path to the newest durable generation, which is what crash
  failover restores from.

Rotation is also the shard plane's *compaction* story: a shard
checkpoint records the journal line count at write time, so restoring
from the newest generation replays only the journal tail written after
it — restore cost is bounded by the checkpoint cadence, not by the
shard's lifetime.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Callable

__all__ = [
    "generation_path",
    "list_generations",
    "latest_snapshot",
    "prune_generations",
    "write_rotated",
]

_GEN_RE = re.compile(r"-g(\d{6,})$")


def generation_path(base: Path, generation: int) -> Path:
    """Path of one rotated generation of ``base``.

    ``store.npz`` → ``store-g000001.npz``.  The generation number is
    zero-padded so lexicographic and numeric order agree.
    """
    if generation < 0:
        raise ValueError("generation must be >= 0")
    base = Path(base)
    return base.with_name(f"{base.stem}-g{generation:06d}{base.suffix}")


def list_generations(base: Path) -> list[tuple[int, Path]]:
    """All durable generations of ``base``, oldest first."""
    base = Path(base)
    out: list[tuple[int, Path]] = []
    if not base.parent.is_dir():
        return out
    for path in base.parent.iterdir():
        if path.suffix != base.suffix or not path.is_file():
            continue
        m = _GEN_RE.search(path.stem)
        if m is None or path.stem[: m.start()] != base.stem:
            continue
        out.append((int(m.group(1)), path))
    out.sort()
    return out


def latest_snapshot(path: Path) -> Path | None:
    """Resolve ``path`` to the newest durable snapshot, if any.

    Accepts either an exact snapshot file (returned as-is when it
    exists) or a rotation base whose newest generation wins.  When both
    exist the newer mtime is irrelevant — an exact file is an explicit
    choice and takes priority.
    """
    path = Path(path)
    if path.is_file():
        return path
    gens = list_generations(path)
    if gens:
        return gens[-1][1]
    return None


def prune_generations(base: Path, keep: int) -> list[Path]:
    """Delete generations older than the newest ``keep``; return them.

    Call only after the newest generation is durable — the caller's
    write must have completed (atomically) first.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    gens = list_generations(base)
    doomed = [p for _, p in gens[:-keep]] if len(gens) > keep else []
    for path in doomed:
        path.unlink(missing_ok=True)
    return doomed


def write_rotated(
    base: Path,
    save: Callable[[Path], None],
    keep: int | None = None,
) -> Path:
    """Write the next generation of ``base`` via ``save``, then prune.

    ``save(path)`` must write atomically (the serving snapshots all go
    through ``atomic_save_npz``).  Pruning runs strictly after ``save``
    returns, so older generations are only dropped once the newer one is
    fully durable.  Returns the path written.
    """
    gens = list_generations(base)
    generation = gens[-1][0] + 1 if gens else 1
    target = generation_path(base, generation)
    save(target)
    if keep is not None:
        prune_generations(base, keep)
    return target
