"""Drive-ID hash partitioning for the sharded serving plane.

A fleet-scale scoring tier is a set of shard processes, each owning a
disjoint subset of drives.  The partition function must be

- **total** — every drive id maps to exactly one shard in ``[0, n)``;
- **stable** — the mapping depends only on ``(drive_id, n_shards)``,
  never on process state, insertion order, or platform hash seeds
  (``PYTHONHASHSEED`` must not matter); and
- **order-preserving per drive** — all events of one drive land on one
  shard, so the (drive, age)-sorted sub-stream each shard sees keeps
  the per-drive event order of the source trace.

Those three properties are what make the byte-identity guarantees of
:mod:`repro.serve.shard` possible: scores are per-row, the partition is
pure in the drive id, and merging per-shard outputs back into source-row
order reproduces the serial replay bit for bit — for any shard count and
across an N→M reshard.

The hash is a splitmix64 finalizer over the drive id, evaluated in
vectorized ``uint64`` arithmetic (wraparound multiplication is exact and
platform-independent).  splitmix64 avalanches every input bit across the
word, so consecutive drive ids — the common case for simulated fleets —
spread uniformly instead of striping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PARTITION_VERSION",
    "PartitionMap",
    "drive_shard",
    "drive_shards",
    "split_chunk",
]

#: Bump when the hash function changes — a plane's journals and
#: checkpoints are only replayable under the partition version that
#: wrote them.
PARTITION_VERSION = 1

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized over a ``uint64`` array."""
    with np.errstate(over="ignore"):
        x = x + _GOLDEN
        x = (x ^ (x >> np.uint64(30))) * _MIX1
        x = (x ^ (x >> np.uint64(27))) * _MIX2
        return x ^ (x >> np.uint64(31))


def drive_shards(drive_ids: np.ndarray, n_shards: int) -> np.ndarray:
    """Vectorized shard assignment for an array of drive ids.

    Returns an ``int64`` array of shard indices in ``[0, n_shards)``.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    ids = np.asarray(drive_ids).astype(np.uint64, copy=False)
    if n_shards == 1:
        return np.zeros(ids.shape, dtype=np.int64)
    return (_mix64(ids) % np.uint64(n_shards)).astype(np.int64)


def drive_shard(drive_id: int, n_shards: int) -> int:
    """Shard index for a single drive id (scalar convenience)."""
    return int(drive_shards(np.asarray([drive_id], dtype=np.uint64), n_shards)[0])


@dataclass(frozen=True)
class PartitionMap:
    """A versioned, pure mapping from drive id to shard index."""

    n_shards: int
    version: int = PARTITION_VERSION

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.version != PARTITION_VERSION:
            raise ValueError(
                f"unsupported partition version {self.version} "
                f"(this build speaks version {PARTITION_VERSION})"
            )

    def shard_of(self, drive_id: int) -> int:
        return drive_shard(drive_id, self.n_shards)

    def shard_of_array(self, drive_ids: np.ndarray) -> np.ndarray:
        return drive_shards(drive_ids, self.n_shards)

    def to_dict(self) -> dict:
        return {"n_shards": self.n_shards, "version": self.version}

    @classmethod
    def from_dict(cls, payload: dict) -> "PartitionMap":
        return cls(
            n_shards=int(payload["n_shards"]),
            version=int(payload.get("version", PARTITION_VERSION)),
        )


def split_chunk(
    chunk: dict[str, np.ndarray],
    pmap: PartitionMap,
    base_row: int = 0,
) -> list[tuple[dict[str, np.ndarray], np.ndarray]]:
    """Split one column-chunk into per-shard sub-chunks.

    Returns a list of ``(sub_columns, global_rows)`` pairs, one per
    shard; ``global_rows`` carries each kept row's index in the source
    stream (``base_row`` + position in chunk), which the merge step uses
    to restore source-row order.  Row order inside each sub-chunk is the
    chunk's own order, so a (drive, age)-sorted input stays (drive,
    age)-sorted per shard.  Empty shards get zero-length pairs.
    """
    ids = np.asarray(chunk["drive_id"])
    shards = pmap.shard_of_array(ids)
    rows = np.arange(base_row, base_row + ids.shape[0], dtype=np.int64)
    out: list[tuple[dict[str, np.ndarray], np.ndarray]] = []
    for s in range(pmap.n_shards):
        mask = shards == s
        if mask.all():
            out.append((dict(chunk), rows))
        elif not mask.any():
            out.append(({k: v[:0] for k, v in chunk.items()}, rows[:0]))
        else:
            out.append(({k: v[mask] for k, v in chunk.items()}, rows[mask]))
    return out
