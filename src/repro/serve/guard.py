"""Admission guard in front of the serving feature store.

Every event entering :class:`~repro.serve.engine.ScoringEngine` passes
through an :class:`AdmissionGuard`, which classifies it against the
PR-1 validation bounds and the store's per-drive watermarks and takes
one of three actions:

- **accept** — fold into the store (and the optional accepted-event
  journal), produce the feature row;
- **drop duplicate** — an exact re-delivery of the last absorbed
  drive-day (same canonical payload): idempotent re-ingest, dropped
  silently and counted;
- **dead-letter** — late/out-of-order, malformed, schema-violating, or
  conflicting events are diverted to the
  :class:`~repro.serve.dlq.DeadLetterQueue` with fault class, drive id,
  and watermark context, replayable later via ``serve heal``.

The guard never raises on bad input — that is the point: PR-5's store
hard-fails on the first out-of-order event, while a guarded engine keeps
scoring through a misbehaving telemetry pipeline and accounts for every
diverted event.

Two code paths mirror the store's: :meth:`AdmissionGuard.admit` for
single records (the ``serve run`` transport) and
:meth:`AdmissionGuard.admit_columns` for ordered column chunks (the
replay hot path).  The chunk path keeps the vectorized segment-cumsum
ingest: schema checks are vector ops, and only chunks with ordering
anomalies (interleaved drives, rewinds, equal-age rows — never produced
by a clean trace) fall back to the per-event loop, so guarded clean
replay stays within the <5% overhead budget pinned in
``benchmarks/test_guard_overhead.py``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..obs import eventlog, metrics
from ..reliability.validation import (
    COUNT_FIELDS,
    REQUIRED_COLUMNS,
    SENTINEL_CEILING,
)
from .dlq import DeadLetterQueue, EventJournal, canonical_event, event_digest
from .feature_store import FeatureStore
from .health import ServeBreaker

__all__ = ["AdmissionOutcome", "ChunkAdmission", "GuardStats", "AdmissionGuard"]

#: Statuses an admission decision can take.
ACCEPTED = "accepted"
DUPLICATE = "duplicate"
DEAD_LETTERED = "dead_lettered"


@dataclass(frozen=True)
class AdmissionOutcome:
    """Decision for one event: what happened and why."""

    status: str
    fault: str | None = None
    reason: str = ""
    row: np.ndarray | None = None
    drive_id: int | None = None
    age_days: int | None = None
    watermark: int | None = None

    @property
    def accepted(self) -> bool:
        return self.status == ACCEPTED


@dataclass(frozen=True)
class ChunkAdmission:
    """Outcome of admitting one column chunk."""

    features: np.ndarray
    ages: np.ndarray
    calendar_days: np.ndarray
    accepted_index: np.ndarray
    n_diverted: int
    n_duplicates: int


@dataclass
class GuardStats:
    """Running admission tallies (exported into the run manifest)."""

    admitted: int = 0
    duplicates_dropped: int = 0
    dead_lettered: int = 0
    shed: int = 0
    by_fault: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "admitted": self.admitted,
            "duplicates_dropped": self.duplicates_dropped,
            "dead_lettered": self.dead_lettered,
            "shed": self.shed,
            "by_fault": dict(sorted(self.by_fault.items())),
        }


class AdmissionGuard:
    """Classify events against validation bounds and drive watermarks.

    Parameters
    ----------
    store:
        The feature store admitted events fold into.
    dlq:
        Destination for diverted events; with ``None``, diverted events
        are still classified and counted but only the stats remember
        them (the transport may choose to surface that loudly).
    journal:
        Optional accepted-event journal — required input for
        ``serve heal`` to rebuild a byte-identical store.
    breaker:
        Optional circuit breaker fed one ok/fault signal per event.

    Not thread-safe (like the micro-batcher): the engine serializes
    access.
    """

    def __init__(
        self,
        store: FeatureStore,
        dlq: DeadLetterQueue | None = None,
        journal: EventJournal | None = None,
        breaker: ServeBreaker | None = None,
    ):
        self.store = store
        self.dlq = dlq
        self.journal = journal
        self.breaker = breaker
        self.stats = GuardStats()
        #: Outcome of the most recent :meth:`admit`/:meth:`shed` call —
        #: lets the transport report *why* an event it just submitted
        #: through the engine produced no score.
        self.last_outcome: AdmissionOutcome | None = None
        #: drive_id -> digest of the last absorbed event, for idempotent
        #: duplicate detection at the watermark boundary.  Shared with
        #: (and persisted by) the store: a restored store remembers its
        #: boundary digests, so re-delivery of the last pre-restart
        #: event still drops as a duplicate instead of dead-lettering
        #: as a conflict.
        self._last_digest = store.boundary_digests

    # ------------------------------------------------------------------ classify
    def classify(self, record: Any) -> AdmissionOutcome:
        """Pure classification: no store mutation, no DLQ write."""
        if not isinstance(record, Mapping):
            return AdmissionOutcome(
                DEAD_LETTERED,
                fault="malformed",
                reason=f"event is not an object ({type(record).__name__})",
            )
        missing = [c for c in REQUIRED_COLUMNS if c not in record]
        if missing:
            return AdmissionOutcome(
                DEAD_LETTERED,
                fault="malformed",
                reason=f"missing field(s): {', '.join(missing)}",
            )
        try:
            drive_id = int(record["drive_id"])
            age = int(record["age_days"])
        except (TypeError, ValueError):
            return AdmissionOutcome(
                DEAD_LETTERED,
                fault="malformed",
                reason="drive_id/age_days are not integers",
            )
        if age < 0:
            return AdmissionOutcome(
                DEAD_LETTERED,
                fault="schema",
                reason=f"age_days is negative ({age})",
                drive_id=drive_id,
                age_days=age,
            )
        for name in COUNT_FIELDS:
            try:
                value = float(record[name])
            except (TypeError, ValueError):
                return AdmissionOutcome(
                    DEAD_LETTERED,
                    fault="malformed",
                    reason=f"field {name} is not numeric "
                    f"({record[name]!r})",
                    drive_id=drive_id,
                    age_days=age,
                )
            if not math.isfinite(value):
                return AdmissionOutcome(
                    DEAD_LETTERED,
                    fault="schema",
                    reason=f"field {name} is not finite ({value!r})",
                    drive_id=drive_id,
                    age_days=age,
                )
            if value < 0:
                return AdmissionOutcome(
                    DEAD_LETTERED,
                    fault="schema",
                    reason=f"field {name} is negative ({value})",
                    drive_id=drive_id,
                    age_days=age,
                )
            if value > SENTINEL_CEILING:
                return AdmissionOutcome(
                    DEAD_LETTERED,
                    fault="schema",
                    reason=f"field {name} exceeds the collector sentinel "
                    f"ceiling ({value:.3g} > {SENTINEL_CEILING:.0e})",
                    drive_id=drive_id,
                    age_days=age,
                )
        watermark = self.store.watermark(drive_id)
        if age < watermark:
            return AdmissionOutcome(
                DEAD_LETTERED,
                fault="late",
                reason=f"age {age}d is {watermark - age}d behind the "
                f"drive's absorbed watermark {watermark}d",
                drive_id=drive_id,
                age_days=age,
                watermark=watermark,
            )
        if age == watermark and watermark >= 0:
            digest = event_digest(record)
            if self._last_digest.get(drive_id) == digest:
                return AdmissionOutcome(
                    DUPLICATE,
                    reason="exact re-delivery of the last absorbed "
                    "drive-day",
                    drive_id=drive_id,
                    age_days=age,
                    watermark=watermark,
                )
            return AdmissionOutcome(
                DEAD_LETTERED,
                fault="conflict",
                reason="drive-day already absorbed with a different "
                "payload",
                drive_id=drive_id,
                age_days=age,
                watermark=watermark,
            )
        return AdmissionOutcome(
            ACCEPTED, drive_id=drive_id, age_days=age, watermark=watermark
        )

    # ------------------------------------------------------------------ admit
    def admit(self, record: Any) -> AdmissionOutcome:
        """Classify one event and carry out the decision.

        Accepted events fold into the store (returning the feature row
        on the outcome); duplicates are dropped; everything else is
        diverted to the DLQ.  Never raises on bad input.
        """
        outcome = self.classify(record)
        if outcome.accepted:
            row = self.store.ingest(record)
            self._last_digest[outcome.drive_id] = event_digest(record)
            if self.journal is not None:
                self.journal.record(record)
            self.stats.admitted += 1
            self._signal(ok=True)
            metrics.inc(
                "repro_serve_admitted_total",
                help="Events accepted by the admission guard",
            )
            outcome = AdmissionOutcome(
                ACCEPTED,
                row=row,
                drive_id=outcome.drive_id,
                age_days=outcome.age_days,
                watermark=outcome.watermark,
            )
        elif outcome.status == DUPLICATE:
            self.stats.duplicates_dropped += 1
            self._signal(ok=True)
            metrics.inc(
                "repro_serve_duplicate_total",
                help="Exact duplicate events dropped (idempotent re-ingest)",
            )
            eventlog.emit(
                "serve.guard.duplicate",
                "exact re-delivery dropped",
                level="debug",
                drive_id=outcome.drive_id,
                age_days=outcome.age_days,
            )
        else:
            self._divert(
                outcome, record if isinstance(record, Mapping) else None
            )
        self.last_outcome = outcome
        return outcome

    def shed(self, record: Mapping[str, Any], reason: str) -> AdmissionOutcome:
        """Divert one event under backpressure — never validated or ingested.

        The latency-preserving shed mode: the event lands in the DLQ
        (fault class ``shed``) instead of being silently dropped, so
        ``serve heal`` can re-admit it once the overload has passed.
        """
        try:
            drive_id = int(record["drive_id"])
            age = int(record["age_days"])
        except (KeyError, TypeError, ValueError):
            drive_id = age = None
        outcome = AdmissionOutcome(
            DEAD_LETTERED,
            fault="shed",
            reason=reason,
            drive_id=drive_id,
            age_days=age,
        )
        self._divert(outcome, record, source="backpressure")
        self.stats.shed += 1
        metrics.inc(
            "repro_serve_shed_total",
            help="Events load-shed to the dead-letter queue",
        )
        self.last_outcome = outcome
        return outcome

    def divert_raw(self, raw: str, reason: str) -> AdmissionOutcome:
        """Dead-letter an unparseable transport line."""
        outcome = AdmissionOutcome(
            DEAD_LETTERED, fault="malformed", reason=reason
        )
        self._divert(outcome, None, raw=raw, source="transport")
        self.last_outcome = outcome
        return outcome

    def _divert(
        self,
        outcome: AdmissionOutcome,
        record: Mapping[str, Any] | None,
        raw: str | None = None,
        source: str = "guard",
    ) -> None:
        if self.dlq is not None:
            self.dlq.divert(
                outcome.fault,
                outcome.reason,
                event=record,
                raw=raw,
                drive_id=outcome.drive_id,
                age_days=outcome.age_days,
                watermark=outcome.watermark,
                source=source,
            )
        self.stats.dead_lettered += 1
        self.stats.by_fault[outcome.fault] = (
            self.stats.by_fault.get(outcome.fault, 0) + 1
        )
        self._signal(ok=False)
        metrics.inc(
            "repro_serve_dead_letter_total",
            help="Events diverted to the dead-letter queue",
            fault=outcome.fault,
        )
        eventlog.emit(
            "serve.guard.dead_letter",
            outcome.reason,
            level="warn",
            fault=outcome.fault,
            drive_id=outcome.drive_id,
            age_days=outcome.age_days,
            watermark=outcome.watermark,
            source=source,
        )

    def _signal(self, ok: bool) -> None:
        if self.breaker is not None:
            if ok:
                self.breaker.record_ok()
            else:
                self.breaker.record_fault()

    # ------------------------------------------------------------------ chunks
    def admit_columns(self, cols: Mapping[str, np.ndarray]) -> ChunkAdmission:
        """Admit an ordered column chunk, diverting bad rows.

        The fast path (clean chunk: grouped runs, strictly increasing
        ages above every watermark) is one vectorized
        :meth:`FeatureStore.ingest_columns` call after vector schema
        checks.  Chunks with ordering anomalies fall back to the
        per-event :meth:`admit` loop — correctness over speed for the
        rare sick chunk.
        """
        ids = np.asarray(cols["drive_id"]).astype(np.int64, copy=False)
        m = ids.shape[0]
        if m == 0:
            empty = np.empty(0, dtype=np.int64)
            return ChunkAdmission(
                features=np.empty((0, 0)),
                ages=empty,
                calendar_days=empty,
                accepted_index=empty,
                n_diverted=0,
                n_duplicates=0,
            )
        missing = [c for c in REQUIRED_COLUMNS if c not in cols]
        if missing:
            # A chunk without required columns is a trace-level defect,
            # not a per-event fault — surface it, don't dead-letter m rows.
            raise KeyError(
                f"chunk is missing required column(s): {', '.join(missing)}"
            )
        age = np.asarray(cols["age_days"]).astype(np.int64, copy=False)

        # Vectorized schema mask over the validation bounds.
        bad = age < 0
        for name in COUNT_FIELDS:
            v = np.asarray(cols[name])
            if v.dtype.kind == "f":
                bad = bad | ~np.isfinite(v) | (v < 0) | (v > SENTINEL_CEILING)
            else:
                bad = bad | (v < 0) | (v > SENTINEL_CEILING)

        ok_idx = np.flatnonzero(~bad)
        sub_ids, sub_age = ids[ok_idx], age[ok_idx]
        ordered = self._chunk_is_ordered(sub_ids, sub_age)
        if not ordered:
            return self._admit_rows(cols, m)

        # Divert the schema-bad rows, then ingest the clean remainder in
        # one vectorized pass.
        if bad.any():
            names = list(cols)
            for i in np.flatnonzero(bad):
                record = {k: cols[k][i] for k in names}
                self.admit(record)  # classifies to schema/malformed
            sub = {k: np.asarray(v)[ok_idx] for k, v in cols.items()}
        else:
            sub = cols
        X = self.store.ingest_columns(sub)
        n = len(ok_idx)
        self.stats.admitted += n
        if n:
            self._last_digest.update(self._run_end_digests(sub))
            if self.journal is not None:
                self._journal_rows(sub)
            # One breaker signal per chunk keeps the fast path cheap;
            # per-event signalling happens on the record path.
            self._signal(ok=True)
        metrics.inc(
            "repro_serve_admitted_total",
            n,
            help="Events accepted by the admission guard",
        )
        cal = np.asarray(sub["calendar_day"]).astype(np.int64, copy=False)
        return ChunkAdmission(
            features=X,
            ages=sub_age,
            calendar_days=cal,
            accepted_index=ok_idx,
            n_diverted=int(bad.sum()),
            n_duplicates=0,
        )

    def _chunk_is_ordered(
        self, ids: np.ndarray, age: np.ndarray
    ) -> bool:
        """True when the remaining rows take the vectorized fast path."""
        if len(ids) == 0:
            return True
        change = np.flatnonzero(ids[1:] != ids[:-1]) + 1
        starts = np.concatenate(([0], change))
        run_ids = ids[starts]
        if len(np.unique(run_ids)) != len(run_ids):
            return False  # interleaved drive runs
        same = ids[1:] == ids[:-1]
        if bool(np.any(same & (age[1:] <= age[:-1]))):
            return False  # rewind or equal-age row inside a run
        watermarks = self.store.watermarks(run_ids)
        if bool(np.any(age[starts] <= watermarks)):
            return False  # run starts at/behind the absorbed watermark
        return True

    def _admit_rows(
        self, cols: Mapping[str, np.ndarray], m: int
    ) -> ChunkAdmission:
        """Per-event fallback for chunks with ordering anomalies."""
        names = list(cols)
        rows: list[np.ndarray] = []
        ages: list[int] = []
        cals: list[int] = []
        index: list[int] = []
        diverted = duplicates = 0
        for i in range(m):
            record = {k: cols[k][i] for k in names}
            outcome = self.admit(record)
            if outcome.accepted:
                rows.append(outcome.row)
                ages.append(outcome.age_days)
                cals.append(int(record["calendar_day"]))
                index.append(i)
            elif outcome.status == DUPLICATE:
                duplicates += 1
            else:
                diverted += 1
        features = (
            np.stack(rows) if rows else np.empty((0, 0), dtype=np.float64)
        )
        return ChunkAdmission(
            features=features,
            ages=np.asarray(ages, dtype=np.int64),
            calendar_days=np.asarray(cals, dtype=np.int64),
            accepted_index=np.asarray(index, dtype=np.int64),
            n_diverted=diverted,
            n_duplicates=duplicates,
        )

    def _run_end_digests(
        self, cols: Mapping[str, np.ndarray]
    ) -> dict[int, str]:
        """Digest of the last row of each per-drive run (cheap: per run)."""
        ids = np.asarray(cols["drive_id"]).astype(np.int64, copy=False)
        ends = np.concatenate(
            (np.flatnonzero(ids[1:] != ids[:-1]), [len(ids) - 1])
        )
        names = list(cols)
        return {
            int(ids[e]): event_digest({k: cols[k][e] for k in names})
            for e in ends
        }

    def _journal_rows(self, cols: Mapping[str, np.ndarray]) -> None:
        names = list(cols)
        for i in range(len(cols["drive_id"])):
            self.journal.record({k: cols[k][i] for k in names})
