"""Micro-batching for scoring requests.

Vectorized forest scoring amortizes per-call overhead across rows, so
the engine holds pending requests briefly and scores them together.
Two bounds control the trade-off (the classic serving knobs):

- ``max_batch_size`` — flush as soon as this many requests are pending
  (throughput bound);
- ``max_wait_seconds`` — flush once the *oldest* pending request has
  waited this long (latency bound); ``0`` flushes on every add, i.e.
  unbatched operation.

The clock is injectable so tests (and the deterministic replay harness)
can drive time explicitly; batching never affects score *values* — rows
are independent under :meth:`FailurePredictor.predict_proba_matrix` —
only latency and throughput.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

__all__ = ["BatchPolicy", "QueuePolicy", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Flush bounds for the micro-batcher."""

    max_batch_size: int = 256
    max_wait_seconds: float = 0.005

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be >= 0")


@dataclass(frozen=True)
class QueuePolicy:
    """Backpressure bounds on the engine's submit queue.

    ``max_depth`` caps how many scoring requests may be pending when a
    new submission arrives; at the cap, ``on_full`` decides:

    - ``"block"`` — flush (score) the pending batch synchronously before
      admitting the new request: every event is scored, callers absorb
      the scoring latency (classic backpressure);
    - ``"shed"`` — divert the incoming event to the dead-letter queue
      (fault class ``shed``) without ingesting it: submit latency stays
      flat and nothing is silently lost — ``serve heal`` re-admits shed
      events later.

    ``max_depth=None`` disables the bound (the PR-5 behavior).
    """

    max_depth: int | None = None
    on_full: str = "block"

    def __post_init__(self) -> None:
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError("max_depth must be >= 1 (or None)")
        if self.on_full not in ("block", "shed"):
            raise ValueError("on_full must be 'block' or 'shed'")


class MicroBatcher:
    """Accumulates requests and emits them in flush-bounded batches.

    Not thread-safe on its own — the engine serializes access.  Each
    pending entry is ``(enqueued_at, request)``; flushed batches preserve
    arrival order, so downstream scoring is deterministic.
    """

    def __init__(
        self,
        policy: BatchPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy or BatchPolicy()
        self.clock = clock
        self._pending: list[tuple[float, Any]] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def oldest_wait(self) -> float:
        """Seconds the oldest pending request has been waiting (0 if none)."""
        if not self._pending:
            return 0.0
        return self.clock() - self._pending[0][0]

    def add(self, request: Any) -> list[Any] | None:
        """Enqueue one request; returns a flushed batch when a bound trips."""
        self._pending.append((self.clock(), request))
        if len(self._pending) >= self.policy.max_batch_size:
            return self.flush()
        if self.oldest_wait >= self.policy.max_wait_seconds:
            return self.flush()
        return None

    def poll(self) -> list[Any] | None:
        """Flush if the oldest pending request exceeded the wait bound."""
        if self._pending and self.oldest_wait >= self.policy.max_wait_seconds:
            return self.flush()
        return None

    def flush(self) -> list[Any]:
        """Emit every pending request (possibly empty), oldest first."""
        batch = [req for _, req in self._pending]
        self._pending.clear()
        return batch
