"""Online scoring service: incremental features, model registry, engine.

The batch pipeline (simulate → train → score) answers "how well would
the paper's models have predicted failures"; this package answers "how
would those models run in production".  Four pieces:

- :mod:`repro.serve.feature_store` — per-drive incremental state that
  reproduces the batch feature rows bit-for-bit, one event at a time;
- :mod:`repro.serve.registry` — versioned model artifacts with
  publish/activate/rollback and schema-hash compatibility gating;
- :mod:`repro.serve.batching` — size/wait-bounded micro-batching of
  scoring requests;
- :mod:`repro.serve.engine` — the request loop tying them together,
  with replay/backfill over recorded traces.

The cornerstone invariant is *online/offline parity*: for any trace,
streaming it through the engine yields exactly the probabilities the
offline ``score`` pipeline computes (``serve replay`` verifies this
bit-for-bit; see DESIGN.md §13).
"""

from .batching import BatchPolicy, MicroBatcher
from .engine import ReplayResult, ScoredEvent, ScoringEngine
from .feature_store import (
    FeatureStore,
    FeatureStoreError,
    OutOfOrderError,
    SchemaMismatchError,
)
from .registry import ModelRegistry, RegistryError

__all__ = [
    "BatchPolicy",
    "MicroBatcher",
    "ScoredEvent",
    "ReplayResult",
    "ScoringEngine",
    "FeatureStore",
    "FeatureStoreError",
    "OutOfOrderError",
    "SchemaMismatchError",
    "ModelRegistry",
    "RegistryError",
]
