"""Online scoring service: incremental features, model registry, engine.

The batch pipeline (simulate → train → score) answers "how well would
the paper's models have predicted failures"; this package answers "how
would those models run in production".  Seven pieces:

- :mod:`repro.serve.feature_store` — per-drive incremental state that
  reproduces the batch feature rows bit-for-bit, one event at a time;
- :mod:`repro.serve.registry` — versioned model artifacts with
  publish/activate/rollback and schema-hash compatibility gating;
- :mod:`repro.serve.batching` — size/wait-bounded micro-batching of
  scoring requests with backpressure bounds;
- :mod:`repro.serve.guard` — the admission guard classifying every
  event (accept / drop-duplicate / dead-letter) against validation
  bounds and per-drive watermarks;
- :mod:`repro.serve.dlq` — the append-only dead-letter queue, the
  accepted-event journal, and the ``serve heal`` rebuild planner;
- :mod:`repro.serve.health` — circuit breaker, health states, and the
  staleness policy behind degraded scoring;
- :mod:`repro.serve.engine` — the request loop tying them together,
  with replay/backfill over recorded traces.

The cornerstone invariant is *online/offline parity*: for any trace,
streaming it through the engine yields exactly the probabilities the
offline ``score`` pipeline computes (``serve replay`` verifies this
bit-for-bit; see DESIGN.md §13).  The robustness layer extends it to
sick inputs: a chaos-perturbed stream plus ``serve heal`` converges
back to the byte-identical clean scores (DESIGN.md §14).
"""

from .batching import BatchPolicy, MicroBatcher, QueuePolicy
from .dlq import (
    FAULT_CLASSES,
    HEALABLE_FAULTS,
    REFETCHABLE_FAULTS,
    DeadLetterEntry,
    DeadLetterError,
    DeadLetterQueue,
    EventJournal,
    HealPlan,
    build_heal_plan,
    canonical_event,
    event_digest,
)
from .engine import ReplayResult, ScoredEvent, ScoringEngine, TelemetryConfig
from .feature_store import (
    FeatureStore,
    FeatureStoreError,
    OutOfOrderError,
    SchemaMismatchError,
)
from .guard import (
    ACCEPTED,
    DEAD_LETTERED,
    DUPLICATE,
    AdmissionGuard,
    AdmissionOutcome,
    ChunkAdmission,
    GuardStats,
)
from .health import (
    HealthState,
    ServeBreaker,
    StalenessPolicy,
    load_status,
    render_status,
    status_exit_code,
)
from .registry import ModelRegistry, RegistryError

__all__ = [
    "BatchPolicy",
    "MicroBatcher",
    "QueuePolicy",
    "ScoredEvent",
    "ReplayResult",
    "ScoringEngine",
    "TelemetryConfig",
    "FeatureStore",
    "FeatureStoreError",
    "OutOfOrderError",
    "SchemaMismatchError",
    "ModelRegistry",
    "RegistryError",
    "ACCEPTED",
    "DUPLICATE",
    "DEAD_LETTERED",
    "AdmissionGuard",
    "AdmissionOutcome",
    "ChunkAdmission",
    "GuardStats",
    "FAULT_CLASSES",
    "HEALABLE_FAULTS",
    "REFETCHABLE_FAULTS",
    "DeadLetterEntry",
    "DeadLetterError",
    "DeadLetterQueue",
    "EventJournal",
    "HealPlan",
    "build_heal_plan",
    "canonical_event",
    "event_digest",
    "HealthState",
    "ServeBreaker",
    "StalenessPolicy",
    "load_status",
    "render_status",
    "status_exit_code",
]
