"""Online scoring service: incremental features, model registry, engine.

The batch pipeline (simulate → train → score) answers "how well would
the paper's models have predicted failures"; this package answers "how
would those models run in production".  Seven pieces:

- :mod:`repro.serve.feature_store` — per-drive incremental state that
  reproduces the batch feature rows bit-for-bit, one event at a time;
- :mod:`repro.serve.registry` — versioned model artifacts with
  publish/activate/rollback and schema-hash compatibility gating;
- :mod:`repro.serve.batching` — size/wait-bounded micro-batching of
  scoring requests with backpressure bounds;
- :mod:`repro.serve.guard` — the admission guard classifying every
  event (accept / drop-duplicate / dead-letter) against validation
  bounds and per-drive watermarks;
- :mod:`repro.serve.dlq` — the append-only dead-letter queue, the
  accepted-event journal, and the ``serve heal`` rebuild planner;
- :mod:`repro.serve.health` — circuit breaker, health states, and the
  staleness policy behind degraded scoring;
- :mod:`repro.serve.engine` — the request loop tying them together,
  with replay/backfill over recorded traces;
- :mod:`repro.serve.partition` — the versioned drive-ID hash partition
  splitting the fleet across scorer shards;
- :mod:`repro.serve.shard` — the sharded serving plane: supervised
  shard processes, checkpoint/journal failover, resharding, and the
  live :class:`~repro.serve.shard.ShardRouter`;
- :mod:`repro.serve.snapshots` — rotated keep-last-K snapshot
  generations under atomic writes;
- :mod:`repro.serve.loadgen` — the seeded synthetic arrival-process
  generator behind ``serve bench``.

The cornerstone invariant is *online/offline parity*: for any trace,
streaming it through the engine yields exactly the probabilities the
offline ``score`` pipeline computes (``serve replay`` verifies this
bit-for-bit; see DESIGN.md §13).  The robustness layer extends it to
sick inputs: a chaos-perturbed stream plus ``serve heal`` converges
back to the byte-identical clean scores (DESIGN.md §14), and the
sharded plane extends it across topology: any shard count, an N→M
reshard, and a SIGKILLed-and-healed shard all produce the same bytes
(DESIGN.md §17).
"""

from .batching import BatchPolicy, MicroBatcher, QueuePolicy
from .dlq import (
    FAULT_CLASSES,
    HEALABLE_FAULTS,
    REFETCHABLE_FAULTS,
    DeadLetterEntry,
    DeadLetterError,
    DeadLetterQueue,
    EventJournal,
    HealPlan,
    build_heal_plan,
    canonical_event,
    event_digest,
)
from .engine import ReplayResult, ScoredEvent, ScoringEngine, TelemetryConfig
from .feature_store import (
    FeatureStore,
    FeatureStoreError,
    OutOfOrderError,
    SchemaMismatchError,
)
from .guard import (
    ACCEPTED,
    DEAD_LETTERED,
    DUPLICATE,
    AdmissionGuard,
    AdmissionOutcome,
    ChunkAdmission,
    GuardStats,
)
from .health import (
    HealthState,
    ServeBreaker,
    StalenessPolicy,
    aggregate_statuses,
    load_status,
    render_sharded_status,
    render_status,
    status_exit_code,
)
from .loadgen import (
    Distribution,
    LoadProfile,
    RVConfig,
    arrival_sizes,
    burst_chunks,
    burst_slices,
)
from .partition import PARTITION_VERSION, PartitionMap, drive_shard, drive_shards, split_chunk
from .registry import ModelRegistry, RegistryError
from .shard import (
    SHARD_SCHEMA_VERSION,
    ShardCheckpoint,
    ShardError,
    ShardPaths,
    ShardRouter,
    ShardedReplayResult,
    merged_plane_events,
    plane_scores,
    plane_status,
    read_plane_manifest,
    reshard_plane,
    run_sharded_replay,
)
from .snapshots import latest_snapshot, list_generations, prune_generations, write_rotated

__all__ = [
    "BatchPolicy",
    "MicroBatcher",
    "QueuePolicy",
    "ScoredEvent",
    "ReplayResult",
    "ScoringEngine",
    "TelemetryConfig",
    "FeatureStore",
    "FeatureStoreError",
    "OutOfOrderError",
    "SchemaMismatchError",
    "ModelRegistry",
    "RegistryError",
    "ACCEPTED",
    "DUPLICATE",
    "DEAD_LETTERED",
    "AdmissionGuard",
    "AdmissionOutcome",
    "ChunkAdmission",
    "GuardStats",
    "FAULT_CLASSES",
    "HEALABLE_FAULTS",
    "REFETCHABLE_FAULTS",
    "DeadLetterEntry",
    "DeadLetterError",
    "DeadLetterQueue",
    "EventJournal",
    "HealPlan",
    "build_heal_plan",
    "canonical_event",
    "event_digest",
    "HealthState",
    "ServeBreaker",
    "StalenessPolicy",
    "aggregate_statuses",
    "load_status",
    "render_sharded_status",
    "render_status",
    "status_exit_code",
    "PARTITION_VERSION",
    "PartitionMap",
    "drive_shard",
    "drive_shards",
    "split_chunk",
    "SHARD_SCHEMA_VERSION",
    "ShardCheckpoint",
    "ShardError",
    "ShardPaths",
    "ShardRouter",
    "ShardedReplayResult",
    "merged_plane_events",
    "plane_scores",
    "plane_status",
    "read_plane_manifest",
    "reshard_plane",
    "run_sharded_replay",
    "Distribution",
    "LoadProfile",
    "RVConfig",
    "arrival_sizes",
    "burst_chunks",
    "burst_slices",
    "latest_snapshot",
    "list_generations",
    "prune_generations",
    "write_rotated",
]
