"""Command-line interface: simulate, report, train, score, audit, inject, obs.

Wraps the library's main workflows for shell use::

    repro-ssd simulate --out fleet/ --drives 300 --days 1460 --seed 7
    repro-ssd simulate --out fleet/ --resume          # continue a killed run
    repro-ssd simulate --out fleet/ --trace --quiet   # full spans, 1-line output
    repro-ssd report   --trace fleet/
    repro-ssd audit    --trace fleet/ --deep          # telemetry validation
    repro-ssd inject   --trace fleet/ --out dirty/ --faults value_spikes
    repro-ssd train    --trace fleet/ --model model.pkl --lookahead 3
    repro-ssd score    --trace fleet/ --model model.pkl --top 10
    repro-ssd obs show fleet/run_manifest.json
    repro-ssd obs diff fleet_a/run_manifest.json fleet_b/run_manifest.json
    repro-ssd serve publish --model model.pkl --registry reg/ --activate
    repro-ssd serve replay  --trace fleet/ --registry reg/   # parity gate
    repro-ssd serve bench   --drives 40 --days 365 --json-out BENCH_serve.json
    repro-ssd serve run     --registry reg/ --dlq dlq.jsonl < events.jsonl
    repro-ssd serve heal    --registry reg/ --journal j.jsonl --dlq dlq.jsonl
    repro-ssd serve status  status.json               # exit 0/1/2 health gate
    repro-ssd obs tail events.jsonl --level warn      # structured event log
    repro-ssd obs slo --spec slo.json --timeline tl.jsonl   # SLO CI gate
    repro-ssd obs bench-diff BENCH_base.json BENCH_new.json

A "trace directory" holds the three NPZ files written by ``simulate``:
``records.npz``, ``drives.npz``, ``swaps.npz``.

Every ``simulate``/``train``/``score`` run executes under an active span
tracer + metrics registry (:mod:`repro.obs`) and writes a **run
manifest** next to its artifacts — config digest, RNG seeds, input and
output file sha256s, per-stage timings with rows in/out, and
validation/quarantine tallies.  ``--metrics-out`` additionally dumps the
metrics registry in Prometheus text format; ``obs show``/``obs diff``
inspect and compare manifests.

Exit codes: 0 success; 1 a requested analysis/validation found failures
(for ``obs diff``: the runs are not comparable); 2 the trace, model, or
manifest is missing, corrupt, or rejected by the ``strict`` policy (also
bad configuration and worker crashes); 3 a run under ``--on-poison
quarantine`` completed its healthy work but quarantined poison tasks;
130 the run was interrupted (SIGINT/SIGTERM) after draining in-flight
tasks — ``simulate --resume`` continues from the last checkpoint.  See
DESIGN.md §12 for the full table.
"""

from __future__ import annotations

import argparse
import contextlib
import itertools
import json
import pickle
import sys
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from .analysis import check_observations, figure6, table1, table3, table4, table5
from .core import FailurePredictor
from .data import (
    TraceIntegrityError,
    iter_drive_days,
    load_dataset_checked,
    load_dataset_npz,
    load_drivetable_npz,
    load_swaplog_npz,
    save_dataset_npz,
    save_dataset_store,
    save_drivetable_npz,
    save_swaplog_npz,
)
from .obs import (
    ManifestError,
    RunManifest,
    diff_manifests,
    load_manifest,
    render_manifest,
    validate_manifest,
)
from .obs import eventlog as obs_eventlog
from .obs import metrics as obs_metrics
from .obs import slo as obs_slo
from .obs import timeline as obs_timeline
from .obs import tracing as obs_tracing
from .obs.manifest import _atomic_write_text
from .obs.reportobs import diff_bench
from .parallel import ENV_WORKERS, WorkerConfigError, WorkerCrash, resolve_workers
from .reliability import (
    DEFAULT_RATES,
    FAULT_CLASSES,
    CheckpointStore,
    FaultInjector,
    RepairResult,
    TraceValidationError,
    atomic_write,
    simulate_fleet_resumable,
    validate_trace,
)
from .resilience import (
    EXIT_INTERRUPTED,
    QuarantinedRunError,
    ShutdownRequested,
    SupervisionLog,
    SupervisorPolicy,
    chaos_telemetry_events,
    graceful_shutdown,
    telemetry_spec_from_env,
)
from .fleet import (
    AuditError,
    AuditJournal,
    FleetActionError,
    FleetHealth,
    FleetState,
    HealthError,
    PolicyError,
    PolicyRunner,
    RiskPolicy,
    evaluate_outcome,
    ground_truth,
    journal_summary,
    load_policy,
    read_journal,
    replay_journal,
    run_whatif,
    verify_journal,
)
from .serve import (
    AdmissionGuard,
    BatchPolicy,
    DeadLetterError,
    DeadLetterQueue,
    Distribution,
    EventJournal,
    FeatureStore,
    FeatureStoreError,
    LoadProfile,
    ModelRegistry,
    QueuePolicy,
    RegistryError,
    ReplayResult,
    RVConfig,
    ScoringEngine,
    ServeBreaker,
    ShardError,
    StalenessPolicy,
    TelemetryConfig,
    build_heal_plan,
    canonical_event,
    latest_snapshot,
    load_status,
    plane_scores,
    plane_status,
    render_sharded_status,
    render_status,
    reshard_plane,
    run_sharded_replay,
    status_exit_code,
)
from .simulator import FleetConfig, FleetTrace, default_models, simulate_fleet

__all__ = ["main", "build_parser", "add_execution_args", "CLIError"]


class CLIError(RuntimeError):
    """Actionable user-facing error; printed as one line, exit code 2."""


#: Exit code for a run that completed but quarantined poison tasks.
EXIT_QUARANTINE = 3


def add_execution_args(parser: argparse.ArgumentParser) -> None:
    """The shared execution flag group: workers + supervision.

    Every command with a pooled stage (simulate, train, score, the serve
    family) takes the same four knobs; adding them through one helper
    keeps the flag names, defaults, and help text identical everywhere.
    """
    group = parser.add_argument_group("execution")
    group.add_argument(
        "--workers",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallelizable stages "
        f"(default: ${ENV_WORKERS} or 1; results are byte-identical "
        "for any value)",
    )
    group.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt deadline for pooled tasks; a task past it is "
        "killed and retried (default: no deadline)",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per failed task before it is poison (default: 2); "
        "retried tasks re-run the same seed stream, so results are "
        "byte-identical to a clean run",
    )
    group.add_argument(
        "--on-poison",
        choices=("fail", "quarantine"),
        default="fail",
        help="poison-task handling: fail the run (default) or "
        "quarantine the task, finish healthy work, and exit "
        f"{EXIT_QUARANTINE}",
    )


def add_obs_args(
    parser: argparse.ArgumentParser, span_flag: str = "--trace-spans"
) -> None:
    """The --trace/--metrics-out observability flag group.

    ``span_flag`` is ``--trace`` on ``simulate`` and ``--trace-spans``
    on commands where ``--trace`` already names the input directory.
    """
    group = parser.add_argument_group("observability")
    group.add_argument(
        span_flag,
        dest="trace_spans",
        action="store_true",
        help="include the full span tree in the run manifest "
        "(stage aggregates are always recorded)",
    )
    group.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="also write the metrics registry in Prometheus text format",
    )
    group.add_argument(
        "--manifest-out",
        metavar="PATH",
        default=None,
        help="override the default run-manifest path",
    )
    group.add_argument(
        "--no-manifest",
        action="store_true",
        help="skip writing the run manifest",
    )


def add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """The live-telemetry flag group shared by ``serve replay``/``run``.

    Any of these flags turns the telemetry plane on; without them the
    serving path runs exactly as before (no timeline, no heartbeats).
    """
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--status-out",
        metavar="PATH",
        default=None,
        help="heartbeat a status.json here every --status-every events "
        "(read by `serve status`)",
    )
    group.add_argument(
        "--status-every",
        type=int,
        default=5000,
        metavar="EVENTS",
        help="heartbeat cadence in events seen (default: 5000)",
    )
    group.add_argument(
        "--timeline-out",
        metavar="PATH",
        default=None,
        help="export the windowed timeline as JSONL at stream end "
        "(input for `obs slo`)",
    )
    group.add_argument(
        "--tick-every",
        type=int,
        default=1024,
        metavar="EVENTS",
        help="timeline window width in events (default: 1024; windows "
        "also close on watermark advances)",
    )
    group.add_argument(
        "--eventlog",
        metavar="PATH",
        default=None,
        help="append structured events (guard diversions, health "
        "transitions, heartbeats) to this JSONL (read by `obs tail`)",
    )
    group.add_argument(
        "--slo-spec",
        metavar="PATH",
        default=None,
        help="evaluate this SLO spec over the timeline; the verdict "
        "lands in status.json and the run manifest",
    )


def _telemetry_setup(
    args: argparse.Namespace,
) -> tuple[
    TelemetryConfig | None,
    "obs_timeline.Timeline | None",
    "obs_eventlog.EventLog | None",
]:
    """Build the telemetry pieces from the flag group (all-or-nothing).

    Returns ``(config, timeline, event_log)`` — all ``None`` when no
    telemetry flag was given, so the serving path stays untouched.
    """
    enabled = bool(
        args.status_out or args.timeline_out or args.eventlog or args.slo_spec
    )
    if not enabled:
        return None, None, None
    spec = None
    if args.slo_spec:
        try:
            spec = obs_slo.load_slo_spec(args.slo_spec)
        except (OSError, ValueError) as exc:
            raise CLIError(f"bad SLO spec: {exc}") from None
    try:
        policy = obs_timeline.TickPolicy(every_events=args.tick_every)
        config = TelemetryConfig(
            status_path=args.status_out,
            heartbeat_every=args.status_every,
            slo_spec=spec,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    timeline = obs_timeline.Timeline(policy)
    event_log = obs_eventlog.EventLog(args.eventlog) if args.eventlog else None
    return config, timeline, event_log


@contextlib.contextmanager
def _activate_telemetry(timeline, event_log):
    """Activate the optional timeline/event-log pair for the block."""
    with contextlib.ExitStack() as stack:
        if timeline is not None:
            stack.enter_context(obs_timeline.activate(timeline))
        if event_log is not None:
            stack.enter_context(obs_eventlog.activate(event_log))
        yield


def _finish_telemetry(
    args: argparse.Namespace,
    manifest: RunManifest,
    engine: ScoringEngine,
    timeline,
    event_log,
) -> "obs_slo.SloReport | None":
    """Flush/export the telemetry plane and record the SLO verdict.

    Runs after the stream ends but before the manifest is finalized:
    flushes the partial timeline window, rewrites the final heartbeat so
    ``status.json`` reflects the flushed state, exports the timeline
    JSONL, evaluates the SLO spec, and closes the event log.
    """
    if timeline is None:
        return None
    timeline.flush()
    report = None
    spec = engine.telemetry.slo_spec if engine.telemetry else None
    if spec is not None:
        report = obs_slo.evaluate_slos(spec, timeline.windows())
        manifest.record_slo(report.to_dict())
    if engine.telemetry is not None and engine.telemetry.status_path:
        engine.heartbeat()
        manifest.add_output(engine.telemetry.status_path)
    if args.timeline_out:
        timeline.export_jsonl(args.timeline_out)
        manifest.add_output(args.timeline_out)
    if event_log is not None:
        event_log.close()
        if event_log.path.exists():
            manifest.add_output(event_log.path)
    return report


def _workers_arg(args: argparse.Namespace) -> int:
    """Resolve ``--workers``/``$REPRO_WORKERS`` to a worker count."""
    try:
        return resolve_workers(getattr(args, "workers", None))
    except ValueError as exc:
        raise CLIError(str(exc)) from None


def _policy_arg(args: argparse.Namespace) -> SupervisorPolicy:
    """Build the supervision policy from the resilience flag group."""
    try:
        return SupervisorPolicy(
            task_timeout=getattr(args, "task_timeout", None),
            max_retries=getattr(args, "max_retries", 2),
            on_poison=getattr(args, "on_poison", "fail"),
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None


def _record_supervision(
    manifest: RunManifest, supervision: SupervisionLog
) -> None:
    """Fold supervision events into the manifest (only when any fired)."""
    if supervision.events:
        manifest.record_resilience(supervision.to_dict())


def _chunk_timings(tracer: obs_tracing.Tracer) -> list[dict]:
    """Per-chunk/shard wall times harvested from the simulator spans."""
    timings = []
    for sp in tracer.finished():
        if sp.name != "repro.simulator.chunk":
            continue
        timings.append(
            {
                "chunk": sp.attrs.get("chunk"),
                "n_drives": sp.attrs.get("n_drives"),
                "cached": bool(sp.attrs.get("cached", False)),
                "seconds": round(sp.duration or 0.0, 6),
            }
        )
    return sorted(timings, key=lambda t: (t["chunk"] is None, t["chunk"]))


def _require_trace_dir(path: Path) -> Path:
    if not path.is_dir():
        raise CLIError(
            f"trace directory {path} does not exist or is not a directory "
            "(create one with `repro-ssd simulate --out ...`)"
        )
    return path


def _records_path(trace_dir: Path) -> Path:
    """The preferred records artifact of a trace directory.

    A packed columnar store (``records.cst``, written by ``repro-ssd
    pack``) wins over ``records.npz`` when both exist: replay streams it
    zero-copy instead of inflating zip entries.  Both hold bit-identical
    logical columns, so every consumer is free to take either.
    """
    cst = trace_dir / "records.cst"
    if cst.exists():
        return cst
    return trace_dir / "records.npz"


def _load_trace(
    path: Path, policy: str | None = None
) -> tuple[FleetTrace, RepairResult | None]:
    """Load a trace directory; returns the trace plus the repair outcome
    (``None`` when no load policy ran), so callers can fold validation
    and quarantine tallies into their run manifest."""
    _require_trace_dir(path)
    repair: RepairResult | None = None
    if policy is None or policy == "off":
        records = load_dataset_npz(path / "records.npz")
    else:
        repair = load_dataset_checked(path / "records.npz", policy=policy)
        records = repair.dataset
        if repair.actions:
            print(repair.summary(), file=sys.stderr)
    drives = load_drivetable_npz(path / "drives.npz")
    swaps = load_swaplog_npz(path / "swaps.npz")
    horizon = int((drives.deploy_day + drives.end_of_observation_age).max())
    config = FleetConfig(
        n_drives_per_model=max(len(drives) // 3, 1),
        horizon_days=max(horizon, 30),
        deploy_spread_days=min(int(drives.deploy_day.max()), max(horizon, 30) - 1),
    )
    trace = FleetTrace(records=records, drives=drives, swaps=swaps, config=config)
    return trace, repair


# --------------------------------------------------------------------------
# observability wiring (manifests, metrics export)
# --------------------------------------------------------------------------

#: Default manifest filename written into a simulate output directory.
RUN_MANIFEST = "run_manifest.json"


def _record_repair(manifest: RunManifest, repair: RepairResult | None) -> None:
    if repair is None:
        return
    manifest.record_validation(
        n_errors=repair.report.n_errors,
        n_warnings=repair.report.n_warnings,
        n_quarantined=repair.n_quarantined,
        n_repair_actions=len(repair.actions),
    )


def _trace_inputs(manifest: RunManifest, trace_dir: Path) -> None:
    for name in ("records.npz", "drives.npz", "swaps.npz"):
        if (trace_dir / name).exists():
            manifest.add_input(trace_dir / name)


def _finish_obs(
    args: argparse.Namespace,
    manifest: RunManifest,
    tracer: obs_tracing.Tracer,
    registry: obs_metrics.MetricsRegistry,
    default_path: Path,
) -> Path | None:
    """Finalize + write the manifest and optional Prometheus dump.

    Returns the manifest path (``None`` with ``--no-manifest``).
    """
    include_spans = bool(getattr(args, "trace_spans", False))
    manifest.finish(tracer, registry, include_spans=include_spans)
    path: Path | None = None
    if not getattr(args, "no_manifest", False):
        out = getattr(args, "manifest_out", None)
        path = Path(out) if out else default_path
        manifest.write(path)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        _atomic_write_text(Path(metrics_out), registry.render_prometheus())
    return path


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = FleetConfig(
        n_drives_per_model=args.drives,
        horizon_days=args.days,
        deploy_spread_days=args.deploy_spread,
        seed=args.seed,
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    workers = _workers_arg(args)
    quiet = args.quiet
    if not quiet:
        suffix = f" ({workers} workers)" if workers > 1 else ""
        print(f"Simulating fleet: {config}{suffix} ...")

    def progress(done: int, total: int) -> None:
        print(f"  checkpoint {done}/{total}", flush=True)

    manifest = RunManifest(
        command="simulate",
        config={
            "fleet": asdict(config),
            "models": [asdict(m) for m in default_models()],
            "checkpoint_every": args.checkpoint_every,
        },
        seeds={"seed": args.seed},
    )
    tracer = obs_tracing.Tracer()
    registry = obs_metrics.MetricsRegistry()
    ckpt_dir = out / ".checkpoints"
    policy = _policy_arg(args)
    supervision = SupervisionLog()
    quarantined: QuarantinedRunError | None = None
    with obs_tracing.activate(tracer), obs_metrics.activate(registry):
        try:
            trace = simulate_fleet_resumable(
                config,
                checkpoint_dir=ckpt_dir,
                chunk_size=args.checkpoint_every,
                resume=args.resume,
                progress=progress if (args.verbose and not quiet) else None,
                workers=workers,
                policy=policy,
                supervision=supervision,
            )
        except QuarantinedRunError as exc:
            quarantined = exc
        else:
            save_dataset_npz(trace.records, out / "records.npz")
            save_drivetable_npz(trace.drives, out / "drives.npz")
            save_swaplog_npz(trace.swaps, out / "swaps.npz")
    # Recorded under results, not config: the worker count must not feed
    # the config digest — same-seed serial and parallel runs are meant to
    # `obs diff` clean against each other.
    manifest.results["workers"] = workers
    manifest.results["chunk_timings"] = _chunk_timings(tracer)
    _record_supervision(manifest, supervision)
    if quarantined is not None:
        # Healthy chunks are checkpointed; keep them (no cleanup) so a
        # --resume after fixing the fault only redoes the poison ones.
        manifest.counts = {
            "chunks_completed": quarantined.completed,
            "chunks_total": quarantined.total,
        }
        manifest_path = _finish_obs(
            args, manifest, tracer, registry, out / RUN_MANIFEST
        )
        print(f"error: {quarantined}", file=sys.stderr)
        print(
            f"simulate quarantined: {len(supervision.quarantined)} poison "
            f"chunk(s), {quarantined.completed}/{quarantined.total} chunks "
            "checkpointed"
            + (f", manifest {manifest_path}" if manifest_path else "")
        )
        return EXIT_QUARANTINE
    CheckpointStore(directory=ckpt_dir, digest="", n_chunks=0).cleanup()
    for name in ("records.npz", "drives.npz", "swaps.npz"):
        manifest.add_output(out / name)
    manifest.counts = {
        "drives": len(trace.drives),
        "records": len(trace.records),
        "swaps": len(trace.swaps),
        "days": config.horizon_days,
    }
    manifest_path = _finish_obs(args, manifest, tracer, registry, out / RUN_MANIFEST)
    if not quiet:
        print(trace.summary())
        print(f"Wrote {out}/records.npz, drives.npz, swaps.npz")
        if supervision.events:
            print(supervision.summary())
    # The one-line summary (always printed, the only success output in
    # --quiet mode) is sourced from the manifest, not recomputed.
    print(
        f"simulate ok: {manifest.counts['drives']} drives, "
        f"{manifest.counts['days']} days, {manifest.counts['swaps']} swaps, "
        f"{manifest.elapsed_seconds:.1f}s elapsed"
        + (f", manifest {manifest_path}" if manifest_path else "")
    )
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    trace_dir = _require_trace_dir(Path(args.trace))
    npz_path = trace_dir / "records.npz"
    if not npz_path.exists():
        raise CLIError(f"{npz_path} does not exist; nothing to pack")
    cst_path = trace_dir / "records.cst"
    records = load_dataset_npz(npz_path)
    save_dataset_store(records, cst_path)
    # Prove the pack before advertising it: the store must read back
    # bit-identical to the NPZ it came from.
    verify = load_dataset_npz(cst_path)
    for name in records.column_names:
        a, b = records[name], verify[name]
        if a.dtype != b.dtype or not np.array_equal(a, b):
            cst_path.unlink()
            raise CLIError(f"pack verification failed on column {name!r}")
    npz_mb = npz_path.stat().st_size / 1e6
    cst_mb = cst_path.stat().st_size / 1e6
    print(
        f"pack ok: {cst_path} ({cst_mb:.1f} MB, mmap) from {npz_path} "
        f"({npz_mb:.1f} MB, zip); replay now streams the store zero-copy"
    )
    return 0


def _cmd_bench_sim(args: argparse.Namespace) -> int:
    workers = _workers_arg(args)
    config = FleetConfig(
        n_drives_per_model=args.drives,
        horizon_days=args.days,
        deploy_spread_days=max(min(args.days // 2, 700), 1),
        seed=args.seed,
    )
    # Warm runs pay the one-time costs (imports, allocator growth) so the
    # timed run measures steady-state throughput like the pytest benches.
    for _ in range(max(args.warmups, 0)):
        simulate_fleet(config, workers=workers)
    t0 = time.perf_counter()
    trace = simulate_fleet(config, workers=workers)
    elapsed = time.perf_counter() - t0
    n_events = len(trace.records)
    payload = {
        "n_events": n_events,
        "n_drives": int(trace.records.n_drives()),
        "elapsed_seconds": round(elapsed, 4),
        "events_per_second": round(n_events / elapsed, 1),
        "workers": workers,
        "drives": args.drives,
        "days": args.days,
        "seed": args.seed,
    }
    if args.json_out:
        _atomic_write_text(Path(args.json_out), json.dumps(payload, indent=2) + "\n")
    print(
        f"bench sim: {payload['events_per_second']:,.0f} drive-day events/s "
        f"over {n_events} events ({payload['n_drives']} drives, "
        f"workers={workers}, {elapsed:.3f}s)"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    trace, _ = _load_trace(Path(args.trace), policy=args.policy)
    print(trace.summary())
    print("\n=== Error incidence (Table 1) ===")
    print(table1(trace).render())
    print("\n=== Failure incidence (Table 3) ===")
    print(table3(trace).render())
    print("\n=== Repeat failures (Table 4) ===")
    print(table4(trace).render())
    print("\n=== Repair pipeline (Table 5) ===")
    print(table5(trace).render())
    print("\n=== Infant mortality (Figure 6) ===")
    print(figure6(trace).render())
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    trace_dir = _require_trace_dir(Path(args.trace))
    deep_ok = True
    if args.deep:
        from .data import load_raw_columns_npz

        cols = load_raw_columns_npz(trace_dir / "records.npz")
        drives = load_drivetable_npz(trace_dir / "drives.npz")
        swaps = load_swaplog_npz(trace_dir / "swaps.npz")
        validation = validate_trace(
            cols, drives, swaps, max_gap_days=args.max_gap_days
        )
        print("=== Telemetry validation (audit --deep) ===")
        print(validation.render())
        print()
        deep_ok = validation.ok
        if not deep_ok:
            print("Trace failed telemetry validation; skipping observation "
                  "checks (repair the trace or reload with --policy repair).")
            return 1
    trace, _ = _load_trace(Path(args.trace))
    report = check_observations(trace, include_ml=args.ml, seed=args.seed)
    print(report.render())
    return 0 if (report.all_hold and deep_ok) else 1


def _cmd_train(args: argparse.Namespace) -> int:
    workers = _workers_arg(args)
    manifest = RunManifest(
        command="train",
        config={
            "lookahead": args.lookahead,
            "age_partitioned": args.age_partitioned,
            "cv": args.cv,
            "policy": args.policy,
        },
        seeds={"seed": args.seed},
    )
    tracer = obs_tracing.Tracer()
    registry = obs_metrics.MetricsRegistry()
    policy = _policy_arg(args)
    supervision = SupervisionLog()
    with obs_tracing.activate(tracer), obs_metrics.activate(registry):
        trace, repair = _load_trace(Path(args.trace), policy=args.policy)
        _trace_inputs(manifest, Path(args.trace))
        _record_repair(manifest, repair)
        predictor = FailurePredictor(
            lookahead=args.lookahead,
            age_partitioned=args.age_partitioned,
            seed=args.seed,
        )
        print(f"Training (lookahead={args.lookahead}d"
              f"{', age-partitioned' if args.age_partitioned else ''}) ...")
        if args.cv:
            result = predictor.cross_validate(
                trace,
                n_splits=args.cv,
                workers=workers,
                policy=policy,
                supervision=supervision,
            )
            print(
                f"Cross-validated ROC AUC: "
                f"{result.mean_auc:.3f} ± {result.std_auc:.3f}"
            )
            manifest.results["cv_mean_auc"] = result.mean_auc
            manifest.results["cv_std_auc"] = result.std_auc
            if supervision.quarantined:
                print(
                    f"warning: {len(supervision.quarantined)} CV fold(s) "
                    "quarantined and excluded from the aggregate",
                    file=sys.stderr,
                )
        predictor.fit(trace)
        with atomic_write(args.model, "wb") as fh:
            pickle.dump(predictor, fh)
    manifest.add_output(args.model)
    manifest.counts = {
        "drives": len(trace.drives),
        "records": len(trace.records),
        "swaps": len(trace.swaps),
    }
    manifest.results["workers"] = workers
    _record_supervision(manifest, supervision)
    default_path = Path(str(args.model) + ".manifest.json")
    manifest_path = _finish_obs(args, manifest, tracer, registry, default_path)
    print(f"Wrote model to {args.model}"
          + (f" (manifest {manifest_path})" if manifest_path else ""))
    return 0


def _load_predictor(model_path: Path) -> FailurePredictor:
    """Unpickle a trained predictor from a ``train`` output file."""
    if not model_path.exists():
        raise CLIError(
            f"model file {model_path} does not exist "
            "(train one with `repro-ssd train --model ...`)"
        )
    try:
        with open(model_path, "rb") as fh:
            predictor = pickle.load(fh)
    except (pickle.UnpicklingError, EOFError) as exc:
        raise CLIError(
            f"model file {model_path} is not a readable predictor pickle ({exc})"
        ) from None
    if not isinstance(predictor, FailurePredictor):
        raise CLIError(f"model file {model_path} is not a FailurePredictor")
    return predictor


def _cmd_score(args: argparse.Namespace) -> int:
    workers = _workers_arg(args)
    model_path = Path(args.model)
    predictor = _load_predictor(model_path)
    trace_dir = _require_trace_dir(Path(args.trace))
    manifest = RunManifest(
        command="score",
        config={
            "top": args.top,
            "threshold": args.threshold,
            "policy": args.policy,
            "lookahead": predictor.lookahead,
        },
        seeds={"seed": predictor.seed},
    )
    manifest.add_input(model_path)
    tracer = obs_tracing.Tracer()
    registry = obs_metrics.MetricsRegistry()
    policy = _policy_arg(args)
    supervision = SupervisionLog()
    with obs_tracing.activate(tracer), obs_metrics.activate(registry):
        if args.policy and args.policy != "off":
            result = load_dataset_checked(
                trace_dir / "records.npz", policy=args.policy
            )
            records = result.dataset
            _record_repair(manifest, result)
        else:
            records = load_dataset_npz(trace_dir / "records.npz")
        manifest.add_input(trace_dir / "records.npz")
        full_report = predictor.risk_report(
            records, workers=workers, policy=policy, supervision=supervision
        )
        report = full_report.top(args.top)
    print(f"{'drive':>8s} {'age (d)':>8s} {'P(fail <= %dd)' % predictor.lookahead:>16s}")
    for did, age, p in zip(report.drive_id, report.age_days, report.probability):
        print(f"{did:>8d} {age:>8d} {p:>16.3f}")
    if args.threshold is not None:
        flagged = full_report.flagged(args.threshold)
        print(f"\n{len(flagged)} drive(s) above alpha={args.threshold}: "
              f"{np.sort(flagged).tolist()}")
        manifest.results["n_flagged"] = int(len(flagged))
    manifest.counts = {"records": len(records)}
    manifest.results["workers"] = workers
    _record_supervision(manifest, supervision)
    default_path = Path(str(args.model) + ".score-manifest.json")
    _finish_obs(args, manifest, tracer, registry, default_path)
    return 0


# --------------------------------------------------------------------------
# serve: online scoring service
# --------------------------------------------------------------------------


def _serve_predictor(
    args: argparse.Namespace,
) -> tuple[FailurePredictor, Path, str]:
    """Resolve the served model from ``--model`` or ``--registry``.

    Returns the predictor, the artifact path (for manifest inputs), and
    a short human-readable description of where it came from.
    """
    if args.model:
        path = Path(args.model)
        return _load_predictor(path), path, f"model {path}"
    registry = ModelRegistry(args.registry)
    version = args.version or registry.active_version()
    if version is None:
        raise CLIError(
            f"registry {args.registry} has no active version "
            "(publish one with `repro-ssd serve publish --activate`)"
        )
    predictor = registry.load(version)
    path = registry.versions_dir / version / "model.pkl"
    return predictor, path, f"registry {args.registry} {version}"


def _add_model_source(parser: argparse.ArgumentParser) -> None:
    """``--model`` / ``--registry`` (+ ``--version``) model selection."""
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--model", default=None, help="trained model pickle (train output)"
    )
    group.add_argument(
        "--registry", default=None, help="model registry directory"
    )
    parser.add_argument(
        "--version",
        default=None,
        metavar="vNNNN",
        help="registry version to serve (default: the active one)",
    )


def _score_jsonl_line(event) -> str:
    body = {
        "drive_id": event.drive_id,
        "age_days": event.age_days,
        "probability": event.probability,
    }
    if getattr(event, "stale", False):
        body["stale"] = True
        body["staleness_days"] = event.staleness_days
    return json.dumps(body)


def _serve_summary(engine: ScoringEngine, dlq_path, journal_path) -> dict:
    """The manifest ``serve`` section for a guarded engine."""
    guard = engine.guard
    body = {
        "health": engine.health_state,
        **guard.stats.to_dict(),
        "stale_scores": engine.stale_scores,
    }
    if guard.breaker is not None:
        body["breaker"] = guard.breaker.to_dict()
    if dlq_path:
        body["dlq_path"] = str(dlq_path)
    if journal_path:
        body["journal_path"] = str(journal_path)
    return body


def _cmd_serve_publish(args: argparse.Namespace) -> int:
    predictor = _load_predictor(Path(args.model))
    registry = ModelRegistry(args.registry)
    manifest = RunManifest(
        command="serve.publish",
        config={"activate": args.activate},
        seeds={"seed": predictor.seed},
    )
    manifest.add_input(Path(args.model))
    tracer = obs_tracing.Tracer()
    metrics_registry = obs_metrics.MetricsRegistry()
    with obs_tracing.activate(tracer), obs_metrics.activate(metrics_registry):
        version = registry.publish(
            predictor,
            training_manifest=args.training_manifest,
            activate=args.activate,
        )
    vdir = registry.versions_dir / version
    manifest.add_output(vdir / "model.pkl")
    manifest.add_output(vdir / "meta.json")
    manifest.results["version"] = version
    manifest.results["active"] = registry.active_version()
    _finish_obs(
        args,
        manifest,
        tracer,
        metrics_registry,
        registry.root / "publish_manifest.json",
    )
    state = "active" if registry.active_version() == version else "published"
    print(f"serve publish ok: {version} ({state}) in {registry.root}")
    return 0


def _cmd_serve_replay(args: argparse.Namespace) -> int:
    workers = _workers_arg(args)
    predictor, model_path, model_desc = _serve_predictor(args)
    trace_dir = _require_trace_dir(Path(args.trace))
    records_path = _records_path(trace_dir)
    manifest = RunManifest(
        command="serve.replay",
        config={
            "chunk_rows": args.chunk_rows,
            "lookahead": predictor.lookahead,
        },
        seeds={"seed": predictor.seed},
    )
    manifest.add_input(records_path)
    manifest.add_input(model_path)
    tracer = obs_tracing.Tracer()
    metrics_registry = obs_metrics.MetricsRegistry()
    policy = _policy_arg(args)
    supervision = SupervisionLog()
    telem_spec, chaos_seed = telemetry_spec_from_env()
    dlq = DeadLetterQueue(args.dlq) if args.dlq else None
    journal = EventJournal(args.journal) if args.journal else None
    guarded = bool(dlq or journal or telem_spec)
    telemetry, timeline, event_log = _telemetry_setup(args)
    scored_events = None
    with (
        obs_tracing.activate(tracer),
        obs_metrics.activate(metrics_registry),
        _activate_telemetry(timeline, event_log),
    ):
        if args.restore:
            # A rotated snapshot base (--snapshot-keep) resolves to its
            # newest on-disk generation; an exact file wins as before.
            resolved = latest_snapshot(Path(args.restore)) or args.restore
            store = FeatureStore.restore(resolved)
        else:
            store = FeatureStore()
        start_row = store.events_total
        guard = (
            AdmissionGuard(
                store, dlq=dlq, journal=journal, breaker=ServeBreaker()
            )
            if guarded
            else None
        )
        engine = ScoringEngine(
            predictor,
            store=store,
            workers=workers,
            policy=policy,
            supervision=supervision,
            guard=guard,
            telemetry=telemetry,
        )
        if telem_spec:
            # Chaos drill: perturb the event stream (pure function of
            # the chaos seed) and route every arrival through the
            # admission guard one at a time.
            if start_row:
                raise CLIError(
                    "--restore cannot be combined with telemetry chaos "
                    "(the fault plan is indexed from event 0)"
                )
            print(
                "serve replay: telemetry chaos active "
                f"({', '.join(f'{m}={r}' for m, r in telem_spec)}, "
                f"seed {chaos_seed}) — event-wise guarded replay",
                file=sys.stderr,
            )
            events = chaos_telemetry_events(
                iter_drive_days(records_path, chunk_rows=args.chunk_rows),
                telem_spec,
                chaos_seed,
            )
            t0 = time.perf_counter()
            scored_events = list(engine.score_stream(events))
            stats = guard.stats
            result = ReplayResult(
                probability=np.asarray(
                    [ev.probability for ev in scored_events]
                ),
                n_events=stats.admitted,
                n_batches=engine.batches_total,
                elapsed_seconds=time.perf_counter() - t0,
                n_diverted=stats.dead_lettered,
                n_duplicates=stats.duplicates_dropped,
            )
            if args.snapshot:
                store.snapshot(args.snapshot)
        else:
            result = engine.replay(
                records_path,
                chunk_rows=args.chunk_rows,
                start_row=start_row,
                snapshot_every=args.snapshot_every,
                snapshot_path=args.snapshot,
                snapshot_keep=args.snapshot_keep,
            )
        # The parity gate: the offline batch pipeline over the same
        # records must reproduce the streamed scores bit-for-bit.
        records = load_dataset_npz(records_path)
        check_parity = (
            not args.no_parity
            and not telem_spec
            and result.n_diverted == 0
            and result.n_duplicates == 0
        )
        if check_parity:
            offline = predictor.predict_proba_records(
                records, workers=workers, policy=policy, supervision=supervision
            )[start_row:]
            diverged = int(
                np.count_nonzero(result.probability != offline)
                if len(result.probability) == len(offline)
                else max(len(result.probability), len(offline))
            )
        else:
            offline = None
            diverged = 0
        slo_report = _finish_telemetry(args, manifest, engine, timeline, event_log)
    if dlq is not None:
        dlq.close()
    if journal is not None:
        journal.close()
    if args.out:
        with atomic_write(args.out, "w") as fh:
            if scored_events is not None:
                for ev in scored_events:
                    fh.write(_score_jsonl_line(ev) + "\n")
            else:
                ids = np.asarray(records["drive_id"])[start_row:]
                ages = np.asarray(records["age_days"])[start_row:]
                if result.accepted_index is not None:
                    # Guarded replay: the guard may have diverted or
                    # deduped rows, so probabilities cover accepted
                    # events only — select their source rows.
                    ids = ids[result.accepted_index]
                    ages = ages[result.accepted_index]
                for did, age, p in zip(
                    ids, ages, result.probability, strict=True
                ):
                    fh.write(
                        json.dumps(
                            {
                                "drive_id": int(did),
                                "age_days": int(age),
                                "probability": float(p),
                            }
                        )
                        + "\n"
                    )
        manifest.add_output(args.out)
    manifest.counts = {
        "events": result.n_events,
        "batches": result.n_batches,
        "drives": store.n_drives,
        "skipped": start_row,
        "diverted": result.n_diverted,
        "duplicates": result.n_duplicates,
    }
    manifest.results["workers"] = workers
    manifest.results["events_per_second"] = round(result.events_per_second, 1)
    manifest.results["diverged"] = diverged
    manifest.results["parity_checked"] = check_parity
    if guarded:
        manifest.record_serve(_serve_summary(engine, args.dlq, args.journal))
        if args.dlq and Path(args.dlq).exists():
            manifest.add_output(args.dlq)
        if args.journal and Path(args.journal).exists():
            manifest.add_output(args.journal)
    _record_supervision(manifest, supervision)
    manifest_path = _finish_obs(
        args,
        manifest,
        tracer,
        metrics_registry,
        trace_dir / "serve_replay_manifest.json",
    )
    suffix = f", manifest {manifest_path}" if manifest_path else ""
    resumed = f" (resumed past {start_row})" if start_row else ""
    if slo_report is not None:
        bad = sum(1 for r in slo_report.objectives if r.state != "ok")
        print(
            f"serve replay: slo {slo_report.state} "
            f"({len(slo_report.objectives)} objective(s), {bad} violating)",
            file=sys.stderr,
        )
    if diverged:
        print(
            f"serve replay DIVERGED: {diverged}/{len(offline)} event(s) "
            f"differ from the offline pipeline ({model_desc}){suffix}",
            file=sys.stderr,
        )
        return 1
    if not check_parity:
        faults = (
            f", {result.n_diverted} diverted / {result.n_duplicates} "
            "duplicate(s)"
            if guarded
            else ""
        )
        print(
            f"serve replay: {result.n_events} event(s) scored{faults}, "
            f"{result.events_per_second:,.0f} ev/s, {store.n_drives} drives "
            f"({model_desc}; parity not checked){suffix}"
        )
        return 0
    print(
        f"serve replay ok: {result.n_events} events{resumed} scored online "
        f"match offline bit-for-bit, {result.events_per_second:,.0f} ev/s, "
        f"{store.n_drives} drives ({model_desc}){suffix}"
    )
    return 0


def _load_profile_arg(args: argparse.Namespace) -> LoadProfile:
    """Build the seeded arrival process from the bench flag group."""
    try:
        return LoadProfile(
            RVConfig(
                mean=args.arrival_mean,
                distribution=Distribution(args.arrival),
                variance=args.arrival_variance,
            ),
            seed=args.seed if args.arrival_seed is None else args.arrival_seed,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None


def _cmd_serve_shard(args: argparse.Namespace) -> int:
    workers = _workers_arg(args)
    if args.shards < 1:
        raise CLIError("--shards must be >= 1")
    if args.reshard_from is None and args.trace is None:
        raise CLIError("serve shard needs --trace (or --reshard-from PLANE)")
    if args.reshard_from is not None and args.out is not None:
        raise CLIError(
            "--out is only available with --trace (a reshard's source rows "
            "live in the old plane's journals, not a trace directory)"
        )
    predictor, model_path, model_desc = _serve_predictor(args)
    plane = Path(args.plane)
    manifest = RunManifest(
        command="serve.shard",
        config={
            "shards": args.shards,
            "chunk_rows": args.chunk_rows,
            "checkpoint_every": args.checkpoint_every,
            "checkpoint_keep": args.checkpoint_keep,
            "reshard_from": args.reshard_from,
            "lookahead": predictor.lookahead,
        },
        seeds={"seed": predictor.seed},
    )
    manifest.add_input(model_path)
    tracer = obs_tracing.Tracer()
    metrics_registry = obs_metrics.MetricsRegistry()
    policy = _policy_arg(args)
    supervision = SupervisionLog()
    common = dict(
        chunk_rows=args.chunk_rows,
        checkpoint_every=args.checkpoint_every,
        checkpoint_keep=args.checkpoint_keep,
        workers=workers,
        policy=policy,
        supervision=supervision,
    )
    records = None
    with obs_tracing.activate(tracer), obs_metrics.activate(metrics_registry):
        if args.reshard_from is not None:
            old_plane = Path(args.reshard_from)
            # Baseline first: the old plane's merged scores, read back
            # from its final checkpoints — the reshard identity gate.
            baseline = (
                None if args.no_parity else plane_scores(old_plane)[0]
            )
            result = reshard_plane(
                old_plane, plane, predictor, args.shards, **common
            )
            baseline_desc = f"the source plane {old_plane}"
        else:
            trace_dir = _require_trace_dir(Path(args.trace))
            records_path = _records_path(trace_dir)
            manifest.add_input(records_path)
            result = run_sharded_replay(
                predictor, records_path, args.shards, plane, **common
            )
            baseline = None
            if (
                not args.no_parity
                and result.n_diverted == 0
                and result.n_duplicates == 0
            ):
                # The offline pipeline over the same records — the
                # shard-count analogue of the `serve replay` parity gate.
                records = load_dataset_npz(records_path)
                baseline = predictor.predict_proba_records(
                    records,
                    workers=workers,
                    policy=policy,
                    supervision=supervision,
                )
            baseline_desc = f"the offline pipeline ({model_desc})"
        if baseline is not None:
            diverged = int(
                np.count_nonzero(result.probability != baseline)
                if len(result.probability) == len(baseline)
                else max(len(result.probability), len(baseline))
            )
        else:
            diverged = 0
    if args.out:
        ids = np.asarray(records["drive_id"])[result.accepted_index]
        ages = np.asarray(records["age_days"])[result.accepted_index]
        with atomic_write(args.out, "w") as fh:
            for did, age, p in zip(
                ids, ages, result.probability, strict=True
            ):
                fh.write(
                    json.dumps(
                        {
                            "drive_id": int(did),
                            "age_days": int(age),
                            "probability": float(p),
                        }
                    )
                    + "\n"
                )
        manifest.add_output(args.out)
    manifest.counts = {
        "events": result.n_events,
        "rows": result.n_rows,
        "shards": result.n_shards,
        "diverted": result.n_diverted,
        "duplicates": result.n_duplicates,
        "restored": result.n_restored,
    }
    manifest.results["workers"] = workers
    manifest.results["events_per_second"] = round(result.events_per_second, 1)
    manifest.results["diverged"] = diverged
    manifest.results["parity_checked"] = baseline is not None
    manifest.results["shards"] = result.shards
    _record_supervision(manifest, supervision)
    manifest_path = _finish_obs(
        args,
        manifest,
        tracer,
        metrics_registry,
        plane / "serve_shard_manifest.json",
    )
    suffix = f", manifest {manifest_path}" if manifest_path else ""
    healed = (
        f", {result.n_restored} shard(s) restored from checkpoint"
        if result.n_restored
        else ""
    )
    if diverged:
        print(
            f"serve shard DIVERGED: {diverged}/{len(baseline)} event(s) "
            f"differ from {baseline_desc}{suffix}",
            file=sys.stderr,
        )
        return 1
    if baseline is None:
        faults = (
            f", {result.n_diverted} diverted / {result.n_duplicates} "
            "duplicate(s)"
        )
        print(
            f"serve shard: {result.n_events} event(s) scored across "
            f"{result.n_shards} shard(s){faults}{healed}, "
            f"{result.events_per_second:,.0f} ev/s "
            f"({model_desc}; parity not checked){suffix}"
        )
        return 0
    print(
        f"serve shard ok: {result.n_events} events across "
        f"{result.n_shards} shard(s) match {baseline_desc} bit-for-bit"
        f"{healed}, {result.events_per_second:,.0f} ev/s{suffix}"
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    workers = _workers_arg(args)
    config = FleetConfig(
        n_drives_per_model=args.drives,
        horizon_days=args.days,
        deploy_spread_days=max(min(args.days // 2, 700), 1),
        seed=args.seed,
    )
    manifest = RunManifest(
        command="serve.bench",
        config={"fleet": asdict(config), "chunk_rows": args.chunk_rows},
        seeds={"seed": args.seed},
    )
    tracer = obs_tracing.Tracer()
    metrics_registry = obs_metrics.MetricsRegistry()
    profile = _load_profile_arg(args) if args.shards else None
    with obs_tracing.activate(tracer), obs_metrics.activate(metrics_registry):
        trace = simulate_fleet(config)
        predictor = FailurePredictor(lookahead=7, seed=args.seed).fit(trace)
        if args.shards:
            # Sharded throughput: the seeded arrival process re-chunks
            # the trace into bursts and the plane absorbs them across
            # --shards supervised scorer shards.
            with tempfile.TemporaryDirectory(
                prefix="repro-serve-bench-"
            ) as tmp:
                result = run_sharded_replay(
                    predictor,
                    trace.records,
                    args.shards,
                    Path(tmp) / "plane",
                    chunk_rows=args.chunk_rows,
                    workers=workers,
                    load_profile=profile,
                )
        else:
            # Throughput: chunked ingest+score over the whole trace.
            engine = ScoringEngine(predictor, workers=workers)
            result = engine.replay(trace.records, chunk_rows=args.chunk_rows)
        offline = predictor.predict_proba_records(trace.records)
        parity = bool(np.array_equal(result.probability, offline))
        # Latency: unbatched single-event round trips on a fresh store.
        lat_engine = ScoringEngine(
            predictor, batch_policy=BatchPolicy(max_batch_size=1)
        )
        latencies = []
        sample = itertools.islice(
            iter_drive_days(trace.records), args.latency_events
        )
        for record in sample:
            t0 = time.perf_counter()
            lat_engine.submit(record)
            latencies.append(time.perf_counter() - t0)
    lat = np.sort(np.asarray(latencies))
    payload = {
        "n_events": result.n_events,
        "n_drives": int(trace.records.n_drives()),
        "elapsed_seconds": round(result.elapsed_seconds, 4),
        "events_per_second": round(result.events_per_second, 1),
        "workers": workers,
        "chunk_rows": args.chunk_rows,
        "parity": parity,
        "latency_events": len(lat),
        "latency_p50_us": round(float(np.quantile(lat, 0.50)) * 1e6, 1),
        "latency_p95_us": round(float(np.quantile(lat, 0.95)) * 1e6, 1),
        "latency_p99_us": round(float(np.quantile(lat, 0.99)) * 1e6, 1),
    }
    if args.shards:
        payload["shards"] = args.shards
        payload["arrival"] = profile.to_dict()
    if args.json_out:
        _atomic_write_text(
            Path(args.json_out), json.dumps(payload, indent=2) + "\n"
        )
        manifest.add_output(args.json_out)
    manifest.counts = {"events": result.n_events}
    manifest.results.update(payload)
    if args.manifest_out:
        default_manifest = Path(args.manifest_out)
    elif args.json_out:
        default_manifest = Path(str(args.json_out) + ".manifest.json")
    else:
        args.no_manifest = True
        default_manifest = Path("serve_bench_manifest.json")
    _finish_obs(args, manifest, tracer, metrics_registry, default_manifest)
    topology = (
        f"{args.shards} shard(s), {workers} worker(s), "
        f"{profile.arrival.distribution.value} arrivals"
        if args.shards
        else f"{workers} worker(s)"
    )
    print(
        f"serve bench: {payload['events_per_second']:,.0f} ev/s over "
        f"{payload['n_events']} events ({topology}), latency "
        f"p50 {payload['latency_p50_us']:.0f}us / "
        f"p99 {payload['latency_p99_us']:.0f}us, parity "
        f"{'ok' if parity else 'DIVERGED'}"
    )
    return 0 if parity else 1


def _cmd_serve_run(args: argparse.Namespace) -> int:
    predictor, model_path, model_desc = _serve_predictor(args)
    try:
        batch_policy = BatchPolicy(
            max_batch_size=args.batch_size, max_wait_seconds=args.max_wait
        )
        queue_policy = QueuePolicy(
            max_depth=args.max_queue, on_full=args.overflow
        )
        staleness = (
            StalenessPolicy(max_lag_days=args.max_stale_days)
            if args.max_stale_days is not None
            else None
        )
        breaker = ServeBreaker(fault_threshold=args.fault_threshold)
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    store = (
        FeatureStore.restore(args.restore) if args.restore else FeatureStore()
    )
    dlq = DeadLetterQueue(args.dlq) if args.dlq else None
    journal = EventJournal(args.journal) if args.journal else None
    guard = AdmissionGuard(store, dlq=dlq, journal=journal, breaker=breaker)
    manifest = RunManifest(
        command="serve.run",
        config={
            "batch_size": args.batch_size,
            "max_wait": args.max_wait,
            "max_queue": args.max_queue,
            "overflow": args.overflow,
            "max_stale_days": args.max_stale_days,
            "lookahead": predictor.lookahead,
        },
        seeds={"seed": predictor.seed},
    )
    manifest.add_input(model_path)
    tracer = obs_tracing.Tracer()
    metrics_registry = obs_metrics.MetricsRegistry()
    telemetry, timeline, event_log = _telemetry_setup(args)
    print(f"serve run: scoring stdin JSONL with {model_desc}", file=sys.stderr)
    n_lines = 0
    health = guard.breaker.state

    def emit(line: str) -> None:
        print(line)
        sys.stdout.flush()

    def emit_health() -> None:
        # Status records ride the same stdout transport as scores; their
        # "type" key distinguishes them (score records never carry one).
        nonlocal health
        if guard.breaker.state != health:
            health = guard.breaker.state
            emit(json.dumps({"type": "status", "health": health, "line": n_lines}))

    with (
        obs_tracing.activate(tracer),
        obs_metrics.activate(metrics_registry),
        _activate_telemetry(timeline, event_log),
    ):
        engine = ScoringEngine(
            predictor,
            store=store,
            batch_policy=batch_policy,
            guard=guard,
            queue_policy=queue_policy,
            staleness=staleness,
            telemetry=telemetry,
        )
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            n_lines += 1
            try:
                record = json.loads(line)
            except ValueError as exc:
                guard.divert_raw(line, f"not valid JSON: {exc}")
                emit(
                    json.dumps(
                        {
                            "type": "error",
                            "line": n_lines,
                            "fault": "malformed",
                            "reason": f"not valid JSON: {exc}",
                        }
                    )
                )
                emit_health()
                continue
            flushed = engine.submit(record)
            # Dead-lettered events get a structured error record on the
            # same transport; exact duplicates are dropped silently
            # (idempotent re-delivery is not an error).
            outcome = guard.last_outcome
            if outcome is not None and outcome.fault is not None:
                body = {
                    "type": "error",
                    "line": n_lines,
                    "fault": outcome.fault,
                    "status": outcome.status,
                    "reason": outcome.reason,
                }
                if outcome.drive_id is not None:
                    body["drive_id"] = outcome.drive_id
                if outcome.age_days is not None:
                    body["age_days"] = outcome.age_days
                if outcome.watermark is not None:
                    body["watermark"] = outcome.watermark
                emit(json.dumps(body))
            for event in flushed:
                emit(_score_jsonl_line(event))
            emit_health()
        for event in engine.drain():
            emit(_score_jsonl_line(event))
        emit_health()
        slo_report = _finish_telemetry(
            args, manifest, engine, timeline, event_log
        )
    if dlq is not None:
        dlq.close()
    if journal is not None:
        journal.close()
    if args.snapshot:
        store.snapshot(args.snapshot)
        print(f"serve run: store snapshot -> {args.snapshot}", file=sys.stderr)
    stats = guard.stats
    manifest.counts = {
        "lines": n_lines,
        "scored": engine.requests_total,
        "drives": store.n_drives,
    }
    manifest.record_serve(_serve_summary(engine, args.dlq, args.journal))
    if args.dlq:
        p = Path(args.dlq)
        if p.exists():
            manifest.add_output(p)
    if args.journal:
        p = Path(args.journal)
        if p.exists():
            manifest.add_output(p)
    if not args.manifest_out:
        args.no_manifest = True
    _finish_obs(
        args, manifest, tracer, metrics_registry, Path("serve_run_manifest.json")
    )
    diverted = stats.dead_lettered
    slo_suffix = f"; slo {slo_report.state}" if slo_report is not None else ""
    print(
        f"serve run: scored {engine.requests_total} event(s) across "
        f"{store.n_drives} drive(s); {stats.duplicates_dropped} duplicate(s) "
        f"dropped, {diverted} diverted"
        + (f" (DLQ {args.dlq})" if args.dlq and diverted else "")
        + f"; health {engine.health_state}{slo_suffix}",
        file=sys.stderr,
    )
    # Exit contract: 0 every event scored (duplicates are benign), 1 some
    # events were diverted (replayable via `serve heal` when --dlq was
    # given), 2 config/usage errors (argparse/CLIError path).
    return 1 if diverted else 0


def _cmd_serve_heal(args: argparse.Namespace) -> int:
    predictor, model_path, model_desc = _serve_predictor(args)
    journal_events = EventJournal.read(args.journal)
    entries = DeadLetterQueue.read(args.dlq) if args.dlq else []
    refetch = None
    if args.refetch:
        trace_dir = _require_trace_dir(Path(args.refetch))
        refetch = {
            (int(rec["drive_id"]), int(rec["age_days"])): rec
            for rec in iter_drive_days(trace_dir / "records.npz")
        }
    manifest = RunManifest(
        command="serve.heal",
        config={
            "refetch": bool(args.refetch),
            "lookahead": predictor.lookahead,
        },
        seeds={"seed": predictor.seed},
    )
    manifest.add_input(args.journal)
    if args.dlq:
        manifest.add_input(args.dlq)
    manifest.add_input(model_path)
    tracer = obs_tracing.Tracer()
    metrics_registry = obs_metrics.MetricsRegistry()
    with obs_tracing.activate(tracer), obs_metrics.activate(metrics_registry):
        plan = build_heal_plan(journal_events, entries, refetch=refetch)
        # Rebuild a fresh store from the healed stream.  Every planned
        # event must admit cleanly — the plan is already deduplicated
        # and sorted into canonical trace order.
        store = FeatureStore()
        guard = AdmissionGuard(store, breaker=ServeBreaker())
        engine = ScoringEngine(predictor, store=store, guard=guard)
        scored = list(engine.score_stream(plan.events))
    rejected = guard.stats.dead_lettered + guard.stats.duplicates_dropped
    if args.out:
        with atomic_write(args.out, "w") as fh:
            for ev in scored:
                fh.write(_score_jsonl_line(ev) + "\n")
        manifest.add_output(args.out)
    if args.snapshot:
        store.snapshot(args.snapshot)
        manifest.add_output(args.snapshot)
    parity_ok = None
    if args.expect:
        if not args.out:
            raise CLIError("--expect requires --out (the files are compared)")
        parity_ok = Path(args.out).read_bytes() == Path(args.expect).read_bytes()
        manifest.results["parity"] = parity_ok
    manifest.counts = {
        "journal_events": len(journal_events),
        "dead_letters": len(entries),
        "healed": plan.n_healed,
        "events": len(plan.events),
        "duplicates_dropped": plan.duplicates_dropped,
        "conflicts_resolved": plan.conflicts_resolved,
        "unhealable": len(plan.unhealable),
        "drives": store.n_drives,
    }
    manifest.results["healed_by_fault"] = dict(
        sorted(plan.healed_by_fault.items())
    )
    manifest.record_serve(_serve_summary(engine, None, None))
    if not args.manifest_out:
        args.no_manifest = True
    _finish_obs(
        args, manifest, tracer, metrics_registry, Path("serve_heal_manifest.json")
    )
    healed = ", ".join(
        f"{k}={v}" for k, v in sorted(plan.healed_by_fault.items())
    )
    print(
        f"serve heal: {len(plan.events)} event(s) rebuilt from "
        f"{len(journal_events)} journaled + {plan.n_healed} healed"
        + (f" ({healed})" if healed else "")
        + f", {plan.duplicates_dropped} duplicate(s) dropped, "
        f"{plan.conflicts_resolved} conflict(s) resolved, "
        f"{len(plan.unhealable)} unhealable ({model_desc})",
        file=sys.stderr,
    )
    for entry in plan.unhealable[:10]:
        print(
            f"  unhealable [{entry.fault}] seq {entry.seq}: {entry.reason}",
            file=sys.stderr,
        )
    if rejected:
        print(
            f"serve heal: {rejected} planned event(s) failed re-admission "
            "(journal/DLQ inconsistent with a clean stream)",
            file=sys.stderr,
        )
        return 1
    if parity_ok is False:
        print(
            f"serve heal DIVERGED: {args.out} does not match {args.expect} "
            "byte-for-byte",
            file=sys.stderr,
        )
        return 1
    if parity_ok:
        print(
            f"serve heal: parity ok — {args.out} matches {args.expect} "
            "byte-for-byte",
            file=sys.stderr,
        )
    # Exit contract: 0 fully healed (and parity held when --expect was
    # given); 1 unhealable events remain or the healed scores diverged;
    # 2 missing/corrupt journal, DLQ, trace, or model.
    return 1 if plan.unhealable else 0


def _cmd_serve_status(args: argparse.Namespace) -> int:
    try:
        if args.sharded:
            # A plane directory: roll every shard's heartbeat into one
            # verdict (worst shard wins the exit code).
            status = plane_status(args.status_file)
        else:
            status = load_status(args.status_file)
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    elif args.sharded:
        print(render_sharded_status(status))
    else:
        print(render_status(status))
    # Exit contract: 0 healthy, 1 degraded or SLO warning, 2 SLO breach
    # — CI can gate a chaos drill on `serve status` directly.
    return status_exit_code(status)


# --------------------------------------------------------------------------
# the fleet autopilot (score → decide → act → audit)
# --------------------------------------------------------------------------

def _fleet_policy_arg(source: str):
    try:
        return load_policy(source)
    except PolicyError as exc:
        raise CLIError(str(exc)) from None


def _fleet_risk_arg(args: argparse.Namespace) -> RiskPolicy:
    try:
        return RiskPolicy(
            ewma_alpha=args.risk_alpha,
            stale_after_days=args.stale_after,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None


def add_fleet_risk_args(parser: argparse.ArgumentParser) -> None:
    """The shared EWMA risk knobs of ``fleet run``/``fleet whatif``."""
    group = parser.add_argument_group("risk scoring")
    group.add_argument(
        "--risk-alpha",
        type=float,
        default=0.3,
        metavar="A",
        help="EWMA weight of the newest score in (0, 1] (default: 0.3)",
    )
    group.add_argument(
        "--stale-after",
        type=int,
        default=7,
        metavar="DAYS",
        help="score age past which a drive's risk counts as stale "
        "(default: 7)",
    )


def _fleet_summary(policy, outcome, report=None, journal_path=None) -> dict:
    """The manifest ``fleet`` section for one policy run."""
    state = outcome.state
    body = {
        "policy_kind": policy.kind,
        "n_events": outcome.n_events,
        "n_days": outcome.n_days,
        "n_actions": outcome.n_actions,
        "n_rejected": outcome.n_rejected,
        "reverts": state.reverts_total,
        "by_action": dict(sorted(state.by_action.items())),
        "spares_used": state.spares_used,
        "cost_total": float(state.cost_total),
        "chain": outcome.chain,
        "state_digest": state.digest(),
        "health_digest": outcome.health.state_digest(),
    }
    if journal_path:
        body["journal_path"] = str(journal_path)
    if report is not None:
        body["caught"] = report.caught
        body["missed"] = report.missed
        body["false_replacements"] = report.false_replacements
        body["savings"] = float(report.savings)
    return body


def _render_whatif_table(reports: list) -> str:
    """One row per policy, aligned; the best-savings row is starred."""
    header = (
        "policy", "caught", "missed", "false", "spares",
        "at-risk-d", "quarantine-d", "cost", "savings",
    )
    rows = [header]
    best = max(range(len(reports)), key=lambda i: reports[i].savings)
    for i, r in enumerate(reports):
        name = r.policy.get("kind", "?")
        star = "*" if i == best and len(reports) > 1 else " "
        rows.append((
            f"{star}{name}[{i}]",
            str(r.caught),
            str(r.missed),
            str(r.false_replacements),
            str(r.spares_used),
            str(r.drive_days_at_risk),
            str(r.quarantine_drive_days),
            f"{r.total_cost:.1f}",
            f"{r.savings:+.1f}",
        ))
    widths = [max(len(row[c]) for row in rows) for c in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)).rstrip()
        for row in rows
    )


def _cmd_fleet_whatif(args: argparse.Namespace) -> int:
    workers = _workers_arg(args)
    predictor, model_path, model_desc = _serve_predictor(args)
    policies = [_fleet_policy_arg(p) for p in args.policy]
    if args.journal_out and len(policies) > 1:
        raise CLIError(
            "--journal-out needs exactly one --policy (a journal records "
            "one policy's decisions)"
        )
    trace, _ = _load_trace(Path(args.trace))
    risk = _fleet_risk_arg(args)
    manifest = RunManifest(
        command="fleet.whatif",
        config={
            "policies": [p.spec() for p in policies],
            "at_risk_window": args.at_risk_window,
            "risk_alpha": args.risk_alpha,
            "stale_after": args.stale_after,
        },
        seeds={"seed": predictor.seed},
    )
    _trace_inputs(manifest, Path(args.trace))
    manifest.add_input(model_path)
    tracer = obs_tracing.Tracer()
    metrics_registry = obs_metrics.MetricsRegistry()
    reports = []
    with obs_tracing.activate(tracer), obs_metrics.activate(metrics_registry):
        # Score once; every policy replays the same byte-exact stream.
        probs = predictor.predict_proba_records(
            trace.records, workers=workers
        )
        for i, policy in enumerate(policies):
            report, outcome = run_whatif(
                trace,
                policy,
                probs=probs,
                journal_path=args.journal_out,
                risk=risk,
                at_risk_window=args.at_risk_window,
            )
            reports.append((report, outcome))
    best = max(range(len(reports)), key=lambda i: reports[i][0].savings)
    manifest.record_fleet(
        _fleet_summary(
            policies[best],
            reports[best][1],
            report=reports[best][0],
            journal_path=args.journal_out,
        )
    )
    manifest.counts = {
        "events": reports[0][1].n_events,
        "policies": len(policies),
        "failures": reports[0][0].n_failures,
    }
    manifest.results["workers"] = workers
    manifest.results["reports"] = [r.to_dict() for r, _ in reports]
    if args.journal_out:
        manifest.add_output(args.journal_out)
    if args.json_out:
        with atomic_write(args.json_out, "w") as fh:
            json.dump(
                [r.to_dict() for r, _ in reports],
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
        manifest.add_output(args.json_out)
    manifest_path = _finish_obs(
        args,
        manifest,
        tracer,
        metrics_registry,
        Path(args.trace) / "fleet_whatif_manifest.json",
    )
    print(
        f"fleet whatif: {len(policies)} polic"
        f"{'y' if len(policies) == 1 else 'ies'} x "
        f"{reports[0][1].n_events} scored events "
        f"({reports[0][0].n_drives} drives, "
        f"{reports[0][0].n_failures} failure(s); {model_desc})"
    )
    print(_render_whatif_table([r for r, _ in reports]))
    if manifest_path:
        print(f"manifest: {manifest_path}")
    return 0


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    workers = _workers_arg(args)
    predictor, model_path, model_desc = _serve_predictor(args)
    policy = _fleet_policy_arg(args.policy)
    trace, _ = _load_trace(Path(args.trace))
    risk = _fleet_risk_arg(args)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    journal_path = out_dir / "audit.jsonl"
    if journal_path.exists():
        raise CLIError(
            f"{journal_path} already exists — a fleet run appends a fresh "
            "tamper-evident journal; pick a new --out or inspect the old "
            "run with `fleet audit`"
        )
    telem_spec, chaos_seed = telemetry_spec_from_env()
    manifest = RunManifest(
        command="fleet.run",
        config={
            "policy": policy.spec(),
            "chunk_rows": args.chunk_rows,
            "risk_alpha": args.risk_alpha,
            "stale_after": args.stale_after,
            "chaos": [list(pair) for pair in telem_spec],
        },
        seeds={"seed": predictor.seed, "chaos_seed": chaos_seed},
    )
    _trace_inputs(manifest, Path(args.trace))
    manifest.add_input(model_path)
    tracer = obs_tracing.Tracer()
    metrics_registry = obs_metrics.MetricsRegistry()
    telemetry, timeline, event_log = _telemetry_setup(args)
    journal = AuditJournal(journal_path)
    runner = PolicyRunner(policy, journal=journal, risk=risk)
    dlq_path = out_dir / "dlq.jsonl" if telem_spec else None
    dlq = DeadLetterQueue(dlq_path) if dlq_path else None
    try:
        with (
            obs_tracing.activate(tracer),
            obs_metrics.activate(metrics_registry),
            _activate_telemetry(timeline, event_log),
        ):
            store = FeatureStore()
            guard = (
                AdmissionGuard(store, dlq=dlq, breaker=ServeBreaker())
                if telem_spec
                else None
            )
            engine = ScoringEngine(
                predictor,
                store=store,
                workers=workers,
                guard=guard,
                telemetry=telemetry,
                on_scored=runner.feed,
            )
            if telem_spec:
                # Chaos drill: the fault plan perturbs arrivals, the
                # guard decides admission event by event, and the policy
                # decides from whatever survived — the decision-quality
                # delta is the measurement.
                print(
                    "fleet run: telemetry chaos active "
                    f"({', '.join(f'{m}={r}' for m, r in telem_spec)}, "
                    f"seed {chaos_seed}) — event-wise guarded scoring",
                    file=sys.stderr,
                )
                events = chaos_telemetry_events(
                    iter_drive_days(trace.records, chunk_rows=args.chunk_rows),
                    telem_spec,
                    chaos_seed,
                )
                for _ in engine.score_stream(events):
                    pass
            else:
                engine.replay(trace.records, chunk_rows=args.chunk_rows)
            outcome = runner.finalize()
            report = evaluate_outcome(
                outcome,
                ground_truth(trace),
                policy,
                at_risk_window=args.at_risk_window,
            )
            health_path = outcome.health.snapshot(out_dir / "health.npz")
            slo_report = _finish_telemetry(
                args, manifest, engine, timeline, event_log
            )
    finally:
        journal.close()
        if dlq is not None:
            dlq.close()
    state_path = out_dir / "state.json"
    with atomic_write(state_path, "w") as fh:
        json.dump(
            {
                "state": outcome.state.to_dict(),
                "state_digest": outcome.state.digest(),
                "chain": outcome.chain,
                "policy": policy.spec(),
            },
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")
    if journal_path.exists():
        manifest.add_output(journal_path)
    manifest.add_output(health_path)
    manifest.add_output(state_path)
    manifest.record_fleet(
        _fleet_summary(
            policy, outcome, report=report, journal_path=journal_path
        )
    )
    if guard is not None:
        manifest.record_serve(_serve_summary(engine, dlq_path, None))
        if dlq_path and dlq_path.exists():
            manifest.add_output(dlq_path)
    manifest.counts = {
        "events": outcome.n_events,
        "days": outcome.n_days,
        "actions": outcome.n_actions,
        "diverted": guard.stats.dead_lettered if guard else 0,
        "duplicates": guard.stats.duplicates_dropped if guard else 0,
    }
    manifest.results["workers"] = workers
    manifest.results["report"] = report.to_dict()
    manifest_path = _finish_obs(
        args,
        manifest,
        tracer,
        metrics_registry,
        out_dir / "fleet_run_manifest.json",
    )
    if slo_report is not None:
        bad = sum(1 for r in slo_report.objectives if r.state != "ok")
        print(
            f"fleet run: slo {slo_report.state} "
            f"({len(slo_report.objectives)} objective(s), {bad} violating)",
            file=sys.stderr,
        )
    state = outcome.state
    print(
        f"fleet run ok: {outcome.n_actions} action(s) over "
        f"{outcome.n_days} day(s) ({model_desc}, policy {policy.kind}) — "
        f"{state.spares_used} spare(s), cost {state.cost_total:.1f}, "
        f"caught {report.caught}/{report.n_failures} failure(s)"
    )
    print(f"audit journal: {journal_path} (chain {outcome.chain[:12]}…)")
    if manifest_path:
        print(f"manifest: {manifest_path}")
    return 0


def _cmd_fleet_decide(args: argparse.Namespace) -> int:
    policy = _fleet_policy_arg(args.policy)
    try:
        health = FleetHealth.restore(args.health)
    except HealthError as exc:
        raise CLIError(str(exc)) from None
    state = FleetState()
    if args.journal:
        state = replay_journal(args.journal, state)
    day = args.day if args.day is not None else health.watermark
    view = health.view(day)
    actions = policy.decide(view, state, day)
    if args.json:
        for action in actions:
            print(json.dumps(action.to_dict(), sort_keys=True))
    else:
        print(
            f"fleet decide: day {day}, {len(view)} drive(s) tracked, "
            f"{len(actions)} action(s) proposed (policy {policy.kind})"
        )
        for action in actions:
            print(
                f"  {action.action:<10} drive {action.drive_id:>6} "
                f"risk {action.risk:.4f} cost {action.cost:>7.1f}  "
                f"{action.reason}"
            )
    return 0


def _cmd_fleet_audit(args: argparse.Namespace) -> int:
    if args.verify:
        # Exit contract: 0 verified, 1 integrity problems found, 2 the
        # journal is missing/unreadable (AuditError -> CLIError path).
        report = verify_journal(args.journal)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        elif report.ok:
            print(
                f"fleet audit ok: {report.n_entries} entr"
                f"{'y' if report.n_entries == 1 else 'ies'} verified "
                f"(chain intact, replay legal); state digest "
                f"{report.state.digest()[:12]}…"
            )
        else:
            print(
                f"fleet audit FAILED: {len(report.problems)} problem(s) "
                f"in {report.n_entries} entries"
            )
            for problem in report.problems:
                print(f"  {problem}")
        return 0 if report.ok else 1
    entries = read_journal(args.journal)
    if args.last is not None:
        shown = entries[-args.last:]
    else:
        shown = entries
    summary = journal_summary(entries)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    by_action = ", ".join(
        f"{k}={v}" for k, v in summary["by_action"].items()
    ) or "none"
    print(
        f"fleet audit: {summary['n_entries']} entr"
        f"{'y' if summary['n_entries'] == 1 else 'ies'}, "
        f"{summary['drives_touched']} drive(s), days "
        f"{summary['first_day']}..{summary['last_day']}, "
        f"cost {summary['cost_total']:.1f}"
    )
    print(f"  actions: {by_action}; reverts: {summary['reverts']}")
    for entry in shown:
        ref = f" ref={entry.ref}" if entry.ref is not None else ""
        print(
            f"  [{entry.seq:>5}] day {entry.day:>5} {entry.kind:<6} "
            f"{entry.action:<10} drive {entry.drive_id:>6} "
            f"{entry.prev_status}->{entry.new_status} "
            f"risk {entry.risk:.4f} cost {entry.cost:>7.1f}{ref}"
        )
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    trace_dir = _require_trace_dir(Path(args.trace))
    classes = [c.strip() for c in args.faults.split(",") if c.strip()]
    unknown = [c for c in classes if c not in FAULT_CLASSES]
    if unknown:
        raise CLIError(
            f"unknown fault class(es) {', '.join(unknown)}; "
            f"choose from {', '.join(FAULT_CLASSES)}"
        )
    rates = {c: args.rate for c in classes} if args.rate is not None else None
    injector = FaultInjector(seed=args.seed)
    result = injector.corrupt_trace(trace_dir, Path(args.out), classes, rates)
    print(result.summary())
    print(f"Wrote corrupted trace to {args.out}")
    return 0


def _load_manifest_or_die(path: str) -> dict:
    try:
        return load_manifest(path)
    except ManifestError as exc:
        raise CLIError(str(exc)) from None


def _cmd_obs_show(args: argparse.Namespace) -> int:
    data = _load_manifest_or_die(args.manifest)
    errors = validate_manifest(data)
    print(render_manifest(data))
    if errors:
        print("\nSchema violations:", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    a = _load_manifest_or_die(args.a)
    b = _load_manifest_or_die(args.b)
    diff = diff_manifests(a, b, time_regression=args.time_regression)
    print(diff.render())
    return 0 if diff.ok else 1


def _format_event(record: dict) -> str:
    envelope = {"seq", "ts", "level", "kind", "msg", "span"}
    extras = " ".join(
        f"{k}={record[k]}" for k in sorted(record) if k not in envelope
    )
    msg = record.get("msg") or ""
    span = record.get("span")
    parts = [
        f"#{record.get('seq', '?'):>5}",
        f"{record.get('level', '?'):<5}",
        str(record.get("kind", "?")),
    ]
    if span is not None:
        parts.append(f"[span {span}]")
    if msg:
        parts.append(str(msg))
    if extras:
        parts.append(extras)
    return " ".join(parts)


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    try:
        events = obs_eventlog.load_events(
            args.eventlog, min_level=args.level, kind_prefix=args.kind
        )
    except FileNotFoundError:
        raise CLIError(f"event log {args.eventlog} does not exist") from None
    except (OSError, ValueError) as exc:
        raise CLIError(str(exc)) from None
    if args.last:
        events = events[-args.last :]
    for record in events:
        print(_format_event(record))
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    try:
        spec = obs_slo.load_slo_spec(args.spec)
    except FileNotFoundError:
        raise CLIError(f"SLO spec {args.spec} does not exist") from None
    except (OSError, ValueError) as exc:
        raise CLIError(f"bad SLO spec: {exc}") from None
    try:
        windows = obs_timeline.load_timeline_jsonl(args.timeline)
    except FileNotFoundError:
        raise CLIError(
            f"timeline {args.timeline} does not exist (serve replay/run "
            "export it via --timeline-out)"
        ) from None
    except (OSError, ValueError) as exc:
        raise CLIError(str(exc)) from None
    report = obs_slo.evaluate_slos(spec, windows)
    print(
        f"slo {report.state}: {len(report.objectives)} objective(s) over "
        f"{len(windows)} window(s)"
    )
    for r in report.objectives:
        last = "n/a" if r.last_value is None else f"{r.last_value:g}"
        print(
            f"  {r.state:<7s}{r.name}: {r.metric} {r.op} {r.threshold:g} "
            f"— {r.violations}/{r.windows_evaluated} window(s) violating, "
            f"burn short {r.short_fraction:.0%} / long {r.long_fraction:.0%}, "
            f"last {last}"
        )
    # Exit contract: 0 ok / 1 warn / 2 breach — `obs slo` is the CI gate.
    return report.exit_code


def _cmd_obs_bench_diff(args: argparse.Namespace) -> int:
    payloads = []
    for path in (args.a, args.b):
        try:
            body = json.loads(Path(path).read_text())
        except FileNotFoundError:
            raise CLIError(f"bench file {path} does not exist") from None
        except (OSError, ValueError) as exc:
            raise CLIError(f"bench file {path} is unreadable: {exc}") from None
        if not isinstance(body, dict) or "events_per_second" not in body:
            raise CLIError(
                f"bench file {path} is not a `serve bench --json-out` payload"
            )
        payloads.append(body)
    diff = diff_bench(payloads[0], payloads[1], max_regression=args.max_regression)
    print(diff.render())
    return 0 if diff.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-ssd",
        description="SSD failure study reproduction: simulate fleets, "
        "reproduce the paper's analyses, train and run failure predictors.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    policy_kwargs = dict(
        choices=("off", "strict", "repair", "quarantine"),
        default="off",
        help="telemetry repair policy applied at load time (default: off)",
    )

    p_sim = sub.add_parser("simulate", help="simulate a fleet and write NPZ files")
    p_sim.add_argument("--out", required=True, help="output directory")
    p_sim.add_argument("--drives", type=int, default=200, help="drives per model")
    p_sim.add_argument("--days", type=int, default=1460, help="trace horizon (days)")
    p_sim.add_argument("--deploy-spread", type=int, default=700)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--resume",
        action="store_true",
        help="continue from the checkpoints of a killed run with the same "
        "parameters (the result is identical to an uninterrupted run)",
    )
    p_sim.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        metavar="DRIVES",
        help="drives per checkpointed chunk (default: 64)",
    )
    add_execution_args(p_sim)
    p_sim.add_argument("--verbose", action="store_true", help="progress lines")
    p_sim.add_argument(
        "--quiet",
        action="store_true",
        help="print only the final one-line summary",
    )
    add_obs_args(p_sim, "--trace")
    p_sim.set_defaults(func=_cmd_simulate)

    p_pack = sub.add_parser(
        "pack",
        help="pack records.npz into a mmap columnar store (records.cst)",
    )
    p_pack.add_argument("--trace", required=True, help="trace directory")
    p_pack.set_defaults(func=_cmd_pack)

    p_bench = sub.add_parser("bench", help="substrate performance benchmarks")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bsim = bench_sub.add_parser(
        "sim", help="fleet-simulation throughput (drive-day events/s)"
    )
    p_bsim.add_argument("--drives", type=int, default=60, help="drives per model")
    p_bsim.add_argument("--days", type=int, default=730, help="trace horizon")
    p_bsim.add_argument("--seed", type=int, default=3)
    p_bsim.add_argument(
        "--warmups",
        type=int,
        default=1,
        metavar="N",
        help="untimed warm runs before the measured one (default: 1)",
    )
    p_bsim.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="write the bench numbers as JSON (CI artifact)",
    )
    add_execution_args(p_bsim)
    p_bsim.set_defaults(func=_cmd_bench_sim)

    p_rep = sub.add_parser("report", help="characterization report of a trace")
    p_rep.add_argument("--trace", required=True, help="trace directory")
    p_rep.add_argument("--policy", **policy_kwargs)
    p_rep.set_defaults(func=_cmd_report)

    p_aud = sub.add_parser("audit", help="check the paper's Observations 1-13")
    p_aud.add_argument("--trace", required=True)
    p_aud.add_argument("--ml", action="store_true", help="include Obs 12-13 (slow)")
    p_aud.add_argument(
        "--deep",
        action="store_true",
        help="also run the telemetry schema/invariant validator",
    )
    p_aud.add_argument(
        "--max-gap-days",
        type=int,
        default=None,
        metavar="N",
        help="with --deep, also flag per-drive reporting gaps longer than N days",
    )
    p_aud.add_argument("--seed", type=int, default=0)
    p_aud.set_defaults(func=_cmd_audit)

    p_inj = sub.add_parser(
        "inject", help="write a fault-injected copy of a trace (robustness drills)"
    )
    p_inj.add_argument("--trace", required=True, help="clean trace directory")
    p_inj.add_argument("--out", required=True, help="corrupted output directory")
    p_inj.add_argument(
        "--faults",
        default="missing_days,duplicate_rows,value_spikes",
        help=f"comma-separated fault classes from: {', '.join(FAULT_CLASSES)}",
    )
    p_inj.add_argument(
        "--rate",
        type=float,
        default=None,
        help="override the per-class default rates "
        f"({', '.join(f'{k}={v}' for k, v in DEFAULT_RATES.items())})",
    )
    p_inj.add_argument("--seed", type=int, default=0)
    p_inj.set_defaults(func=_cmd_inject)

    p_tr = sub.add_parser("train", help="train and save a failure predictor")
    p_tr.add_argument("--trace", required=True)
    p_tr.add_argument("--model", required=True, help="output pickle path")
    p_tr.add_argument("--lookahead", type=int, default=3)
    p_tr.add_argument("--age-partitioned", action="store_true")
    p_tr.add_argument("--cv", type=int, default=0, help="also report k-fold AUC")
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument("--policy", **policy_kwargs)
    add_execution_args(p_tr)
    add_obs_args(p_tr)
    p_tr.set_defaults(func=_cmd_train)

    p_sc = sub.add_parser("score", help="rank a fleet by failure risk")
    p_sc.add_argument("--trace", required=True)
    p_sc.add_argument("--model", required=True, help="trained model pickle")
    p_sc.add_argument("--top", type=int, default=10)
    p_sc.add_argument("--threshold", type=float, default=None)
    p_sc.add_argument("--policy", **policy_kwargs)
    add_execution_args(p_sc)
    add_obs_args(p_sc)
    p_sc.set_defaults(func=_cmd_score)

    p_srv = sub.add_parser(
        "serve",
        help="online scoring service (publish, replay, bench, run, heal)",
    )
    srv_sub = p_srv.add_subparsers(dest="serve_command", required=True)

    p_pub = srv_sub.add_parser(
        "publish", help="version a trained model into a registry"
    )
    p_pub.add_argument("--model", required=True, help="trained model pickle")
    p_pub.add_argument("--registry", required=True, help="registry directory")
    p_pub.add_argument(
        "--activate",
        action="store_true",
        help="also activate the fresh version (schema-hash checked)",
    )
    p_pub.add_argument(
        "--training-manifest",
        default=None,
        metavar="PATH",
        help="the train run's manifest; its sha256 ties the served model "
        "back to the exact training run",
    )
    add_obs_args(p_pub)
    p_pub.set_defaults(func=_cmd_serve_publish)

    p_rpl = srv_sub.add_parser(
        "replay",
        help="stream a trace through the online engine and verify the "
        "scores match the offline pipeline bit-for-bit (exit 1 on "
        "divergence)",
    )
    p_rpl.add_argument("--trace", required=True, help="trace directory")
    _add_model_source(p_rpl)
    p_rpl.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the online scores as JSONL",
    )
    p_rpl.add_argument(
        "--chunk-rows",
        type=int,
        default=4096,
        metavar="N",
        help="streaming chunk size (scores are identical for any value)",
    )
    p_rpl.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="persist the feature store here every --snapshot-every events "
        "(and at stream end)",
    )
    p_rpl.add_argument(
        "--snapshot-every",
        type=int,
        default=100_000,
        metavar="EVENTS",
        help="snapshot cadence when --snapshot is given (default: 100000)",
    )
    p_rpl.add_argument(
        "--snapshot-keep",
        type=int,
        default=None,
        metavar="K",
        help="rotate snapshots as numbered generations and keep the "
        "newest K; older generations are pruned only after the new one "
        "is durable (default: a single in-place snapshot file)",
    )
    p_rpl.add_argument(
        "--restore",
        default=None,
        metavar="PATH",
        help="restore the feature store from a snapshot and resume the "
        "replay after the events it already absorbed",
    )
    p_rpl.add_argument(
        "--dlq",
        default=None,
        metavar="PATH",
        help="divert bad events to this dead-letter JSONL instead of "
        "failing (enables the admission guard)",
    )
    p_rpl.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="journal accepted events to this JSONL (input for "
        "`serve heal`; enables the admission guard)",
    )
    p_rpl.add_argument(
        "--no-parity",
        action="store_true",
        help="skip the offline-parity gate (parity is also skipped "
        "automatically under telemetry chaos or when events diverted)",
    )
    add_execution_args(p_rpl)
    add_obs_args(p_rpl)
    add_telemetry_args(p_rpl)
    p_rpl.set_defaults(func=_cmd_serve_replay)

    p_shd = srv_sub.add_parser(
        "shard",
        help="replay a trace through N supervised scorer shards "
        "(partitioned by drive-ID hash) and verify the merged scores "
        "match the offline pipeline bit-for-bit; --reshard-from "
        "rebalances an existing plane through its journals",
    )
    p_shd.add_argument(
        "--trace",
        default=None,
        help="trace directory (omit only with --reshard-from)",
    )
    _add_model_source(p_shd)
    p_shd.add_argument(
        "--shards",
        type=int,
        required=True,
        metavar="N",
        help="scorer shard count (scores are byte-identical for any N)",
    )
    p_shd.add_argument(
        "--plane",
        required=True,
        metavar="DIR",
        help="plane directory: per-shard checkpoints, journals, DLQs, "
        "and status heartbeats (read by `serve status --sharded`)",
    )
    p_shd.add_argument(
        "--chunk-rows",
        type=int,
        default=4096,
        metavar="N",
        help="streaming chunk size (scores are identical for any value)",
    )
    p_shd.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="EVENTS",
        help="per-shard checkpoint cadence in accepted events (default: "
        "a single checkpoint at stream end); a killed shard restores "
        "its newest checkpoint and replays its journal tail",
    )
    p_shd.add_argument(
        "--checkpoint-keep",
        type=int,
        default=2,
        metavar="K",
        help="rotated checkpoint generations to keep per shard "
        "(default: 2; pruned only after the newer one is durable)",
    )
    p_shd.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the merged scores as JSONL (byte-comparable against "
        "`serve replay --out`)",
    )
    p_shd.add_argument(
        "--reshard-from",
        default=None,
        metavar="PLANE",
        help="rebalance this existing plane's journaled events onto "
        "--shards new shards instead of replaying --trace; the merged "
        "scores must match the source plane bit-for-bit",
    )
    p_shd.add_argument(
        "--no-parity",
        action="store_true",
        help="skip the byte-identity gate (also skipped automatically "
        "when events were diverted or deduplicated)",
    )
    add_execution_args(p_shd)
    add_obs_args(p_shd)
    p_shd.set_defaults(func=_cmd_serve_shard)

    p_bch = srv_sub.add_parser(
        "bench",
        help="ingest+score throughput and latency of the serving path "
        "on a simulated fleet",
    )
    p_bch.add_argument("--drives", type=int, default=30, help="drives per model")
    p_bch.add_argument("--days", type=int, default=365, help="trace horizon")
    p_bch.add_argument("--seed", type=int, default=0)
    p_bch.add_argument(
        "--chunk-rows",
        type=int,
        default=8192,
        metavar="N",
        help="replay chunk size for the throughput pass (default: 8192)",
    )
    p_bch.add_argument(
        "--latency-events",
        type=int,
        default=2000,
        metavar="N",
        help="single-event round trips for the latency quantiles",
    )
    p_bch.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="write the bench numbers as JSON (CI artifact)",
    )
    p_bch.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="bench the sharded plane at N scorer shards under the "
        "synthetic arrival process (default: 0 = single-engine bench)",
    )
    p_bch.add_argument(
        "--arrival",
        choices=[d.value for d in Distribution],
        default=Distribution.POISSON.value,
        help="arrival-size distribution for the load generator "
        "(default: poisson; only used with --shards)",
    )
    p_bch.add_argument(
        "--arrival-mean",
        type=float,
        default=4096.0,
        metavar="EVENTS",
        help="mean burst size in events (default: 4096)",
    )
    p_bch.add_argument(
        "--arrival-variance",
        type=float,
        default=None,
        metavar="V",
        help="burst-size variance (normal/log_normal arrivals only)",
    )
    p_bch.add_argument(
        "--arrival-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="load-generator seed (default: --seed)",
    )
    add_execution_args(p_bch)
    add_obs_args(p_bch)
    p_bch.set_defaults(func=_cmd_serve_bench)

    p_run = srv_sub.add_parser(
        "run",
        help="score a JSONL event stream: records on stdin, "
        "probabilities on stdout (no network dependency)",
    )
    _add_model_source(p_run)
    p_run.add_argument(
        "--batch-size",
        type=int,
        default=256,
        metavar="N",
        help="micro-batch flush size (default: 256)",
    )
    p_run.add_argument(
        "--max-wait",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="max time the oldest pending request waits before a flush "
        "(default: 0.005; 0 disables batching)",
    )
    p_run.add_argument(
        "--restore",
        default=None,
        metavar="PATH",
        help="start from a feature-store snapshot instead of empty state",
    )
    p_run.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="persist the feature store here when the stream ends",
    )
    p_run.add_argument(
        "--dlq",
        default=None,
        metavar="PATH",
        help="divert malformed/late/conflicting events to this "
        "dead-letter JSONL (replayable via `serve heal`)",
    )
    p_run.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="journal accepted events to this JSONL (input for "
        "`serve heal`)",
    )
    p_run.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="bound the submit queue at N pending requests "
        "(default: unbounded)",
    )
    p_run.add_argument(
        "--overflow",
        choices=("block", "shed"),
        default="block",
        help="at --max-queue: 'block' scores the pending batch "
        "synchronously, 'shed' dead-letters the incoming event "
        "(default: block)",
    )
    p_run.add_argument(
        "--max-stale-days",
        type=int,
        default=None,
        metavar="N",
        help="tag scores whose calendar day lags the fleet watermark "
        "by more than N days as stale (default: no tagging)",
    )
    p_run.add_argument(
        "--fault-threshold",
        type=int,
        default=8,
        metavar="N",
        help="consecutive diverted events that trip the health state "
        "ready -> degraded (default: 8)",
    )
    add_obs_args(p_run)
    add_telemetry_args(p_run)
    p_run.set_defaults(func=_cmd_serve_run)

    p_heal = srv_sub.add_parser(
        "heal",
        help="rebuild a byte-identical feature store and score stream "
        "from an accepted-event journal plus a dead-letter queue",
    )
    _add_model_source(p_heal)
    p_heal.add_argument(
        "--journal",
        required=True,
        metavar="PATH",
        help="accepted-event journal from a guarded run/replay",
    )
    p_heal.add_argument(
        "--dlq",
        default=None,
        metavar="PATH",
        help="dead-letter queue to heal from (omit to rebuild from the "
        "journal alone)",
    )
    p_heal.add_argument(
        "--refetch",
        default=None,
        metavar="TRACE_DIR",
        help="trace directory treated as the upstream source of truth "
        "for schema/conflict faults (their payloads are re-read by "
        "drive-day key)",
    )
    p_heal.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the healed scores as JSONL",
    )
    p_heal.add_argument(
        "--expect",
        default=None,
        metavar="PATH",
        help="compare --out byte-for-byte against this fault-free score "
        "file; exit 1 on mismatch (the heal-to-bit-identity gate)",
    )
    p_heal.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="persist the healed feature store here",
    )
    add_obs_args(p_heal)
    p_heal.set_defaults(func=_cmd_serve_heal)

    p_sts = srv_sub.add_parser(
        "status",
        help="read a status.json heartbeat; exit 0 healthy / 1 degraded "
        "or SLO warning / 2 SLO breach",
    )
    p_sts.add_argument(
        "status_file",
        help="status.json written by `serve replay/run --status-out`, or "
        "a plane directory with --sharded",
    )
    p_sts.add_argument(
        "--sharded",
        action="store_true",
        help="treat the argument as a `serve shard --plane` directory and "
        "roll every shard's status.json into one verdict (worst shard "
        "wins the exit code)",
    )
    p_sts.add_argument(
        "--json",
        action="store_true",
        help="print the raw heartbeat JSON instead of the summary",
    )
    p_sts.set_defaults(func=_cmd_serve_status)

    p_flt = sub.add_parser(
        "fleet",
        help="closed-loop fleet autopilot: score, decide, act, audit",
    )
    flt_sub = p_flt.add_subparsers(dest="fleet_command", required=True)

    p_fwi = flt_sub.add_parser(
        "whatif",
        help="replay one or more policies against a trace and report "
        "cost/availability deltas before activation",
    )
    p_fwi.add_argument(
        "--trace", required=True, help="trace directory (simulate output)"
    )
    _add_model_source(p_fwi)
    p_fwi.add_argument(
        "--policy",
        action="append",
        required=True,
        metavar="SPEC",
        help="policy to evaluate: a kind name (threshold/topk), inline "
        "JSON, or a spec file; repeat to compare policies on the same "
        "scored stream",
    )
    p_fwi.add_argument(
        "--journal-out",
        default=None,
        metavar="PATH",
        help="write the (byte-deterministic) audit journal here "
        "(single --policy only)",
    )
    p_fwi.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="write the full cost reports as JSON",
    )
    p_fwi.add_argument(
        "--at-risk-window",
        type=int,
        default=14,
        metavar="DAYS",
        help="pre-failure exposure window for drive-days-at-risk "
        "(default: 14)",
    )
    add_fleet_risk_args(p_fwi)
    add_execution_args(p_fwi)
    add_obs_args(p_fwi)
    p_fwi.set_defaults(func=_cmd_fleet_whatif)

    p_frn = flt_sub.add_parser(
        "run",
        help="run a policy live over a trace through the serving plane; "
        "writes an audit journal, health snapshot, and state.json "
        "(REPRO_CHAOS perturbs telemetry; the guard decides admission)",
    )
    p_frn.add_argument(
        "--trace", required=True, help="trace directory (simulate output)"
    )
    _add_model_source(p_frn)
    p_frn.add_argument(
        "--policy",
        required=True,
        metavar="SPEC",
        help="policy to run: a kind name (threshold/topk), inline JSON, "
        "or a spec file",
    )
    p_frn.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="output directory for audit.jsonl, health.npz, state.json",
    )
    p_frn.add_argument(
        "--chunk-rows",
        type=int,
        default=4096,
        metavar="N",
        help="rows per replay chunk (default: 4096; never changes "
        "decisions)",
    )
    p_frn.add_argument(
        "--at-risk-window",
        type=int,
        default=14,
        metavar="DAYS",
        help="pre-failure exposure window for drive-days-at-risk "
        "(default: 14)",
    )
    add_fleet_risk_args(p_frn)
    add_execution_args(p_frn)
    add_telemetry_args(p_frn)
    add_obs_args(p_frn)
    p_frn.set_defaults(func=_cmd_fleet_run)

    p_fdc = flt_sub.add_parser(
        "decide",
        help="propose (without applying) one day's actions from a "
        "health snapshot",
    )
    p_fdc.add_argument(
        "--health",
        required=True,
        metavar="PATH",
        help="health.npz snapshot from `fleet run`",
    )
    p_fdc.add_argument(
        "--policy",
        required=True,
        metavar="SPEC",
        help="policy to consult: a kind name, inline JSON, or a spec file",
    )
    p_fdc.add_argument(
        "--day",
        type=int,
        default=None,
        metavar="DAY",
        help="decision day (default: the snapshot's watermark)",
    )
    p_fdc.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="replay this audit journal first so proposals respect "
        "already-applied actions",
    )
    p_fdc.add_argument(
        "--json",
        action="store_true",
        help="print proposed actions as JSON lines",
    )
    p_fdc.set_defaults(func=_cmd_fleet_decide)

    p_fad = flt_sub.add_parser(
        "audit",
        help="inspect or verify an audit journal; with --verify exit "
        "0 intact / 1 tampered-or-illegal / 2 unreadable",
    )
    p_fad.add_argument(
        "journal", help="audit.jsonl written by `fleet run`/`fleet whatif`"
    )
    p_fad.add_argument(
        "--verify",
        action="store_true",
        help="recompute the hash chain and replay every entry; the CI "
        "gate for journal integrity",
    )
    p_fad.add_argument(
        "--json",
        action="store_true",
        help="print the summary/verdict as JSON",
    )
    p_fad.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="show only the last N entries",
    )
    p_fad.set_defaults(func=_cmd_fleet_audit)

    p_obs = sub.add_parser(
        "obs", help="inspect and compare run manifests (observability)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_show = obs_sub.add_parser(
        "show", help="human-readable summary of one run manifest"
    )
    p_show.add_argument("manifest", help="path to a *manifest.json")
    p_show.set_defaults(func=_cmd_obs_show)
    p_diff = obs_sub.add_parser(
        "diff",
        help="compare two manifests; exit 1 when the runs are not comparable",
    )
    p_diff.add_argument("a", help="baseline manifest")
    p_diff.add_argument("b", help="candidate manifest")
    p_diff.add_argument(
        "--time-regression",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="stage-time slowdown reported as a warning (default: 0.25)",
    )
    p_diff.set_defaults(func=_cmd_obs_diff)
    p_tail = obs_sub.add_parser(
        "tail",
        help="print a structured event log (guard diversions, health "
        "transitions, heartbeats)",
    )
    p_tail.add_argument(
        "eventlog", help="event-log JSONL from `serve ... --eventlog`"
    )
    p_tail.add_argument(
        "--level",
        choices=tuple(sorted(obs_eventlog.LEVELS, key=obs_eventlog.LEVELS.get)),
        default="debug",
        help="minimum level to show (default: debug)",
    )
    p_tail.add_argument(
        "--kind",
        default=None,
        metavar="PREFIX",
        help="only events whose kind starts with PREFIX "
        "(e.g. serve.health)",
    )
    p_tail.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="show only the last N matching events",
    )
    p_tail.set_defaults(func=_cmd_obs_tail)
    p_slo = obs_sub.add_parser(
        "slo",
        help="evaluate an SLO spec over an exported timeline; exit "
        "0 ok / 1 warn / 2 breach (CI gate)",
    )
    p_slo.add_argument(
        "--spec",
        required=True,
        metavar="PATH",
        help="JSON spec with an 'objectives' list",
    )
    p_slo.add_argument(
        "--timeline",
        required=True,
        metavar="PATH",
        help="timeline JSONL from `serve ... --timeline-out`",
    )
    p_slo.set_defaults(func=_cmd_obs_slo)
    p_bdiff = obs_sub.add_parser(
        "bench-diff",
        help="compare two `serve bench --json-out` payloads; exit 1 on "
        "regression past the threshold",
    )
    p_bdiff.add_argument("a", help="baseline BENCH json")
    p_bdiff.add_argument("b", help="candidate BENCH json")
    p_bdiff.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        metavar="FRAC",
        help="allowed fractional regression per metric (default: 0.2)",
    )
    p_bdiff.set_defaults(func=_cmd_obs_bench_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # Every command runs with SIGTERM/SIGINT mapped to a drainable
        # exception: pooled stages drain in-flight tasks and checkpoint
        # completed chunks before the KeyboardInterrupt handler below
        # turns the unwind into exit 130.
        with graceful_shutdown():
            return int(args.func(args))
    except (
        CLIError,
        TraceIntegrityError,
        ManifestError,
        FeatureStoreError,
        RegistryError,
        DeadLetterError,
        ShardError,
        AuditError,
        FleetActionError,
        HealthError,
        PolicyError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except WorkerConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except WorkerCrash as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.worker_traceback:
            print(exc.worker_traceback, file=sys.stderr)
        return 2
    except TraceValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.report is not None:
            print(exc.report.render(), file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: missing file: {exc.filename or exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt as exc:
        name = exc.signal_name if isinstance(exc, ShutdownRequested) else "SIGINT"
        print(
            f"interrupted ({name}): in-flight tasks drained, completed "
            "chunks checkpointed; rerun with --resume to continue",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): exit quietly.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
