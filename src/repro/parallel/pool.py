"""Deterministic process-pool execution.

The paper's two hot paths — fleet simulation and CV/grid-search — are
embarrassingly parallel *and* seeded per unit of work (per-drive RNG
streams, per-fold downsampling streams), so worker scheduling can never
influence results.  This module supplies the one execution primitive
both paths share:

- :func:`iter_tasks` / :func:`run_tasks` — map a **module-level**
  function over a task list with ``N`` worker processes, yielding
  results strictly in task order no matter which worker finishes first;
- serial fallback — ``workers=1``, a single task, an unpicklable
  payload, or a pool that cannot start all run the exact same code path
  in-process, so parallelism is an optimization, never a requirement;
- observability — each task runs under :func:`~.obsmerge.capture_obs`
  and its span/metric delta is merged into the parent's collectors as
  the result is consumed (in task order, so merges are deterministic);
- clean failure — a task that raises (or a worker that dies outright)
  surfaces as :class:`WorkerCrash` carrying the worker-side traceback;
  the CLI maps it to exit code 2 instead of hanging.

Worker counts resolve as: explicit argument > ``REPRO_WORKERS`` env var
> 1 (serial).  Inside a pool worker the resolution is pinned to 1, so
nested parallel calls (e.g. a grid-search worker running CV) cannot
fork-bomb the machine.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

import numpy as np

from ..obs import metrics, tracing
from .obsmerge import ObsDelta, capture_obs, merge_obs

__all__ = [
    "ENV_WORKERS",
    "WorkerCrash",
    "WorkerConfigError",
    "resolve_workers",
    "shard_ranges",
    "iter_tasks",
    "run_tasks",
]

#: Environment variable consulted when no explicit worker count is given.
ENV_WORKERS = "REPRO_WORKERS"

#: Preferred start method: fork is cheap and inherits read-only state;
#: spawn is the portable fallback.
_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)

#: Set in pool children: nested resolve_workers() calls stay serial.
_in_worker = False


class WorkerCrash(RuntimeError):
    """A pool task failed; carries the worker-side traceback when known."""

    def __init__(
        self,
        message: str,
        task_index: int | None = None,
        worker_traceback: str | None = None,
    ):
        super().__init__(message)
        self.task_index = task_index
        self.worker_traceback = worker_traceback


class WorkerConfigError(ValueError):
    """Bad worker configuration (``REPRO_WORKERS`` or explicit count).

    Subclasses :class:`ValueError` for backward compatibility; the CLI
    maps it to a one-line message and exit code 2 instead of a traceback.
    """


def resolve_workers(workers: int | None) -> int:
    """Resolve a worker count: explicit > ``REPRO_WORKERS`` > 1 (serial).

    Pool children always resolve to 1, whatever the environment says —
    nested fan-out would oversubscribe the machine without speeding
    anything up.
    """
    if _in_worker:
        return 1
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise WorkerConfigError(
                f"{ENV_WORKERS} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise WorkerConfigError(f"workers must be >= 1, got {workers}")
    return workers


def shard_ranges(
    n: int, workers: int, per_worker: int = 4
) -> list[tuple[int, int]]:
    """Split ``range(n)`` into contiguous near-equal ``(lo, hi)`` shards.

    A few shards per worker (not one) so an expensive shard cannot
    straggle the whole pool; shard boundaries depend only on ``n`` and
    the shard count, never on timing.
    """
    if n <= 0:
        return []
    n_shards = max(1, min(n, workers * per_worker))
    bounds = np.linspace(0, n, n_shards + 1).astype(np.int64)
    return [
        (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


def _mark_worker(
    extra_init: Callable[..., None] | None = None, extra_args: tuple = ()
) -> None:
    """Pool-child initializer: pin nested parallelism to serial."""
    global _in_worker
    _in_worker = True
    os.environ[ENV_WORKERS] = "1"
    if extra_init is not None:
        extra_init(*extra_args)


def _call_task(payload: tuple) -> tuple:
    """Worker-side trampoline: run one task under private obs collectors.

    Returns ``("ok", result, None, delta)`` or, when the task raises,
    ``("error", summary, traceback_text, delta)`` — exceptions travel as
    data so unpicklable exception types cannot poison the result queue.
    """
    fn, task, want_obs = payload
    with capture_obs(enabled=want_obs) as delta:
        try:
            result = fn(task)
        except Exception as exc:
            return (
                "error",
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
                delta,
            )
    return ("ok", result, None, delta)


def _iter_serial(
    fn: Callable[[Any], Any], tasks: list[Any]
) -> Iterator[tuple[int, Any]]:
    for i, task in enumerate(tasks):
        yield i, fn(task)


def iter_tasks(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    workers: int | None = None,
    label: str = "repro.parallel",
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    policy: Any | None = None,
    supervision: Any | None = None,
) -> Iterator[tuple[int, Any]]:
    """Map ``fn`` over ``tasks``, yielding ``(index, result)`` in order.

    Parameters
    ----------
    fn:
        Module-level function of one argument (must be picklable for the
        parallel path; the serial fallback takes anything callable).
    tasks:
        Task payloads, one per call.
    workers:
        Worker processes; ``None`` resolves via :func:`resolve_workers`.
        Results are identical for every value — determinism comes from
        per-task seeds, not scheduling.
    label:
        Stage prefix used in error messages.
    initializer, initargs:
        Optional per-worker setup (e.g. installing a large shared array
        once per process instead of once per task).  Also invoked
        in-process on the serial path, so ``fn`` can rely on it.
    policy, supervision:
        A :class:`repro.resilience.SupervisorPolicy` routes execution
        through the supervised pool (deadlines, retries, quarantine,
        circuit breaker); ``supervision`` optionally receives the
        :class:`~repro.resilience.SupervisionLog`.  ``None`` keeps the
        plain fail-fast pool below.
    """
    if policy is not None:
        # Lazy import: resilience sits above parallel in the layering.
        from ..resilience.supervisor import supervised_iter_tasks

        yield from supervised_iter_tasks(
            fn,
            tasks,
            workers=workers,
            policy=policy,
            label=label,
            initializer=initializer,
            initargs=initargs,
            supervision=supervision,
        )
        return
    tasks = list(tasks)
    if not tasks:
        return
    workers = min(resolve_workers(workers), len(tasks))
    if workers <= 1:
        if initializer is not None:
            initializer(*initargs)
        yield from _iter_serial(fn, tasks)
        return

    want_obs = tracing.current() is not None or metrics.current() is not None
    payloads = [(fn, task, want_obs) for task in tasks]
    try:
        pickle.dumps((payloads[0], initializer, initargs))
    except Exception:
        # Unpicklable work (e.g. a lambda model factory): stay serial.
        if initializer is not None:
            initializer(*initargs)
        yield from _iter_serial(fn, tasks)
        return

    ctx = multiprocessing.get_context(_START_METHOD)
    try:
        executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_mark_worker,
            initargs=(initializer, initargs),
        )
    except (OSError, ValueError):
        # No pool available (resource limits, sandboxes): stay serial.
        if initializer is not None:
            initializer(*initargs)
        yield from _iter_serial(fn, tasks)
        return
    try:
        futures = [executor.submit(_call_task, p) for p in payloads]
        for i, future in enumerate(futures):
            try:
                status, value, tb_text, delta = future.result()
            except BrokenProcessPool as exc:
                raise WorkerCrash(
                    f"{label}: worker process died while running task {i} "
                    "(killed or crashed hard); partial results discarded",
                    task_index=i,
                ) from exc
            except Exception as exc:
                raise WorkerCrash(
                    f"{label}: could not run task {i}: {exc}", task_index=i
                ) from exc
            if isinstance(delta, ObsDelta):
                merge_obs(delta)
            if status == "error":
                raise WorkerCrash(
                    f"{label}: task {i} failed in worker: {value}",
                    task_index=i,
                    worker_traceback=tb_text,
                )
            yield i, value
    except BaseException:
        # KeyboardInterrupt / GeneratorExit: shutdown(wait=False) alone
        # would leak live workers (and hang the interpreter on a wedged
        # one) — kill them outright before unwinding.
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.kill()
            except (OSError, AttributeError):  # pragma: no cover
                pass
        raise
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    workers: int | None = None,
    label: str = "repro.parallel",
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    policy: Any | None = None,
    supervision: Any | None = None,
) -> list[Any]:
    """Eager form of :func:`iter_tasks`: results as a list, task order."""
    return [
        result
        for _, result in iter_tasks(
            fn,
            tasks,
            workers=workers,
            label=label,
            initializer=initializer,
            initargs=initargs,
            policy=policy,
            supervision=supervision,
        )
    ]
