"""Deterministic parallel execution (``repro.parallel``).

Process-pool fan-out for the pipeline's embarrassingly parallel hot
paths — fleet simulation (one RNG stream per drive) and cross-validated
model selection (one downsampling stream per fold) — with three hard
guarantees:

1. **Bit-identical results for any worker count.**  Every unit of work
   owns a pre-spawned seed stream, so scheduling cannot leak into the
   output; ``workers=4`` produces byte-identical artifacts to serial.
2. **Serial fallback.**  ``workers=1`` (the default), unpicklable
   payloads, and unavailable pools all run the same code in-process.
3. **Observability survives fan-out.**  Workers capture spans/metrics
   locally and ship the delta back for merge into the parent collector
   (:mod:`~repro.parallel.obsmerge`), so run manifests and Prometheus
   exports stay complete under ``--workers > 1``.

See DESIGN.md §11 for the sharding/seed-stream scheme.
"""

from .obsmerge import ObsDelta, capture_obs, merge_obs
from .persistent import PersistentPool
from .pool import (
    ENV_WORKERS,
    WorkerConfigError,
    WorkerCrash,
    iter_tasks,
    resolve_workers,
    run_tasks,
    shard_ranges,
)

__all__ = [
    "ENV_WORKERS",
    "ObsDelta",
    "PersistentPool",
    "WorkerConfigError",
    "WorkerCrash",
    "capture_obs",
    "iter_tasks",
    "merge_obs",
    "resolve_workers",
    "run_tasks",
    "shard_ranges",
]
