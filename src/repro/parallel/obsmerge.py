"""Observability under fan-out: capture in workers, merge in the parent.

A pool worker runs with no access to the parent's span tracer or metrics
registry (they live in another process), so instrumented library code
would silently lose its telemetry under ``workers > 1``.  Instead, every
worker task executes inside :func:`capture_obs`, which activates a
*private* :class:`~repro.obs.tracing.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry` for the duration of the task
and serializes both into a picklable :class:`ObsDelta`.  The delta ships
back with the task result, and the parent folds it into its own active
collectors via :func:`merge_obs`:

- spans are re-homed with fresh ids, re-parented onto the span that is
  open on the consuming thread, and shifted onto the parent's timeline
  (the worker's clock epoch is meaningless here);
- counters and histograms are added, gauges take the worker's value.

The net effect: stage summaries, run manifests and Prometheus exports
look the same whether a run used 1 worker or 16 — only the timings (and
the shard-level span layout) reveal the fan-out.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..obs import metrics, timeline as obs_timeline, tracing

__all__ = ["ObsDelta", "capture_obs", "merge_obs"]


@dataclass
class ObsDelta:
    """Serialized observability state recorded by one worker task."""

    spans: list[dict[str, Any]] = field(default_factory=list)
    metrics: list[dict[str, Any]] = field(default_factory=list)
    timeline: dict[str, Any] | None = None
    elapsed: float = 0.0

    def __bool__(self) -> bool:
        return bool(self.spans or self.metrics or self.timeline)


@contextmanager
def capture_obs(enabled: bool = True) -> Iterator[ObsDelta]:
    """Run the body under private obs collectors; fill the yielded delta.

    With ``enabled=False`` the body runs untouched (the parent had no
    active collectors, so there is nothing worth shipping back) and the
    delta stays empty.
    """
    delta = ObsDelta()
    if not enabled:
        yield delta
        return
    tracer = tracing.Tracer()
    registry = metrics.MetricsRegistry()
    timeline = obs_timeline.Timeline(registry=registry)
    t0 = time.perf_counter()
    with (
        tracing.activate(tracer),
        metrics.activate(registry),
        obs_timeline.activate(timeline),
    ):
        yield delta
    delta.elapsed = time.perf_counter() - t0
    delta.spans = tracer.to_dicts()
    delta.metrics = registry.snapshot()
    tl_delta = timeline.delta()
    # Ship the timeline only when the task actually recorded events —
    # most worker tasks (simulate shards, predict shards) never do.
    if tl_delta["events_total"] or tl_delta["windows"]:
        delta.timeline = tl_delta


def merge_obs(
    delta: ObsDelta | None, extra_attrs: dict[str, Any] | None = None
) -> None:
    """Fold a worker's delta into the parent's active collectors.

    A no-op when the delta is empty or when no tracer/registry is active
    (observability off).  Absorbed spans are parented onto the innermost
    span open on the calling thread and placed on the parent timeline so
    that they *end* at merge time — the closest monotone approximation
    available without a shared clock.

    ``extra_attrs`` is stamped onto the delta's *root* spans (those whose
    parent is outside the batch) — the supervision layer uses it to mark
    retried tasks with their winning attempt number.
    """
    if not delta:
        return
    tracer = tracing.current()
    if tracer is not None and delta.spans:
        spans = delta.spans
        if extra_attrs:
            span_ids = {s.get("span_id") for s in spans}
            stamped = []
            for s in spans:
                if s.get("parent_id") not in span_ids:
                    s = dict(s)
                    s["attrs"] = {**s.get("attrs", {}), **extra_attrs}
                stamped.append(s)
            spans = stamped
        offset = max(tracer.now() - delta.elapsed, 0.0)
        tracer.absorb(
            spans, offset=offset, parent_id=tracer.current_parent_id()
        )
    registry = metrics.current()
    if registry is not None and delta.metrics:
        registry.merge_snapshot(delta.metrics)
    timeline = obs_timeline.current()
    if timeline is not None and delta.timeline:
        timeline.absorb(delta.timeline)
