"""A long-lived worker pool with install-once state.

:func:`repro.parallel.iter_tasks` builds a fresh process pool per call
and ships the initializer arguments every time.  That is the right
shape for one-shot stages (simulate, grid-search), but the serving
replay loop calls the scorer once per chunk — hundreds of calls per
replay — and re-pickling the model bundle and feature matrix into a new
pool each time dominates the fan-out win (the "remaining headroom" note
in ROADMAP's columnar item).

:class:`PersistentPool` keeps the workers warm: the initializer (e.g.
installing the trained forests) runs **once per worker process**, and
each subsequent :meth:`run` ships only the per-call task payloads (row
slices).  Everything else matches ``iter_tasks`` semantics:

- results come back strictly in task order;
- worker obs deltas are merged into the parent's collectors in task
  order (deterministic);
- the serial fallback (1 worker, unpicklable state, pool spawn failure,
  or a mid-run pool crash) runs the same task functions in-process, so
  output bytes never depend on whether the pool is alive.
"""

from __future__ import annotations

import pickle
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

import multiprocessing

from .obsmerge import ObsDelta, merge_obs
from .pool import (
    _START_METHOD,
    _call_task,
    _mark_worker,
    WorkerCrash,
    resolve_workers,
)
from ..obs import metrics, tracing

__all__ = ["PersistentPool"]


class PersistentPool:
    """Reusable fan-out executor; falls back to serial transparently.

    Parameters mirror the per-call knobs of ``iter_tasks``: a worker
    count, an optional per-worker ``initializer(*initargs)`` (run once
    per process, and once in-process before any serial fallback), and a
    ``label`` for error messages.  The pool is lazy — processes spawn on
    the first :meth:`run` — and must be :meth:`close`\\ d (or used as a
    context manager) to reap them.
    """

    def __init__(
        self,
        workers: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        label: str = "repro.parallel",
    ):
        self.workers = resolve_workers(workers)
        self._initializer = initializer
        self._initargs = initargs
        self._label = label
        self._executor: ProcessPoolExecutor | None = None
        self._serial_ready = False
        self._dead = False
        self._closed = False

    # ------------------------------------------------------------------ state
    @property
    def parallel(self) -> bool:
        """Whether :meth:`run` currently fans out to live workers."""
        return self._executor is not None and not self._dead

    def _install_serial(self) -> None:
        if not self._serial_ready:
            if self._initializer is not None:
                self._initializer(*self._initargs)
            self._serial_ready = True

    def _ensure_executor(self) -> ProcessPoolExecutor | None:
        if self._closed:
            raise WorkerCrash(f"{self._label}: pool used after close()")
        if self._dead or self.workers <= 1:
            return None
        if self._executor is not None:
            return self._executor
        try:
            pickle.dumps((self._initializer, self._initargs))
        except Exception:
            self._dead = True
            return None
        ctx = multiprocessing.get_context(_START_METHOD)
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_mark_worker,
                initargs=(self._initializer, self._initargs),
            )
        except (OSError, ValueError):
            self._dead = True
            return None
        return self._executor

    # ------------------------------------------------------------------ run
    def _run_serial(self, fn: Callable[[Any], Any], tasks: list) -> list:
        self._install_serial()
        return [fn(task) for task in tasks]

    def run(self, fn: Callable[[Any], Any], tasks: list) -> list:
        """Map ``fn`` over ``tasks``; results in task order.

        ``fn`` must be module-level (picklable) for the parallel path.
        A task that raises surfaces as :class:`WorkerCrash`; a pool that
        dies mid-run is torn down and the *whole* call re-runs serially
        — tasks are pure, so the retry cannot change bytes.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        executor = self._ensure_executor()
        if executor is None:
            return self._run_serial(fn, tasks)
        want_obs = (
            tracing.current() is not None or metrics.current() is not None
        )
        try:
            payloads = [(fn, task, want_obs) for task in tasks]
            pickle.dumps(payloads[0])
        except Exception:
            return self._run_serial(fn, tasks)
        try:
            futures = [executor.submit(_call_task, p) for p in payloads]
            out: list = []
            for i, future in enumerate(futures):
                status, value, tb_text, delta = future.result()
                if isinstance(delta, ObsDelta):
                    merge_obs(delta)
                if status == "error":
                    raise WorkerCrash(
                        f"{self._label}: task {i} failed in worker: {value}",
                        task_index=i,
                        worker_traceback=tb_text,
                    )
                out.append(value)
            return out
        except BrokenProcessPool:
            # A worker died under us (OOM killer, SIGKILL chaos).  The
            # pool is unusable; retire it and redo the call in-process.
            self._teardown()
            self._dead = True
            return self._run_serial(fn, tasks)

    # ------------------------------------------------------------------ lifecycle
    def _teardown(self) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.kill()
            except (OSError, AttributeError):  # pragma: no cover
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Reap the worker processes; the pool cannot be reused."""
        self._teardown()
        self._closed = True

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
