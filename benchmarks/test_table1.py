"""Benchmark: regenerate the paper's Table 1: per-model error-type incidence.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import table1


def test_table1(benchmark, char_trace):
    res = benchmark.pedantic(
        table1, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Table 1: per-model error-type incidence (simulated fleet) ---")
    print(res.render())
    assert 0.5 < res.proportions["correctable_error"]["MLC-A"] <= 1.0
