"""Benchmark: regenerate the paper's Table 8.

Random-forest prediction of each individual error type (plus bad-block
growth) with a 2-day lookahead, evaluated combined and per age group.
Error events are far more frequent than failures, so this uses a dedicated
smaller fleet and a lighter forest to keep wall-clock in minutes.
"""

import numpy as np
import pytest

from repro.analysis import table8
from repro.core.pipeline import ModelSpec
from repro.ml import RandomForestClassifier
from repro.simulator import FleetConfig, simulate_fleet


@pytest.fixture(scope="module")
def error_trace():
    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=200,
            horizon_days=1000,
            deploy_spread_days=600,
            seed=7,
        )
    )


def test_table8(benchmark, error_trace):
    spec = ModelSpec(
        "Random Forest (light)",
        lambda: RandomForestClassifier(
            n_estimators=60, max_depth=10, min_samples_leaf=2, random_state=0
        ),
        scale=False,
        log1p=False,
    )
    res = benchmark.pedantic(
        table8,
        args=(error_trace,),
        kwargs={"spec": spec, "lookahead": 2, "n_splits": 3, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print("--- Table 8: error-type prediction AUC, N=2 (simulated fleet) ---")
    print(res.render())
    # Paper shape: the frequent targets (UE, bad block) predict well.
    assert res.auc["uncorrectable_error"]["combined"] > 0.7
    assert res.auc["bad_block"]["combined"] > 0.6
    # Rare targets may be unpredictable at this fleet size (the paper
    # itself marks response errors as too rare per age group).
    finite = [
        v["combined"] for v in res.auc.values() if not np.isnan(v["combined"])
    ]
    assert len(finite) >= 5
