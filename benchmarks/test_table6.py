"""Benchmark: regenerate the paper's Table 6.

Cross-validated ROC AUC of all six classifiers for lookahead windows
N in {1, 2, 3, 7}, with the paper's protocol: drive-grouped 5-fold CV and
1:1 training downsampling.  This is the headline experiment; expect a few
minutes of wall-clock at benchmark fleet size.
"""

from repro.analysis import table6


def test_table6(benchmark, ml_trace):
    res = benchmark.pedantic(
        table6,
        args=(ml_trace,),
        kwargs={"lookaheads": (1, 2, 3, 7), "n_splits": 5, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print("--- Table 6: ROC AUC per model and lookahead (simulated fleet) ---")
    print(res.render())
    # Paper shape: the forest wins at N=1 and stays within noise of the
    # best model at every other lookahead; its accuracy decays with N.
    assert res.best_model(1) == "Random Forest"
    rf = res.auc_mean["Random Forest"]
    for n in (2, 3, 7):
        best = res.auc_mean[res.best_model(n)][n]
        assert rf[n] >= best - 0.015, (n, res.best_model(n))
    assert rf[1] > rf[7]
    assert rf[1] > 0.8
