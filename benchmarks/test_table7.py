"""Benchmark: regenerate the paper's Table 7.

Cross-model transfer: train the random forest on one drive model's data and
test on another (diagonal cells cross-validated), plus the pooled "All"
training column.
"""

import numpy as np

from repro.analysis import table7


def test_table7(benchmark, ml_trace):
    res = benchmark.pedantic(
        table7, args=(ml_trace,), kwargs={"n_splits": 5, "seed": 0},
        rounds=1, iterations=1,
    )
    print()
    print("--- Table 7: cross-model transfer AUC (simulated fleet) ---")
    print(res.render())
    assert np.isfinite(res.auc).all()
    # Paper shape: transfer works (off-diagonal AUCs degrade only mildly).
    diag = np.mean([res.auc[i, i] for i in range(3)])
    off = np.mean([res.auc[i, j] for i in range(3) for j in range(3) if i != j])
    assert off > diag - 0.15
    assert off > 0.7
