"""Benchmark: regenerate the paper's Figure 3: operational-period CDF with censoring.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import figure3


def test_figure03(benchmark, char_trace):
    res = benchmark.pedantic(
        figure3, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Figure 3: operational-period CDF with censoring (simulated fleet) ---")
    print(res.render())
    assert res.never_failing_fraction > 0.5
