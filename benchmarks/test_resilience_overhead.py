"""Supervision overhead: the watchdog + retry machinery must cost < 5%.

The resilience acceptance criterion (DESIGN.md §12) is that a clean
4-worker simulate pays less than 5% wall-clock for running under the
supervised pool (per-task deadlines armed, retry bookkeeping active,
chaos hooks consulted) relative to the legacy fail-fast pool on the same
worker count.  A clean run takes zero retries and zero timeouts, so any
overhead is pure supervision bookkeeping — pipe polling, deadline
arithmetic, and the per-task fault-plan lookup.
"""

from __future__ import annotations

import time

from repro.resilience import SupervisorPolicy
from repro.simulator import FleetConfig, simulate_fleet

#: Large enough that per-run wall clock dominates timer noise (~1s).
_CONFIG = FleetConfig(
    n_drives_per_model=40, horizon_days=365, deploy_spread_days=100, seed=11
)

_WORKERS = 4

#: Fractional overhead budget from ISSUE acceptance criteria.
_BUDGET = 0.05
#: Absolute slack so sub-second runs don't fail on scheduler jitter.
_EPSILON_SECONDS = 0.10

#: Deadline far above any clean shard's runtime: the watchdog is armed
#: on every dispatch (the cost we are measuring) but never fires.
_POLICY = SupervisorPolicy(task_timeout=300.0, max_retries=2)


def _best_of(n: int, fn) -> float:
    """Minimum wall-clock of ``n`` runs — the standard noise-resistant
    estimator for deterministic workloads."""
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _run_unsupervised() -> None:
    simulate_fleet(_CONFIG, workers=_WORKERS)


def _run_supervised() -> None:
    simulate_fleet(_CONFIG, workers=_WORKERS, policy=_POLICY)


def test_supervision_overhead_under_budget():
    # Warm-up once each (imports, allocator, fork page caches).
    _run_unsupervised()
    _run_supervised()
    t_plain = _best_of(3, _run_unsupervised)
    t_supervised = _best_of(3, _run_supervised)
    overhead = t_supervised - t_plain
    assert t_supervised <= t_plain * (1 + _BUDGET) + _EPSILON_SECONDS, (
        f"supervision overhead {overhead * 1e3:.1f}ms on a "
        f"{t_plain * 1e3:.1f}ms baseline exceeds the "
        f"{_BUDGET:.0%} + {_EPSILON_SECONDS * 1e3:.0f}ms budget"
    )


def test_supervised_run_is_identical():
    """The overhead number above is honest: same outputs, same pool size."""
    plain = simulate_fleet(_CONFIG, workers=_WORKERS)
    supervised = simulate_fleet(_CONFIG, workers=_WORKERS, policy=_POLICY)
    assert plain.records.keys() == supervised.records.keys()
    for key, col in plain.records.items():
        assert (col == supervised.records[key]).all(), key
    assert (plain.swaps.drive_id == supervised.swaps.drive_id).all()
    assert (plain.swaps.swap_age == supervised.swaps.swap_age).all()
