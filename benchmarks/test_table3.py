"""Benchmark: regenerate the paper's Table 3: failure incidence per model.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import table3


def test_table3(benchmark, char_trace):
    res = benchmark.pedantic(
        table3, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Table 3: failure incidence per model (simulated fleet) ---")
    print(res.render())
    assert res.n_failures["All"] > 0
