"""Observability overhead: tracing + metrics must cost < 5% on hot loops.

The instrumentation contract (DESIGN.md §10) is that spans are placed at
chunk/model granularity, never per drive or per row, precisely so that a
fully-activated tracer + metrics registry stays within a 5% wall-clock
budget on the fleet-simulation hot loop.  This benchmark enforces that
budget; the no-op path (no tracer activated) is also checked, since every
production call site pays it even when observability is off.
"""

from __future__ import annotations

import time

from repro.obs import metrics, tracing
from repro.simulator import FleetConfig, simulate_fleet

#: Large enough that per-run wall clock dominates timer noise (~1s).
_CONFIG = FleetConfig(
    n_drives_per_model=40, horizon_days=365, deploy_spread_days=100, seed=11
)

#: Fractional overhead budget from ISSUE acceptance criteria.
_BUDGET = 0.05
#: Absolute slack so sub-second runs don't fail on scheduler jitter.
_EPSILON_SECONDS = 0.05


def _best_of(n: int, fn) -> float:
    """Minimum wall-clock of ``n`` runs — the standard noise-resistant
    estimator for deterministic workloads."""
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _run_plain() -> None:
    assert tracing.current() is None and metrics.current() is None
    simulate_fleet(_CONFIG)


def _run_traced() -> None:
    with tracing.activate(), metrics.activate():
        simulate_fleet(_CONFIG)


def test_tracing_overhead_under_budget():
    # Warm-up once each (imports, allocator, branch caches).
    _run_plain()
    _run_traced()
    t_plain = _best_of(3, _run_plain)
    t_traced = _best_of(3, _run_traced)
    overhead = t_traced - t_plain
    assert t_traced <= t_plain * (1 + _BUDGET) + _EPSILON_SECONDS, (
        f"observability overhead {overhead * 1e3:.1f}ms on a "
        f"{t_plain * 1e3:.1f}ms baseline exceeds the "
        f"{_BUDGET:.0%} + {_EPSILON_SECONDS * 1e3:.0f}ms budget"
    )


def test_traced_run_collects_spans_and_metrics():
    """The overhead number above is honest: the traced run really records."""
    with tracing.activate() as tracer, metrics.activate() as registry:
        simulate_fleet(_CONFIG)
    summary = tracer.stage_summary()
    assert summary["repro.simulator.model"]["calls"] == 3
    assert summary["repro.simulator.model"]["rows_out"] > 0
    assert "repro.simulator.assemble" in summary
    snap = registry.to_dict()
    assert snap["repro_drives_simulated_total"]["series"][0]["value"] == 120.0
