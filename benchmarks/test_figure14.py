"""Benchmark: regenerate the paper's Figure 14.

Recall (TPR) of the thresholded forest as a function of drive age, for
three conservative probability thresholds.  The paper shows markedly higher
recall inside the 90-day infancy window.
"""

import numpy as np

from repro.analysis import figure14


def test_figure14(benchmark, ml_trace):
    res = benchmark.pedantic(
        figure14,
        args=(ml_trace,),
        kwargs={"thresholds": (0.85, 0.90, 0.95), "n_splits": 4, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print("--- Figure 14: TPR vs drive age at 3 thresholds (simulated) ---")
    print(res.render())
    # Paper shape: young recall above mature recall for every threshold
    # that produced measurable bins.
    for thr, tpr in res.tpr_by_threshold.items():
        young = np.nanmean(tpr[:3])
        old = np.nanmean(tpr[3:])
        if np.isfinite(young) and np.isfinite(old):
            assert young >= old - 0.1, thr
