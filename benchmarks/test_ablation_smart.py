"""Ablation: native proprietary features vs the SMART-attribute projection.

The paper's drives report through custom firmware, not SMART (Section 2);
most public failure predictors consume SMART tables.  This bench measures
how much predictive signal survives `repro.data.to_smart_table`'s lossy
projection — i.e. what an off-the-shelf SMART-based pipeline could have
achieved on this fleet.
"""

import numpy as np

from repro.core import build_prediction_dataset
from repro.core.labeling import label_dataset
from repro.data import to_smart_table
from repro.ml import RandomForestClassifier, cross_validate_auc


def test_ablation_smart_projection(benchmark, ml_trace):
    def run():
        records, swaps = ml_trace.records, ml_trace.swaps
        y, keep = label_dataset(records, swaps, 1)
        # Native features.
        ds = build_prediction_dataset(ml_trace, lookahead=1)
        factory = lambda: RandomForestClassifier(
            n_estimators=60, max_depth=10, min_samples_leaf=2, random_state=0
        )
        native = cross_validate_auc(
            factory, ds.X, ds.y, ds.groups, n_splits=3, seed=0
        ).mean_auc
        # SMART projection (drop identity columns, keep the 7 attributes).
        table = to_smart_table(records)
        smart_cols = [c for c in table if c.startswith("smart_")]
        X_smart = np.column_stack([table[c] for c in smart_cols]).astype(np.float64)
        groups = np.asarray(records["drive_id"])
        smart = cross_validate_auc(
            factory,
            X_smart[keep],
            y[keep],
            groups[keep],
            n_splits=3,
            seed=0,
        ).mean_auc
        return {"native": native, "smart": smart, "n_smart_features": len(smart_cols)}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("--- Ablation: native features vs SMART projection (RF, N=1) ---")
    print(
        f"  native ({out['n_smart_features']}+ features) AUC {out['native']:.3f}; "
        f"SMART ({out['n_smart_features']} attrs) AUC {out['smart']:.3f}"
    )
    # SMART keeps real signal (UEs, reallocated sectors, power-on hours)
    # but loses the daily workload/drain channel: expect a visible gap.
    assert out["smart"] > 0.55
    assert out["native"] >= out["smart"] - 0.02
