"""Shared fixtures for the benchmark harness.

Two session-scoped fleets are simulated once and shared:

- ``char_trace`` — the paper's 6-year horizon for the characterization
  tables/figures (Tables 1-5, Figures 1-11);
- ``ml_trace`` — a 4-year fleet sized so every cross-validated ML
  experiment (Tables 6-8, Figures 12-16) finishes in minutes on a laptop.

Both scale to the paper's population (30k drives, 6 years) by raising
``n_drives_per_model``/``horizon_days`` — a parameter change, not a code
change (see DESIGN.md).  Benchmark sizes trade statistical tightness for
wall-clock: AUCs move by roughly ±0.02 at these sizes.
"""

from __future__ import annotations

import pytest

from repro.simulator import FleetConfig, simulate_fleet

#: Seed shared by every benchmark so numbers in EXPERIMENTS.md reproduce.
BENCH_SEED = 7


@pytest.fixture(scope="session")
def char_trace():
    """Characterization fleet: 1,500 drives over six years."""
    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=500,
            horizon_days=2190,
            deploy_spread_days=1400,
            seed=BENCH_SEED,
        )
    )


@pytest.fixture(scope="session")
def ml_trace():
    """Prediction fleet: 1,800 drives over four years (~180 failures)."""
    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=600,
            horizon_days=1460,
            deploy_spread_days=900,
            seed=BENCH_SEED,
        )
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
