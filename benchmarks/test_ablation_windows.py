"""Ablation: rolling-window features for large lookahead windows.

The paper's closing future-work item: better use of pre-swap activity to
improve prediction at large N.  This bench compares the standard feature
set against the window-extended one (`repro.core.windows`) at N=1 and N=14.
"""

import numpy as np

from repro.core import build_windowed_features
from repro.core.labeling import label_dataset
from repro.core.pipeline import ModelSpec, PredictionDataset
from repro.ml import RandomForestClassifier, cross_validate_auc

LIGHT_RF = ModelSpec(
    "RF-light",
    lambda: RandomForestClassifier(
        n_estimators=60, max_depth=10, min_samples_leaf=2, random_state=0
    ),
    scale=False,
    log1p=False,
)


def _dataset_with_frame(trace, frame, lookahead):
    y, keep = label_dataset(trace.records, trace.swaps, lookahead)
    kept = frame.select_rows(keep)
    return PredictionDataset(
        X=kept.X,
        y=y[keep],
        groups=kept.drive_id,
        age_days=kept.age_days,
        model=kept.model,
        feature_names=kept.names,
        lookahead=lookahead,
    )


def test_ablation_windowed_features(benchmark, ml_trace):
    def run():
        from repro.core import build_features

        base_frame = build_features(ml_trace.records)
        win_frame = build_windowed_features(ml_trace.records, window=7)
        out = {}
        for n in (1, 14):
            for label, frame in (("base", base_frame), ("windowed", win_frame)):
                ds = _dataset_with_frame(ml_trace, frame, n)
                res = cross_validate_auc(
                    LIGHT_RF.factory, ds.X, ds.y, ds.groups, n_splits=3, seed=0
                )
                out[(n, label)] = res.mean_auc
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("--- Ablation: trailing-window features (RF) ---")
    for (n, label), auc in sorted(out.items()):
        print(f"  N={n:<3d} {label:<9s} AUC {auc:.3f}")
    # Windowed features must not hurt at N=1 and should help (or at least
    # match) at the large window where the paper expects gains.
    assert out[(14, "windowed")] >= out[(14, "base")] - 0.03
