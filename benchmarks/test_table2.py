"""Benchmark: regenerate the paper's Table 2: Spearman correlation matrix.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import table2


def test_table2(benchmark, char_trace):
    res = benchmark.pedantic(
        table2, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Table 2: Spearman correlation matrix (simulated fleet) ---")
    print(res.render())
    assert res.value("uncorrectable_error", "final_read_error") > 0.5
