"""Benchmark: regenerate the paper's Figure 10: bad-block and UE CDFs by failure group.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import figure10


def test_figure10(benchmark, char_trace):
    res = benchmark.pedantic(
        figure10, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Figure 10: bad-block and UE CDFs by failure group (simulated fleet) ---")
    print(res.render())
    assert res.zero_ue_fraction("not_failed") > 0.5
