"""Ablation: learned models vs non-ML baselines.

Reproduces the paper's framing claim (Section 1): no single monitored
metric nor a hand-tuned dashboard rule reaches the accuracy of the learned
predictors — "we find no evidence that the repair process is triggered by
any deterministic decision rule".
"""

from repro.core import (
    HeuristicRiskScore,
    SingleFeatureThreshold,
    build_prediction_dataset,
    evaluate_model,
)
from repro.core.pipeline import ModelSpec
from repro.ml import RandomForestClassifier

LIGHT_RF = ModelSpec(
    "RF-light",
    lambda: RandomForestClassifier(
        n_estimators=60, max_depth=10, min_samples_leaf=2, random_state=0
    ),
    scale=False,
    log1p=False,
)


def test_ablation_baselines(benchmark, ml_trace):
    def run():
        ds = build_prediction_dataset(ml_trace, lookahead=1)
        out = {}
        out["random forest"] = evaluate_model(ds, LIGHT_RF, n_splits=3, seed=0).mean_auc
        out["best single-feature threshold"] = evaluate_model(
            ds,
            ModelSpec("thr", lambda: SingleFeatureThreshold(), False, False),
            n_splits=3,
            seed=0,
        ).mean_auc
        out["heuristic error dashboard"] = evaluate_model(
            ds,
            ModelSpec(
                "heur",
                lambda: HeuristicRiskScore(ds.feature_names),
                False,
                False,
            ),
            n_splits=3,
            seed=0,
        ).mean_auc
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("--- Ablation: learned vs rule-based prediction (N=1) ---")
    for label, auc in out.items():
        print(f"  {label:<32s} AUC {auc:.3f}")
    assert out["random forest"] >= out["best single-feature threshold"]
    assert out["random forest"] > out["heuristic error dashboard"] + 0.03
