"""Benchmark: regenerate the paper's Figure 16.

Feature-importance rankings of separately trained infant and mature
forests.  The paper's headline: drive age and non-transparent errors
dominate the young model; wear-and-tear counters dominate the mature one.
"""

from repro.analysis import figure16


def test_figure16(benchmark, ml_trace):
    res = benchmark.pedantic(
        figure16, args=(ml_trace,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    print()
    print("--- Figure 16: feature importances, young vs old (simulated) ---")
    print(res.render(k=10))
    young_top = [n for n, _ in res.young.top(12)]
    old_top = [n for n, _ in res.old.top(10)]
    # Age carries real signal for infant failures (paper ranks it first; at
    # benchmark fleet sizes it lands in the young top tier).
    assert "drive_age" in young_top
    # Mature model leans on workload/wear counters.
    assert any(
        f in old_top
        for f in ("read_count", "write_count", "cum_read_count", "cum_write_count", "corr_err_rate")
    )
    # The two rankings must genuinely differ (the paper's headline).
    assert [n for n, _ in res.young.top(10)] != old_top
