"""Serving-path acceptance bench for ``repro.serve``.

The headline claim is twofold and both halves are asserted on a fleet
large enough to amortize model load and store growth:

1. ``ScoringEngine.replay`` over the trace is bit-identical to the
   offline ``predict_proba_records`` pipeline (the parity half — always
   runs);
2. the single-process ingest+score path sustains at least
   ``MIN_EVENTS_PER_SECOND`` drive-day events per second.

The throughput half is skipped on boxes with fewer than four cores —
a loaded CI sandbox can starve even a single-process loop — but the
parity half always runs, matching ``test_parallel_speedup.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import FailurePredictor
from repro.serve import ScoringEngine
from repro.simulator import FleetConfig, simulate_fleet

#: Acceptance floor for single-process ingest+score throughput.  Raised
#: from the seed's 50k after the fused feature kernel + flat-forest
#: scoring overhaul (measured 61k on the 1-core reference box; a quiet
#: 4-core box is comfortably faster per core).
MIN_EVENTS_PER_SECOND = 60_000

#: Acceptance floor for the sharded scoring path at four workers — the
#: committed replay target of the columnar overhaul.  Scoring dominates
#: the per-event cost (ingest alone streams >2M ev/s), so the fan-out
#: scales close to linearly once chunks amortize pool startup.
MIN_EVENTS_PER_SECOND_W4 = 250_000

#: Big enough that per-chunk work dominates engine setup.
BENCH_CFG = FleetConfig(
    n_drives_per_model=100,
    horizon_days=730,
    deploy_spread_days=365,
    seed=7,
)


@pytest.fixture(scope="module")
def bench_fixture():
    trace = simulate_fleet(BENCH_CFG)
    predictor = FailurePredictor(lookahead=7, seed=3).fit(trace)
    offline = predictor.predict_proba_records(trace.records)
    return trace, predictor, offline


def test_replay_parity_at_bench_scale(bench_fixture):
    trace, predictor, offline = bench_fixture
    result = ScoringEngine(predictor).replay(trace.records, chunk_rows=8192)
    assert result.n_events == len(trace.records)
    assert np.array_equal(result.probability, offline)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="throughput floor needs a quiet 4-core box"
)
def test_single_process_throughput_floor(bench_fixture):
    trace, predictor, offline = bench_fixture
    # Warm once so allocator state and page faults don't skew timing.
    ScoringEngine(predictor).replay(trace.records, chunk_rows=8192)

    engine = ScoringEngine(predictor)
    t0 = time.perf_counter()
    result = engine.replay(trace.records, chunk_rows=8192)
    elapsed = time.perf_counter() - t0

    assert np.array_equal(result.probability, offline)
    rate = result.n_events / elapsed
    assert rate >= MIN_EVENTS_PER_SECOND, (
        f"serving path sustained {rate:,.0f} events/s, below the "
        f"{MIN_EVENTS_PER_SECOND:,} floor ({result.n_events} events in "
        f"{elapsed:.2f}s)"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="throughput floor needs a quiet 4-core box"
)
def test_workers4_throughput_floor(bench_fixture):
    trace, predictor, offline = bench_fixture
    ScoringEngine(predictor, workers=4).replay(trace.records, chunk_rows=8192)

    engine = ScoringEngine(predictor, workers=4)
    t0 = time.perf_counter()
    result = engine.replay(trace.records, chunk_rows=8192)
    elapsed = time.perf_counter() - t0

    # Fan-out must stay bit-identical to the offline pipeline — the
    # parity contract holds for every worker count.
    assert np.array_equal(result.probability, offline)
    rate = result.n_events / elapsed
    assert rate >= MIN_EVENTS_PER_SECOND_W4, (
        f"sharded serving path sustained {rate:,.0f} events/s at 4 workers, "
        f"below the {MIN_EVENTS_PER_SECOND_W4:,} floor "
        f"({result.n_events} events in {elapsed:.2f}s)"
    )


#: Acceptance floor for the sharded *plane* (ISSUE 9): four scorer-shard
#: processes over the hash partition must sustain at least this
#: aggregate rate.  Same per-core budget as the workers=4 fan-out — the
#: partition adds one vectorized hash per chunk, which is noise.
MIN_EVENTS_PER_SECOND_SHARDED4 = 250_000


def test_sharded_replay_parity_at_bench_scale(bench_fixture, tmp_path):
    from repro.serve import run_sharded_replay

    trace, predictor, offline = bench_fixture
    result = run_sharded_replay(
        predictor, trace.records, 4, tmp_path / "plane", chunk_rows=8192
    )
    assert result.n_events == len(trace.records)
    assert np.array_equal(result.probability, offline)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="throughput floor needs a quiet 4-core box"
)
def test_sharded_plane_throughput_floor(bench_fixture, tmp_path):
    from repro.serve import run_sharded_replay

    trace, predictor, offline = bench_fixture
    # Warm once (separate plane) so pool spawn and page faults don't
    # skew the timed run.
    run_sharded_replay(
        predictor, trace.records, 4, tmp_path / "warm", chunk_rows=8192
    )

    t0 = time.perf_counter()
    result = run_sharded_replay(
        predictor, trace.records, 4, tmp_path / "plane", chunk_rows=8192
    )
    elapsed = time.perf_counter() - t0

    assert np.array_equal(result.probability, offline)
    rate = result.n_events / elapsed
    assert rate >= MIN_EVENTS_PER_SECOND_SHARDED4, (
        f"sharded plane sustained {rate:,.0f} events/s at 4 shards, below "
        f"the {MIN_EVENTS_PER_SECOND_SHARDED4:,} floor "
        f"({result.n_events} events in {elapsed:.2f}s)"
    )
