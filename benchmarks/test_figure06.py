"""Benchmark: regenerate the paper's Figure 6: failure-age CDF and monthly hazard.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import figure6


def test_figure06(benchmark, char_trace):
    res = benchmark.pedantic(
        figure6, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Figure 6: failure-age CDF and monthly hazard (simulated fleet) ---")
    print(res.render())
    assert res.infant_share_90d > res.infant_share_30d
