"""Benchmark: regenerate the paper's Figure 15 and the Section 5.3 result.

Young vs old ROC of the pooled model, plus separately trained infant and
mature models (the paper: 0.961/0.894 pooled, 0.970/0.890 partitioned).
"""

from repro.analysis import figure15


def test_figure15(benchmark, ml_trace):
    res = benchmark.pedantic(
        figure15, args=(ml_trace,), kwargs={"n_splits": 4, "seed": 0},
        rounds=1, iterations=1,
    )
    print()
    print("--- Figure 15: young vs old predictability (simulated fleet) ---")
    print(res.render())
    assert res.pooled_auc["young"] > res.pooled_auc["old"]
    young_m, _ = res.partitioned_auc["young"]
    old_m, _ = res.partitioned_auc["old"]
    assert young_m > old_m
