"""Benchmark: regenerate the paper's Table 4: lifetime failure-count distribution.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import table4


def test_table4(benchmark, char_trace):
    res = benchmark.pedantic(
        table4, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Table 4: lifetime failure-count distribution (simulated fleet) ---")
    print(res.render())
    assert res.counts.sum() == 1500
