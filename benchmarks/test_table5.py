"""Benchmark: regenerate the paper's Table 5: repair completion within n days.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import table5


def test_table5(benchmark, char_trace):
    res = benchmark.pedantic(
        table5, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Table 5: repair completion within n days (simulated fleet) ---")
    print(res.render())
    assert res.horizons[-1] == "ever"
