"""Telemetry-plane overhead: full observability must cost < 5% on replay.

The telemetry plane's contract (DESIGN.md §15) is that a replay with
every sink attached — windowed timeline, heartbeat status file,
structured event log, SLO evaluation — stays within 5% wall clock of a
bare replay, so the plane can stay on in production.  Parity is
asserted inside both timed bodies: the instrumented run really scores,
ticks, and heartbeats every event.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import FailurePredictor
from repro.obs import eventlog, timeline
from repro.obs.eventlog import EventLog
from repro.obs.slo import SloSpec
from repro.obs.timeline import TickPolicy, Timeline
from repro.serve import ScoringEngine, TelemetryConfig
from repro.simulator import FleetConfig, simulate_fleet

#: Fractional overhead budget from ISSUE acceptance criteria.
_BUDGET = 0.05
#: Absolute slack so sub-second runs don't fail on scheduler jitter.
_EPSILON_SECONDS = 0.05

#: Big enough that per-chunk scoring dominates engine setup (~1s).
BENCH_CFG = FleetConfig(
    n_drives_per_model=100,
    horizon_days=730,
    deploy_spread_days=365,
    seed=7,
)

#: A permissive objective: evaluated every run, never binding.
BENCH_SPEC = SloSpec.from_dict(
    {
        "objectives": [
            {
                "name": "throughput",
                "metric": "window.events",
                "threshold": 1,
                "op": ">=",
            }
        ]
    }
)


@pytest.fixture(scope="module")
def bench_fixture():
    trace = simulate_fleet(BENCH_CFG)
    predictor = FailurePredictor(lookahead=7, seed=3).fit(trace)
    offline = predictor.predict_proba_records(trace.records)
    return trace, predictor, offline


def _best_of(n: int, fn) -> float:
    """Minimum wall-clock of ``n`` runs — the standard noise-resistant
    estimator for deterministic workloads."""
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="overhead ratio needs a quiet 4-core box"
)
def test_telemetry_overhead_under_budget(bench_fixture, tmp_path):
    trace, predictor, offline = bench_fixture

    def run_plain() -> None:
        result = ScoringEngine(predictor).replay(
            trace.records, chunk_rows=8192
        )
        assert np.array_equal(result.probability, offline)

    def run_instrumented() -> None:
        engine = ScoringEngine(
            predictor,
            telemetry=TelemetryConfig(
                status_path=str(tmp_path / "status.json"),
                heartbeat_every=5000,
                slo_spec=BENCH_SPEC,
            ),
        )
        with (
            timeline.activate(Timeline(TickPolicy(every_events=4096))) as tl,
            eventlog.activate(EventLog(tmp_path / "events.jsonl")),
        ):
            result = engine.replay(trace.records, chunk_rows=8192)
            tl.flush()
            engine.heartbeat()
        assert tl.windows_emitted > 0
        assert np.array_equal(result.probability, offline)

    # Warm-up once each (imports, allocator, branch caches).
    run_plain()
    run_instrumented()
    t_plain = _best_of(3, run_plain)
    t_instrumented = _best_of(3, run_instrumented)
    overhead = t_instrumented - t_plain
    assert t_instrumented <= t_plain * (1 + _BUDGET) + _EPSILON_SECONDS, (
        f"telemetry overhead {overhead * 1e3:.1f}ms on a "
        f"{t_plain * 1e3:.1f}ms baseline exceeds the "
        f"{_BUDGET:.0%} + {_EPSILON_SECONDS * 1e3:.0f}ms budget"
    )


def test_instrumented_replay_parity_at_bench_scale(bench_fixture, tmp_path):
    """The overhead number above is honest: the instrumented run really
    ticks windows and writes heartbeats while keeping scores exact."""
    trace, predictor, offline = bench_fixture
    status_path = tmp_path / "status.json"
    engine = ScoringEngine(
        predictor,
        telemetry=TelemetryConfig(
            status_path=str(status_path), heartbeat_every=5000
        ),
    )
    with timeline.activate(Timeline(TickPolicy(every_events=4096))) as tl:
        result = engine.replay(trace.records, chunk_rows=8192)
        tl.flush()
        engine.heartbeat()
    assert result.n_events == len(trace.records)
    assert np.array_equal(result.probability, offline)
    assert status_path.exists()
    assert tl.windows_emitted > 0
    assert tl.events_total == len(trace.records)
