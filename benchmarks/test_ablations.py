"""Ablation benchmarks for the design choices called out in DESIGN.md §6.

Each ablation re-runs the prediction protocol with one knob changed:

- training downsampling ratio (the paper tested ratios beyond 1:1 and saw
  no gain — Section 5.1);
- drive-grouped vs naive row-wise cross-validation (the paper argues
  row-wise splits leak heavily correlated drive-days);
- daily-only vs cumulative-only vs combined feature sets;
- pooled vs age-partitioned training (Section 5.3);
- forest size / depth sensitivity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_prediction_dataset, evaluate_model
from repro.core.pipeline import ModelSpec
from repro.ml import RandomForestClassifier, cross_validate_auc

LIGHT_RF = ModelSpec(
    "RF-light",
    lambda: RandomForestClassifier(
        n_estimators=60, max_depth=10, min_samples_leaf=2, random_state=0
    ),
    scale=False,
    log1p=False,
)


@pytest.fixture(scope="module")
def dataset(ml_trace):
    return build_prediction_dataset(ml_trace, lookahead=1)


def test_ablation_downsampling_ratio(benchmark, dataset):
    """1:1 downsampling vs 1:4 vs none (paper Section 5.1)."""

    def run():
        out = {}
        for label, ratio in (("1:1", 1.0), ("1:4", 4.0), ("1:16", 16.0)):
            res = evaluate_model(
                dataset, LIGHT_RF, n_splits=3, downsample_ratio=ratio, seed=0
            )
            out[label] = (res.mean_auc, res.std_auc)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("--- Ablation: training downsampling ratio (RF, N=1) ---")
    for label, (m, s) in out.items():
        print(f"  ratio {label}: AUC {m:.3f} ± {s:.3f}")
    # Paper: ratios beyond 1:1 give at best miniscule changes.
    aucs = [m for m, _ in out.values()]
    assert max(aucs) - min(aucs) < 0.08


def test_ablation_grouped_vs_rowwise_cv(benchmark, dataset):
    """Row-wise CV must report an inflated score (leakage, Section 5.1)."""

    def run():
        grouped = cross_validate_auc(
            LIGHT_RF.factory,
            dataset.X,
            dataset.y,
            dataset.groups,
            n_splits=3,
            seed=0,
        )
        rowwise = cross_validate_auc(
            LIGHT_RF.factory,
            dataset.X,
            dataset.y,
            np.arange(len(dataset)),  # every row its own group
            n_splits=3,
            seed=0,
        )
        return grouped.mean_auc, rowwise.mean_auc

    grouped_auc, rowwise_auc = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("--- Ablation: grouped vs row-wise CV (RF, N=1) ---")
    print(f"  drive-grouped: {grouped_auc:.3f}   row-wise (leaky): {rowwise_auc:.3f}")
    assert rowwise_auc >= grouped_auc - 0.02


def test_ablation_feature_sets(benchmark, dataset):
    """Daily-only vs cumulative-only vs combined features (Section 5.1)."""
    names = dataset.feature_names
    daily = [i for i, n in enumerate(names) if not n.startswith("cum_")]
    cumulative = [
        i
        for i, n in enumerate(names)
        if n.startswith("cum_") or n in ("drive_age", "pe_cycles")
    ]

    def run():
        out = {}
        for label, cols in (
            ("daily-only", daily),
            ("cumulative-only", cumulative),
            ("combined", list(range(len(names)))),
        ):
            res = cross_validate_auc(
                LIGHT_RF.factory,
                dataset.X[:, cols],
                dataset.y,
                dataset.groups,
                n_splits=3,
                seed=0,
            )
            out[label] = res.mean_auc
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("--- Ablation: feature sets (RF, N=1) ---")
    for label, auc in out.items():
        print(f"  {label}: AUC {auc:.3f}")
    # Combined features should not lose to either restricted set by much.
    assert out["combined"] >= max(out["daily-only"], out["cumulative-only"]) - 0.03


def test_ablation_age_partitioned_training(benchmark, dataset):
    """Pooled vs separately trained young/old models (Section 5.3)."""

    def run():
        pooled = evaluate_model(dataset, LIGHT_RF, n_splits=3, seed=0)
        young = evaluate_model(dataset.young(), LIGHT_RF, n_splits=3, seed=0)
        old = evaluate_model(dataset.old(), LIGHT_RF, n_splits=3, seed=0)
        return pooled.mean_auc, young.mean_auc, old.mean_auc

    pooled, young, old = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("--- Ablation: age-partitioned training (RF, N=1) ---")
    print(f"  pooled {pooled:.3f}   young-only {young:.3f}   old-only {old:.3f}")
    assert young > old  # paper: 0.970 vs 0.890


def test_ablation_forest_size(benchmark, dataset):
    """Sensitivity to number of trees and depth."""

    def run():
        out = {}
        for label, (n_est, depth) in (
            ("20 trees, depth 6", (20, 6)),
            ("60 trees, depth 10", (60, 10)),
            ("120 trees, depth 14", (120, 14)),
        ):
            spec = ModelSpec(
                label,
                lambda n_est=n_est, depth=depth: RandomForestClassifier(
                    n_estimators=n_est,
                    max_depth=depth,
                    min_samples_leaf=2,
                    random_state=0,
                ),
                scale=False,
                log1p=False,
            )
            out[label] = evaluate_model(dataset, spec, n_splits=3, seed=0).mean_auc
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("--- Ablation: forest size (N=1) ---")
    for label, auc in out.items():
        print(f"  {label}: AUC {auc:.3f}")
    aucs = list(out.values())
    # The forest is robust to its size once moderately large.
    assert max(aucs) - min(aucs) < 0.1
