"""Parallel speedup acceptance bench for ``repro.parallel``.

The headline claim is twofold and both halves are asserted here on a
fleet large enough to amortize pool startup:

1. ``simulate_fleet(cfg, workers=4)`` returns a byte-identical trace
   (checked via the deterministic NPZ writer's digest);
2. it does so at least 1.7x faster than the serial path on a 4-core
   machine.

The speedup half is skipped on boxes with fewer than four cores —
there is nothing to measure there — but the identity half always runs.
"""

from __future__ import annotations

import hashlib
import os
import time

import pytest

from repro.reliability import atomic_save_npz
from repro.simulator import FleetConfig, simulate_fleet

#: Big enough that per-drive work dominates fork + pickle overhead.
SPEEDUP_CFG = FleetConfig(
    n_drives_per_model=300,
    horizon_days=1460,
    deploy_spread_days=900,
    seed=7,
)


def _digest(tmp_path, trace, tag):
    path = tmp_path / f"{tag}.npz"
    atomic_save_npz(path, **{k: v for k, v in trace.records.items()})
    return hashlib.sha256(path.read_bytes()).hexdigest()


def test_four_workers_byte_identical(tmp_path):
    serial = simulate_fleet(SPEEDUP_CFG, workers=1)
    fanned = simulate_fleet(SPEEDUP_CFG, workers=4)
    assert _digest(tmp_path, serial, "w1") == _digest(tmp_path, fanned, "w4")


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="speedup needs at least 4 cores"
)
def test_four_workers_at_least_1_7x(tmp_path):
    # Warm both paths once so imports/allocator state don't skew timing.
    simulate_fleet(SPEEDUP_CFG, workers=1)
    simulate_fleet(SPEEDUP_CFG, workers=4)

    t0 = time.perf_counter()
    serial = simulate_fleet(SPEEDUP_CFG, workers=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    fanned = simulate_fleet(SPEEDUP_CFG, workers=4)
    t_parallel = time.perf_counter() - t0

    assert _digest(tmp_path, serial, "s") == _digest(tmp_path, fanned, "p")
    speedup = t_serial / t_parallel
    assert speedup >= 1.7, (
        f"workers=4 speedup {speedup:.2f}x below the 1.7x floor "
        f"(serial {t_serial:.2f}s, parallel {t_parallel:.2f}s)"
    )
