"""Benchmark: regenerate the paper's Figure 7: write-intensity quartiles by age month.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import figure7


def test_figure07(benchmark, char_trace):
    res = benchmark.pedantic(
        figure7, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Figure 7: write-intensity quartiles by age month (simulated fleet) ---")
    print(res.render())
    assert res.bands.level(0.5).shape[0] == 72
