"""Benchmark: regenerate the paper's Figure 13.

Out-of-fold ROC curves of the random forest per drive model (N=1).  The
paper finds near-identical performance across MLC-A/B/D.
"""

import numpy as np

from repro.analysis import figure13


def test_figure13(benchmark, ml_trace):
    res = benchmark.pedantic(
        figure13, args=(ml_trace,), kwargs={"n_splits": 4, "seed": 0},
        rounds=1, iterations=1,
    )
    print()
    print("--- Figure 13: per-drive-model ROC (simulated fleet) ---")
    print(res.render())
    aucs = np.array(list(res.auc.values()))
    assert (aucs > 0.75).all()
    # Near-identical across models (paper: 0.900-0.918).
    assert aucs.max() - aucs.min() < 0.15
    for fpr, tpr in res.curves.values():
        assert fpr[0] == 0.0 and tpr[-1] == 1.0
