"""Benchmark: regenerate the paper's Figure 5: time-to-repair CDF with censoring.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import figure5


def test_figure05(benchmark, char_trace):
    res = benchmark.pedantic(
        figure5, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Figure 5: time-to-repair CDF with censoring (simulated fleet) ---")
    print(res.render())
    assert 0.0 < res.cdf.censored_mass < 1.0
