"""Benchmark: regenerate the paper's Figure 1: max-age and data-count CDFs.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import figure1


def test_figure01(benchmark, char_trace):
    res = benchmark.pedantic(
        figure1, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Figure 1: max-age and data-count CDFs (simulated fleet) ---")
    print(res.render())
    assert res.data_count.quantile(0.5) <= res.max_age.quantile(0.5)
