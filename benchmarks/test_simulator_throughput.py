"""Performance benchmarks for the substrate itself.

Unlike the experiment benches (one-shot pedantic runs), these measure
steady-state throughput of the hot paths: fleet simulation, feature
extraction, and forest scoring.

The floor tests at the bottom pin the committed throughput targets of
the columnar overhaul against the seed baseline
(``benchmarks/baselines/BENCH_sim.json`` records both).  They need a
quiet box — wall-clock assertions on a loaded CI sandbox measure the
neighbours, not the code — so they skip below four cores like
``test_serve_throughput.py``.
"""

import os
import time

import numpy as np
import pytest

from repro.core import build_features, build_prediction_dataset
from repro.data import downsample_majority
from repro.ml import RandomForestClassifier
from repro.simulator import FleetConfig, simulate_fleet

#: Seed serial throughput (drive-day events/s) on the 1-core reference
#: box: best-of-5 at the BENCH_CFG workload before the columnar
#: overhaul.  The committed speedup targets below are multiples of it.
SEED_SERIAL_EVENTS_PER_SECOND = 770_000

#: Serial floor: the overhaul's buffered emission and in-place
#: error/workload kernels must stay ahead of the seed on one process.
#: Per-drive RNG draw order is the identity contract, so the serial path
#: is bounded by raw draw time (~35% of the wall clock) — the bulk of
#: the committed speedup target rides on sharding, below.
MIN_SERIAL_EVENTS_PER_SECOND = 800_000

#: Combined floor at four workers: the committed >=5x target over the
#: seed serial baseline.  Needs four *fast* quiet cores: the serial win
#: plus near-linear drive-shard scaling (shards are balanced and share
#: nothing until assembly).
MIN_WORKERS4_SPEEDUP = 5.0

BENCH_CFG = FleetConfig(
    n_drives_per_model=60, horizon_days=730, deploy_spread_days=365, seed=3
)


def _best_rate(runs: int, **kwargs) -> float:
    """Best-of-N drive-day events/s (floors measure the code, not noise)."""
    best = float("inf")
    n_records = 0
    for _ in range(runs):
        t0 = time.perf_counter()
        trace = simulate_fleet(BENCH_CFG, **kwargs)
        best = min(best, time.perf_counter() - t0)
        n_records = len(trace.records)
    return n_records / best


def test_simulate_fleet_throughput(benchmark):
    trace = benchmark(simulate_fleet, BENCH_CFG)
    assert len(trace.records) > 10_000


def test_simulate_fleet_throughput_two_workers(benchmark):
    """Same fleet through the sharded pool path (workers=2).

    Comparing this number against the serial bench above shows the
    fan-out overhead/payoff at this fleet size; the record count pins
    the workload to the exact same trace.
    """
    trace = benchmark(simulate_fleet, BENCH_CFG, workers=2)
    assert len(trace.records) > 10_000


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="throughput floor needs a quiet 4-core box"
)
def test_simulate_fleet_serial_floor():
    simulate_fleet(BENCH_CFG)  # warm: imports, allocator growth
    rate = _best_rate(3)
    assert rate >= MIN_SERIAL_EVENTS_PER_SECOND, (
        f"serial simulator sustained {rate:,.0f} drive-day events/s, below "
        f"the {MIN_SERIAL_EVENTS_PER_SECOND:,} floor"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="throughput floor needs a quiet 4-core box"
)
def test_simulate_fleet_workers4_floor():
    simulate_fleet(BENCH_CFG, workers=4)  # warm: pool startup, imports
    rate = _best_rate(3, workers=4)
    floor = SEED_SERIAL_EVENTS_PER_SECOND * MIN_WORKERS4_SPEEDUP
    assert rate >= floor, (
        f"sharded simulator sustained {rate:,.0f} drive-day events/s at 4 "
        f"workers — {rate / SEED_SERIAL_EVENTS_PER_SECOND:.1f}x the seed "
        f"serial baseline, below the {MIN_WORKERS4_SPEEDUP:.0f}x floor"
    )


def test_feature_extraction_throughput(benchmark, ml_trace):
    frame = benchmark(build_features, ml_trace.records)
    assert frame.X.shape[0] == len(ml_trace.records)


def test_forest_scoring_throughput(benchmark, ml_trace):
    ds = build_prediction_dataset(ml_trace, lookahead=1)
    rng = np.random.default_rng(0)
    keep = downsample_majority(ds.y, 1.0, rng)
    rf = RandomForestClassifier(
        n_estimators=40, max_depth=10, random_state=0
    ).fit(ds.X[keep], ds.y[keep])
    sample = ds.X[:200_000]
    scores = benchmark(rf.predict_proba, sample)
    assert scores.shape == (sample.shape[0],)
