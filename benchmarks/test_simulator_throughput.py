"""Performance benchmarks for the substrate itself.

Unlike the experiment benches (one-shot pedantic runs), these measure
steady-state throughput of the hot paths: fleet simulation, feature
extraction, and forest scoring.
"""

import numpy as np

from repro.core import build_features, build_prediction_dataset
from repro.data import downsample_majority
from repro.ml import RandomForestClassifier
from repro.simulator import FleetConfig, simulate_fleet


def test_simulate_fleet_throughput(benchmark):
    cfg = FleetConfig(
        n_drives_per_model=60, horizon_days=730, deploy_spread_days=300, seed=3
    )
    trace = benchmark(simulate_fleet, cfg)
    assert len(trace.records) > 10_000


def test_simulate_fleet_throughput_two_workers(benchmark):
    """Same fleet through the sharded pool path (workers=2).

    Comparing this number against the serial bench above shows the
    fan-out overhead/payoff at this fleet size; the record count pins
    the workload to the exact same trace.
    """
    cfg = FleetConfig(
        n_drives_per_model=60, horizon_days=730, deploy_spread_days=300, seed=3
    )
    trace = benchmark(simulate_fleet, cfg, workers=2)
    assert len(trace.records) > 10_000


def test_feature_extraction_throughput(benchmark, ml_trace):
    frame = benchmark(build_features, ml_trace.records)
    assert frame.X.shape[0] == len(ml_trace.records)


def test_forest_scoring_throughput(benchmark, ml_trace):
    ds = build_prediction_dataset(ml_trace, lookahead=1)
    rng = np.random.default_rng(0)
    keep = downsample_majority(ds.y, 1.0, rng)
    rf = RandomForestClassifier(
        n_estimators=40, max_depth=10, random_state=0
    ).fit(ds.X[keep], ds.y[keep])
    sample = ds.X[:200_000]
    scores = benchmark(rf.predict_proba, sample)
    assert scores.shape == (sample.shape[0],)
