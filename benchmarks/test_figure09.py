"""Benchmark: regenerate the paper's Figure 9: P/E-at-failure CDF, young vs old.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import figure9


def test_figure09(benchmark, char_trace):
    res = benchmark.pedantic(
        figure9, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Figure 9: P/E-at-failure CDF, young vs old (simulated fleet) ---")
    print(res.render())
    assert res.young.quantile(0.5) < res.old.quantile(0.5)
