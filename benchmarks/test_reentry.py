"""Extension experiment: post-re-entry behaviour (paper's future work).

Not a table or figure of the paper — it is the analysis its conclusion
announces: how drives behave after returning from repair.  The simulated
fleet encodes the Table 4 observation that ~10% of failed drives fail
again, via an elevated post-repair hazard; the Kaplan-Meier comparison
quantifies it.
"""

from repro.analysis import analyze_reentry


def test_reentry_analysis(benchmark, char_trace):
    res = benchmark.pedantic(
        analyze_reentry, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Extension: post-re-entry analysis (simulated fleet) ---")
    print(res.render())
    if res.n_reentries >= 10:
        # Repaired drives must look worse than fresh ones.
        assert res.reentry_km.cdf(730.0) > res.first_km.cdf(730.0)
