"""Benchmark: regenerate the paper's Figure 12.

Random-forest AUC as a function of the lookahead window N (the paper
sweeps 1..30 and reports decay from 0.90 to 0.77).
"""

from repro.analysis import figure12


def test_figure12(benchmark, ml_trace):
    res = benchmark.pedantic(
        figure12,
        args=(ml_trace,),
        kwargs={"lookaheads": (1, 2, 3, 5, 7, 14, 30), "n_splits": 4, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print("--- Figure 12: forest AUC vs lookahead N (simulated fleet) ---")
    print(res.render())
    # Paper shape: monotone-ish decay; clear gap between N=1 and N=30.
    assert res.auc_mean[0] == max(res.auc_mean)
    assert res.auc_mean[0] - res.auc_mean[-1] > 0.04
