"""Admission-guard overhead: guarded replay must cost < 5% on hot loops.

The guard's contract (DESIGN.md §14) is that on a clean, ordered trace
the chunk fast path — vectorized schema bounds + per-drive order check,
one digest per run end — adds under 5% wall clock over an unguarded
replay, so always-on admission control is free enough to leave enabled
in production.  Parity is asserted inside both timed bodies, keeping
the comparison honest: the guarded run really classifies every event.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import FailurePredictor
from repro.serve import AdmissionGuard, FeatureStore, ScoringEngine
from repro.simulator import FleetConfig, simulate_fleet

#: Fractional overhead budget from ISSUE acceptance criteria.
_BUDGET = 0.05
#: Absolute slack so sub-second runs don't fail on scheduler jitter.
_EPSILON_SECONDS = 0.05

#: Big enough that per-chunk scoring dominates engine setup (~1s).
BENCH_CFG = FleetConfig(
    n_drives_per_model=100,
    horizon_days=730,
    deploy_spread_days=365,
    seed=7,
)


@pytest.fixture(scope="module")
def bench_fixture():
    trace = simulate_fleet(BENCH_CFG)
    predictor = FailurePredictor(lookahead=7, seed=3).fit(trace)
    offline = predictor.predict_proba_records(trace.records)
    return trace, predictor, offline


def _best_of(n: int, fn) -> float:
    """Minimum wall-clock of ``n`` runs — the standard noise-resistant
    estimator for deterministic workloads."""
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="overhead ratio needs a quiet 4-core box"
)
def test_guard_overhead_under_budget(bench_fixture):
    trace, predictor, offline = bench_fixture

    def run_plain() -> None:
        result = ScoringEngine(predictor).replay(
            trace.records, chunk_rows=8192
        )
        assert np.array_equal(result.probability, offline)

    def run_guarded() -> None:
        store = FeatureStore()
        engine = ScoringEngine(
            predictor, store=store, guard=AdmissionGuard(store)
        )
        result = engine.replay(trace.records, chunk_rows=8192)
        assert engine.guard.stats.admitted == len(trace.records)
        assert engine.guard.stats.dead_lettered == 0
        assert np.array_equal(result.probability, offline)

    # Warm-up once each (imports, allocator, branch caches).
    run_plain()
    run_guarded()
    t_plain = _best_of(3, run_plain)
    t_guarded = _best_of(3, run_guarded)
    overhead = t_guarded - t_plain
    assert t_guarded <= t_plain * (1 + _BUDGET) + _EPSILON_SECONDS, (
        f"admission guard overhead {overhead * 1e3:.1f}ms on a "
        f"{t_plain * 1e3:.1f}ms baseline exceeds the "
        f"{_BUDGET:.0%} + {_EPSILON_SECONDS * 1e3:.0f}ms budget"
    )


def test_guarded_replay_parity_at_bench_scale(bench_fixture):
    """The overhead number above is honest: the guarded run really admits."""
    trace, predictor, offline = bench_fixture
    store = FeatureStore()
    engine = ScoringEngine(
        predictor, store=store, guard=AdmissionGuard(store)
    )
    result = engine.replay(trace.records, chunk_rows=8192)
    assert result.n_events == len(trace.records)
    assert result.n_diverted == 0
    assert np.array_equal(result.probability, offline)
