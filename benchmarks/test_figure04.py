"""Benchmark: regenerate the paper's Figure 4: pre-swap non-operational period CDF.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import figure4


def test_figure04(benchmark, char_trace):
    res = benchmark.pedantic(
        figure4, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Figure 4: pre-swap non-operational period CDF (simulated fleet) ---")
    print(res.render())
    assert res.cdf(7.0) > 0.5
