"""Top-level audit benchmark: the paper's Observations 1-13 on one fleet.

This is the reproduction's summary experiment — a single run that checks
every qualitative claim of the paper against the simulated fleet (ML
observations included).
"""

from repro.analysis import check_observations


def test_observations_audit(benchmark, char_trace):
    report = benchmark.pedantic(
        check_observations,
        args=(char_trace,),
        kwargs={"include_ml": True, "n_splits": 3, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print("--- Observations 1-13 audit (simulated fleet) ---")
    print(report.render())
    # The calibrated simulator must exhibit the paper's phenomenology;
    # allow one marginal miss at benchmark fleet size.
    assert len(report.failing()) <= 1, report.render()
