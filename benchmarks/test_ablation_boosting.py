"""Extension ablation: gradient boosting vs the paper's random forest.

The paper (2019) crowns the random forest; gradient boosting is its modern
successor on tabular data.  This bench runs both through the identical
protocol on the failure-prediction task.
"""

from repro.core import build_prediction_dataset, evaluate_model
from repro.core.pipeline import ModelSpec
from repro.ml import GradientBoostingClassifier, RandomForestClassifier


def test_ablation_boosting_vs_forest(benchmark, ml_trace):
    rf_spec = ModelSpec(
        "Random Forest",
        lambda: RandomForestClassifier(
            n_estimators=60, max_depth=10, min_samples_leaf=2, random_state=0
        ),
        scale=False,
        log1p=False,
    )
    gb_spec = ModelSpec(
        "Gradient Boosting",
        lambda: GradientBoostingClassifier(
            n_estimators=150,
            learning_rate=0.1,
            max_depth=3,
            subsample=0.8,
            random_state=0,
        ),
        scale=False,
        log1p=False,
    )

    def run():
        ds = build_prediction_dataset(ml_trace, lookahead=1)
        return {
            spec.name: evaluate_model(ds, spec, n_splits=3, seed=0).mean_auc
            for spec in (rf_spec, gb_spec)
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("--- Extension: gradient boosting vs random forest (N=1) ---")
    for name, auc in out.items():
        print(f"  {name:<18s} AUC {auc:.3f}")
    # Both strong; neither collapses.  (Which one edges ahead depends on
    # fleet size — boosting tends to win with more positives.)
    assert min(out.values()) > 0.75
    assert abs(out["Random Forest"] - out["Gradient Boosting"]) < 0.1
