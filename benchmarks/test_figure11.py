"""Benchmark: regenerate the paper's Figure 11: pre-failure UE probability and magnitude.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import figure11


def test_figure11(benchmark, char_trace):
    res = benchmark.pedantic(
        figure11, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Figure 11: pre-failure UE probability and magnitude (simulated fleet) ---")
    print(res.render())
    assert res.window == 7
