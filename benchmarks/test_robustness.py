"""Benchmark: prediction robustness under telemetry corruption.

Injects the row-level fault classes at increasing rates, repairs the
trace with the ``repair`` policy, and measures cross-validated ROC AUC
of the decision tree at each corruption level.  The claim under test is
graceful degradation: the pipeline never crashes on repaired dirty
telemetry, and accuracy decays smoothly rather than falling off a cliff.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import (
    ModelSpec,
    build_prediction_dataset,
    evaluate_model,
)
from repro.ml import DecisionTreeClassifier
from repro.reliability import FaultInjector, apply_policy
from repro.simulator import FleetConfig, simulate_fleet

#: Matches ``conftest.BENCH_SEED`` so numbers reproduce alongside the
#: other benchmarks (kept literal: benchmark modules are not a package).
BENCH_SEED = 7

#: Multipliers applied to the per-class base rates below.
CORRUPTION_LEVELS = (0.0, 0.5, 1.0, 2.0)

BASE_RATES = {
    "missing_days": 0.05,
    "duplicate_rows": 0.03,
    "out_of_order": 0.02,
    "value_spikes": 0.01,
    "stuck_counter": 0.10,
}

SPEC = ModelSpec(
    "Decision Tree",
    lambda: DecisionTreeClassifier(max_depth=8, min_samples_leaf=3, random_state=0),
    scale=False,
    log1p=False,
)


def _auc_at(trace, level: float) -> float:
    cols = {k: np.array(v) for k, v in trace.records.items()}
    if level > 0:
        rates = {k: v * level for k, v in BASE_RATES.items()}
        dirty = FaultInjector(seed=BENCH_SEED).inject(
            cols, classes=tuple(BASE_RATES), rates=rates
        )
        cols = dirty.columns
    repaired = apply_policy(cols, policy="repair").dataset
    dataset = build_prediction_dataset((repaired, trace.swaps), lookahead=3)
    return evaluate_model(dataset, SPEC, n_splits=3, seed=BENCH_SEED).mean_auc


def _sweep() -> dict[float, float]:
    trace = simulate_fleet(
        FleetConfig(
            n_drives_per_model=200,
            horizon_days=900,
            deploy_spread_days=400,
            seed=BENCH_SEED,
        )
    )
    return {level: _auc_at(trace, level) for level in CORRUPTION_LEVELS}


def test_robustness_auc_vs_corruption(benchmark):
    aucs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print("--- Robustness: ROC AUC vs corruption level (repair policy) ---")
    print(f"{'level':>6s} {'AUC':>7s}")
    for level, auc in aucs.items():
        print(f"{level:>6.1f} {auc:>7.3f}")
    clean = aucs[0.0]
    worst = min(aucs.values())
    assert all(np.isfinite(a) for a in aucs.values())
    assert clean > 0.75
    # Graceful degradation: doubling every default fault rate costs a
    # bounded amount of AUC, it does not break the predictor.
    assert worst >= clean - 0.15, aucs
