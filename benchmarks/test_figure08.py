"""Benchmark: regenerate the paper's Figure 8: P/E-at-failure CDF and rate.

Runs the analysis once on the shared six-year characterization fleet and
prints the reproduced numbers for comparison with EXPERIMENTS.md.
"""

from repro.analysis import figure8


def test_figure08(benchmark, char_trace):
    res = benchmark.pedantic(
        figure8, args=(char_trace,), rounds=1, iterations=1
    )
    print()
    print("--- Figure 8: P/E-at-failure CDF and rate (simulated fleet) ---")
    print(res.render())
    assert res.share_below_half_limit > 0.5
